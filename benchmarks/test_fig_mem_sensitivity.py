"""Figure M — sensitivity to the memory hierarchy (a new sweep axis).

The dual of the Figure 5 signal sweep: hold the MISP parameters fixed
and sweep the miss penalty (``MachineParams.mem_cost``) across the
three Figure 4 systems.  The sweep is declared as a
``mem_cost x {1p, misp, smp}`` grid and executed end-to-end through
``Runner.run_experiment``, so deduplication, parallelism, and the
on-disk cache all apply.

Asserted shape:

* absolute runtimes grow monotonically with the miss penalty on every
  system (slower memory never speeds a run up);
* parallel speedups decline monotonically as memory slows (the 1P
  baseline keeps the whole working set in one L1; the eight-sequencer
  gangs split it and re-miss on migrated shreds);
* the shared-vs-private L2 difference stays observable at every point:
  MISP refills its lock/data ping-pong from the shared L2, SMP pays
  cross-L2 invalidations and memory accesses.
"""

from conftest import BENCH_SCALE, run_once

from repro.analysis import FIGURE_MEM_COSTS, format_figure_mem, run_figure_mem

#: tolerance for the monotone-speedup assertion: scheduling noise
#: (idle-poll quantization) moves completion by fractions of a percent
SLACK = 1.002


def test_figure_mem_sweep(benchmark, runner):
    rows = run_once(benchmark,
                    lambda: run_figure_mem(scale=BENCH_SCALE, runner=runner))
    print()
    print(format_figure_mem(rows))
    assert [row.mem_cost for row in rows] == list(FIGURE_MEM_COSTS)

    for prev, cur in zip(rows, rows[1:]):
        # runtimes grow with the miss penalty on every system
        assert prev.cycles_1p <= cur.cycles_1p
        assert prev.cycles_misp <= cur.cycles_misp
        assert prev.cycles_smp <= cur.cycles_smp
        # parallel speedups decline (weakly) as memory slows
        assert cur.misp_speedup <= prev.misp_speedup * SLACK
        assert cur.smp_speedup <= prev.smp_speedup * SLACK

    for row in rows:
        assert row.misp_speedup > 2.0 and row.smp_speedup > 2.0
        # shared vs private L2: observable at every sweep point
        assert row.misp_mem.l2_hits > row.smp_mem.l2_hits
        assert row.misp_mem.l2_invalidations == 0
        assert row.smp_mem.l2_invalidations > 0
        assert row.smp_mem.mem_accesses > row.misp_mem.mem_accesses
