"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures by
declaring its run grid against :mod:`repro.experiments` and consuming
``RunSummary`` values from a :class:`~repro.experiments.Runner`.
Simulated experiments are deterministic, so every benchmark runs
exactly once (``pedantic(rounds=1)``); the benchmark timing is the
wall-clock cost of regenerating the artifact.

Environment knobs:

* ``REPRO_BENCH_SCALE`` (default 0.25) scales the workloads: 1.0
  reproduces the full-size runs reported in EXPERIMENTS.md, smaller
  values keep the suite quick.  Event *structure* (syscall counts,
  page profiles, curve shapes) is scale-invariant; timer counts shrink
  with the scale.
* ``REPRO_FIG7_SCALE`` (default 0.08) scales RayTracer for the
  45-point Figure 7 sweep.
* The Runner honors the library-wide knobs documented on
  :func:`repro.experiments.runner_from_env`: ``REPRO_MAX_WORKERS``
  bounds worker processes, ``REPRO_SERIAL=1`` forces in-process
  serial execution (timings directly comparable to the pre-Runner
  harness), and ``REPRO_CACHE_DIR`` makes repeat invocations
  incremental.
"""

import os

import pytest

from repro.experiments import Runner, runner_from_env

#: workload scale for benchmark runs
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: RayTracer scale for the Figure 7 sweep (45 machine runs)
FIG7_RT_SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "0.08"))


def make_runner() -> Runner:
    """A fresh Runner per benchmark, so timings stay independent."""
    return runner_from_env()


@pytest.fixture()
def runner():
    return make_runner()


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
