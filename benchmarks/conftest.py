"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the resulting rows/series.  Simulated experiments are
deterministic, so every benchmark runs exactly once
(``pedantic(rounds=1)``); the benchmark timing is the wall-clock cost
of regenerating the artifact.

``REPRO_BENCH_SCALE`` (default 0.25) scales the workloads: 1.0
reproduces the full-size runs reported in EXPERIMENTS.md, smaller
values keep the suite quick.  Event *structure* (syscall counts, page
profiles, curve shapes) is scale-invariant; timer counts shrink with
the scale.
"""

import os

import pytest

#: workload scale for benchmark runs
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: RayTracer scale for the Figure 7 sweep (45 machine runs)
FIG7_RT_SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "0.08"))


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
