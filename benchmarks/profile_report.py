"""Profile the report pipeline under cProfile.

Runs one evaluation artifact (or the full report) through an
in-process serial Runner with the profiler enabled, then prints the
hottest functions.  Serial execution keeps all simulation work in the
profiled process -- a parallel Runner would hide it in worker
processes.

Usage::

    PYTHONPATH=src python benchmarks/profile_report.py figure_mem
    PYTHONPATH=src python benchmarks/profile_report.py report --scale 0.1
    PYTHONPATH=src python benchmarks/profile_report.py figure_mem --replay
    PYTHONPATH=src python benchmarks/profile_report.py table1 \
        --sort tottime -o table1.prof   # then: snakeviz table1.prof
"""

import argparse
import cProfile
import io
import pstats
import sys
from typing import Optional, Sequence

from repro.analysis.figure4 import run_figure4
from repro.analysis.figure_mem import run_figure_mem
from repro.analysis.report import full_report
from repro.analysis.table1 import run_table1
from repro.experiments import Runner

#: default workload scale: big enough that simulation dominates
#: profiler overhead, small enough to iterate on
DEFAULT_SCALE = 0.25

TARGETS = {
    "report": lambda scale, runner: full_report(
        scale=scale, runner=runner, stream=io.StringIO()),
    "figure4": lambda scale, runner: run_figure4(
        ["RayTracer"], scale=scale, runner=runner),
    "figure_mem": lambda scale, runner: run_figure_mem(
        scale=scale, runner=runner),
    "table1": lambda scale, runner: run_table1(
        ["RayTracer"], scale=scale, runner=runner),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("target", choices=sorted(TARGETS),
                        nargs="?", default="figure_mem",
                        help="artifact to regenerate under the profiler")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"workload scale (default {DEFAULT_SCALE})")
    parser.add_argument("--replay", action="store_true",
                        help="profile the trace-driven fast path")
    parser.add_argument("--sort", default="cumulative",
                        help="pstats sort key (cumulative, tottime, ...)")
    parser.add_argument("--limit", type=int, default=30,
                        help="rows of profile output to print")
    parser.add_argument("-o", "--output", default=None,
                        help="also dump raw stats (for snakeviz etc.)")
    args = parser.parse_args(argv)

    runner = Runner(parallel=False, replay=args.replay)
    target = TARGETS[args.target]

    profiler = cProfile.Profile()
    profiler.enable()
    target(args.scale, runner)
    profiler.disable()

    print(f"profiled {args.target} at scale {args.scale} "
          f"({'replay' if args.replay else 'execute'} mode; "
          f"runs: {runner.stats})")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.output:
        profiler.dump_stats(args.output)
        print(f"raw profile written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
