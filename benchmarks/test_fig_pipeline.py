"""Figure P — MISP-vs-SMP across core widths (scoreboard timing).

The paper's testbed prices every op with fixed costs; the
``scoreboard`` timing model re-prices the same functional runs on an
in-order pipeline whose ALU / memory units are *shared by all
sequencers of a processor*.  The sweep varies that pool width
(``sb_alu_units`` = ``sb_mem_units``) and regenerates the
Figure-4-style comparison at each point, declared as a
``fu_count x {1p, misp, smp}`` grid of ``timing_model="scoreboard"``
specs and executed through ``Runner.run_experiment`` (deduplication,
parallelism, and the cache all apply; replay never does — scoreboard
specs are execution-driven by construction).

Asserted shape:

* MISP cycles fall monotonically as the shared pool widens (more
  units never slow the gang down), strictly over the full sweep;
* the single-sequencer systems are width-insensitive: SMP workers and
  the 1P baseline never contend, so their cycles stay flat;
* consequently the MISP speedup rises monotonically with core width —
  the paper's MISP advantage assumes an execution core wide enough
  for its shred gang.
"""

from conftest import BENCH_SCALE, run_once

from repro.analysis import (
    FIGURE_PIPELINE_FU_COUNTS, format_figure_pipeline, run_figure_pipeline,
)


def test_figure_pipeline(benchmark, runner):
    rows = run_once(benchmark,
                    lambda: run_figure_pipeline(scale=BENCH_SCALE,
                                                runner=runner))
    print()
    print(format_figure_pipeline(rows))
    assert [row.fu_count for row in rows] == list(FIGURE_PIPELINE_FU_COUNTS)

    for prev, cur in zip(rows, rows[1:]):
        # widening the shared pool never slows the MISP gang down
        assert cur.cycles_misp <= prev.cycles_misp
        # single-sequencer systems never contend: width-insensitive
        assert cur.cycles_1p == prev.cycles_1p
        assert cur.cycles_smp == prev.cycles_smp
        # so the MISP speedup rises with core width
        assert cur.misp_speedup >= prev.misp_speedup

    first, last = rows[0], rows[-1]
    assert last.cycles_misp < first.cycles_misp  # strict over the sweep
    assert last.misp_speedup > 2.0
    # at one unit per sequencer the gang issues nearly unimpeded:
    # MISP lands within 25% of the contention-free SMP ideal
    assert last.misp_vs_smp < 0.25
