"""Table 1 — serializing events per application on MISP (1 OMS + 7 AMS).

Regenerates the table's six columns (OMS SysCall / PF / Timer /
Interrupt, AMS SysCall / PF) from the declared MISP grid and prints
them next to the paper's reference counts (SPEComp at the proxies'
documented 1/50 event scale).  Structural counts (syscalls, page
profiles) are asserted against the paper; time-coupled counts (Timer,
Interrupt) scale with REPRO_BENCH_SCALE and are asserted as ratios.
"""

import pytest
from conftest import BENCH_SCALE, run_once

from repro.analysis import format_table1, run_table1
from repro.workloads import FIGURE4_ORDER


def test_table1(benchmark, runner):
    rows = run_once(benchmark,
                    lambda: run_table1(FIGURE4_ORDER, scale=BENCH_SCALE,
                                       runner=runner))
    print()
    print(format_table1(rows))

    by_name = {row.workload: row for row in rows}
    # --- structural counts track the paper (scaled workloads shrink
    #     page populations linearly with BENCH_SCALE) -----------------
    gauss = by_name["gauss"]
    assert gauss.oms_syscall == 8                       # exact: 8 logs
    assert gauss.ams_pf <= 4                            # init-on-main
    assert gauss.oms_pf == pytest.approx(7170 * BENCH_SCALE, rel=0.2)

    for name in ("sparse_mvm", "sparse_mvm_sym", "RayTracer"):
        row = by_name[name]
        assert row.ams_pf > row.oms_pf, (
            f"{name}: shred-side first touch should dominate")

    # art is the only application with AMS syscalls (paper: 436)
    others = [r for r in rows if r.workload != "art"]
    assert all(r.ams_syscall == 0 for r in others)

    # relative timer ordering matches the paper's runtimes:
    # gauss runs much longer than dense_mvm
    assert by_name["gauss"].oms_timer > 3 * by_name["dense_mvm"].oms_timer

    # interrupts are steered to CPU 0 and are ~Timer/10
    for row in rows:
        if row.oms_timer > 50:
            assert 0 < row.oms_interrupt < row.oms_timer
