"""Ablations of the design choices DESIGN.md calls out.

1. **Page probing** (Section 5.3): "If the OMS probes each page ...
   while executing in the serial region ... the number of proxy
   execution events for page faults can be significantly reduced."
2. **Gang-scheduler queue policy** (Section 4.2: ShredLib implements
   several scheduling algorithms).
3. **Signal-cost sweep with proxy-heavy load**: quantifies how much
   the suspend-on-ring-transition design costs as signaling gets
   cheaper (the ideal-hardware end approximates the speculative
   keep-running alternative sketched in Section 2.3).

Each ablation is a small RunSpec grid: workload-factory kwargs
(``probe_pages``), the queue policy, and machine params are all spec
fields, so variants are declared rather than hand-driven, and their
proxy statistics come back in the RunSummary.
"""

from conftest import run_once

from repro.experiments import RunSpec
from repro.params import DEFAULT_PARAMS
from repro.shredlib.runtime import QueuePolicy

SCALE = 0.25


def test_ablation_page_probe(benchmark, runner):
    specs = [
        RunSpec("RayTracer", "misp", "1x8", scale=SCALE),
        RunSpec("RayTracer", "misp", "1x8", scale=SCALE,
                args={"probe_pages": True}),
    ]
    plain, probed = run_once(benchmark, lambda: runner.run_many(specs))
    plain_events = plain.serializing_events()
    probed_events = probed.serializing_events()
    print(f"\n  AMS proxy faults: plain={plain_events['ams_pf']} "
          f"probed={probed_events['ams_pf']}")
    print(f"  proxy requests:   plain={plain.proxy.requests} "
          f"probed={probed.proxy.requests}")
    # probing converts worker compulsory faults into serial OMS faults
    assert probed_events["ams_pf"] <= plain_events["ams_pf"] // 10
    assert probed_events["oms_pf"] > plain_events["oms_pf"]


def test_ablation_queue_policy(benchmark, runner):
    specs = {policy: RunSpec("RayTracer", "misp", "1x8", scale=SCALE,
                             policy=policy)
             for policy in (QueuePolicy.FIFO, QueuePolicy.LIFO)}

    def run():
        return {policy: runner.run(spec).cycles
                for policy, spec in specs.items()}

    cycles = run_once(benchmark, run)
    fifo, lifo = cycles[QueuePolicy.FIFO], cycles[QueuePolicy.LIFO]
    print(f"\n  FIFO={fifo:,} LIFO={lifo:,} "
          f"(LIFO/FIFO = {lifo / fifo:.3f})")
    # with independent tiles both policies drain the same work; they
    # must agree within a few percent (scheduling is not the bottleneck)
    assert abs(lifo - fifo) / fifo < 0.05


def test_ablation_serialization_cost(benchmark, runner):
    """Dynamic cost of suspend-on-ring-transition on a proxy-heavy app."""
    signals = (0, 500, 1000, 5000)
    # sparse_mvm_sym: 669 shred-side faults
    sweep = [RunSpec("sparse_mvm_sym", "misp", "1x8", scale=SCALE,
                     params=DEFAULT_PARAMS.with_changes(signal_cost=signal))
             for signal in signals]

    def run():
        return dict(zip(signals,
                        (s.cycles for s in runner.run_many(sweep))))

    cycles = run_once(benchmark, run)
    ideal = cycles[0]
    print()
    for signal, value in cycles.items():
        print(f"  signal={signal:5d}: {value / ideal - 1:+.3%} vs ideal")
    # the paper's conclusion: even 5000-cycle signaling stays cheap
    assert cycles[5000] / ideal - 1 < 0.10
    assert cycles[500] <= cycles[5000]
