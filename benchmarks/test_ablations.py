"""Ablations of the design choices DESIGN.md calls out.

1. **Page probing** (Section 5.3): "If the OMS probes each page ...
   while executing in the serial region ... the number of proxy
   execution events for page faults can be significantly reduced."
2. **Gang-scheduler queue policy** (Section 4.2: ShredLib implements
   several scheduling algorithms).
3. **Signal-cost sweep with proxy-heavy load**: quantifies how much
   the suspend-on-ring-transition design costs as signaling gets
   cheaper (the ideal-hardware end approximates the speculative
   keep-running alternative sketched in Section 2.3).
"""

import pytest
from conftest import run_once

from repro.params import DEFAULT_PARAMS
from repro.shredlib.runtime import QueuePolicy
from repro.workloads.rms.raytracer import make_raytracer
from repro.workloads.rms.sparse import make_sparse_mvm_sym
from repro.workloads.runner import run_misp

SCALE = 0.25


def test_ablation_page_probe(benchmark):
    def run():
        plain = run_misp(make_raytracer(scale=SCALE), ams_count=7)
        probed = run_misp(make_raytracer(scale=SCALE, probe_pages=True),
                          ams_count=7)
        return plain, probed

    plain, probed = run_once(benchmark, run)
    plain_events = plain.serializing_events()
    probed_events = probed.serializing_events()
    print(f"\n  AMS proxy faults: plain={plain_events['ams_pf']} "
          f"probed={probed_events['ams_pf']}")
    print(f"  proxy requests:   plain={plain.machine.proxy_stats.requests} "
          f"probed={probed.machine.proxy_stats.requests}")
    # probing converts worker compulsory faults into serial OMS faults
    assert probed_events["ams_pf"] <= plain_events["ams_pf"] // 10
    assert probed_events["oms_pf"] > plain_events["oms_pf"]


def test_ablation_queue_policy(benchmark):
    def run():
        return {policy: run_misp(make_raytracer(scale=SCALE), ams_count=7,
                                 policy=policy).cycles
                for policy in (QueuePolicy.FIFO, QueuePolicy.LIFO)}

    cycles = run_once(benchmark, run)
    fifo, lifo = cycles[QueuePolicy.FIFO], cycles[QueuePolicy.LIFO]
    print(f"\n  FIFO={fifo:,} LIFO={lifo:,} "
          f"(LIFO/FIFO = {lifo / fifo:.3f})")
    # with independent tiles both policies drain the same work; they
    # must agree within a few percent (scheduling is not the bottleneck)
    assert abs(lifo - fifo) / fifo < 0.05


def test_ablation_serialization_cost(benchmark):
    """Dynamic cost of suspend-on-ring-transition on a proxy-heavy app."""
    spec = make_sparse_mvm_sym(scale=SCALE)   # 669 shred-side faults

    def run():
        out = {}
        for signal in (0, 500, 1000, 5000):
            params = DEFAULT_PARAMS.with_changes(signal_cost=signal)
            out[signal] = run_misp(spec, ams_count=7, params=params).cycles
        return out

    cycles = run_once(benchmark, run)
    ideal = cycles[0]
    print()
    for signal, value in cycles.items():
        print(f"  signal={signal:5d}: {value / ideal - 1:+.3%} vs ideal")
    # the paper's conclusion: even 5000-cycle signaling stays cheap
    assert cycles[5000] / ideal - 1 < 0.10
    assert cycles[500] <= cycles[5000]
