"""Figure 6 — the MISP MP configurations.

The figure is an enumeration of how eight sequencers partition into
MISP processors.  The benchmark builds every configuration as a live
machine, validates the topology (OS-visible CPUs, SIDs, AMS counts),
and prints the partition listing.
"""

from conftest import run_once

from repro.analysis.report import figure6_text
from repro.core import (
    FIGURE6_CONFIGS, FIGURE7_CONFIGS, build_machine, config_name,
    parse_config, total_sequencers,
)


def test_figure6(benchmark):
    def build_all():
        return {name: build_machine(name)
                for name in set(FIGURE6_CONFIGS) | set(FIGURE7_CONFIGS)}

    machines = run_once(benchmark, build_all)
    print()
    print(figure6_text())
    for name, machine in machines.items():
        counts = parse_config(name)
        assert total_sequencers(counts) == 8
        assert machine.num_cpus == len(counts)
        assert len(machine.sequencers) == 8
        assert config_name(counts) == name
        # the OS sees only the OMSs; each MISP processor resolves its
        # own SIDs starting at 0 = the OMS
        for proc in machine.processors:
            assert proc.by_sid(0) is proc.oms
            assert len(proc.amss) == counts[proc.proc_id]
