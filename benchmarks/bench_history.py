"""Append a benchmark run to the committed performance history.

``BENCH_history.jsonl`` holds one JSON line per recorded run -- the
commit, timestamp, python version, and the median seconds of every
benchmark -- so the repo carries its own performance trajectory
instead of scattering it across CI artifacts.  CI appends the current
run after the bench job; regenerating the baseline appends a point
the same way.

Usage::

    python benchmarks/bench_history.py BENCH_abc123.json
    python benchmarks/bench_history.py out.json --history BENCH_history.jsonl
    python benchmarks/bench_history.py out.json --sha baseline

Appends are idempotent per sha: re-running on a sha already present
rewrites that entry in place rather than duplicating it.
"""

import argparse
import json
import os
from typing import Optional, Sequence


def _sha_of(data: dict, path: str, override: Optional[str]) -> str:
    if override:
        return override
    commit = (data.get("commit_info") or {}).get("id")
    if commit:
        return str(commit)[:10]
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def history_entry(path: str, sha: Optional[str] = None) -> dict:
    """One history line for a pytest-benchmark JSON file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    machine = data.get("machine_info") or {}
    return {
        "sha": _sha_of(data, path, sha),
        "recorded": data.get("datetime"),
        "python": machine.get("python_version"),
        "scale": os.environ.get("REPRO_BENCH_SCALE"),
        "medians": dict(sorted(
            (bench["name"], round(bench["stats"]["median"], 6))
            for bench in data.get("benchmarks", []))),
    }


def append_history(entry: dict, history_path: str) -> int:
    """Insert or replace ``entry`` by sha; returns the entry count."""
    entries = []
    if os.path.exists(history_path):
        with open(history_path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
    entries = [e for e in entries if e.get("sha") != entry["sha"]]
    entries.append(entry)
    with open(history_path, "w", encoding="utf-8") as handle:
        for item in entries:
            handle.write(json.dumps(item, sort_keys=True) + "\n")
    return len(entries)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="pytest-benchmark JSON file")
    parser.add_argument("--history", default=os.path.join(
                            os.path.dirname(__file__), os.pardir,
                            "BENCH_history.jsonl"),
                        help="history file to append to "
                             "(default: repo BENCH_history.jsonl)")
    parser.add_argument("--sha", default=None,
                        help="commit id for the entry (default: the "
                             "file's commit_info, else its filename)")
    args = parser.parse_args(argv)
    entry = history_entry(args.bench_json, sha=args.sha)
    count = append_history(entry, args.history)
    print(f"[{entry['sha']}] {len(entry['medians'])} benchmark medians "
          f"-> {os.path.normpath(args.history)} ({count} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
