"""Measure the content-addressed store's serving hit rate.

The ROADMAP's serving target: a repeated figure request should be
(almost) free.  This script drives the Figure 4 grid through the
:class:`repro.service.ExperimentService` twice against one store --
a cold pass that executes everything, then a *fresh* service over the
same directory whose memo is empty, so every run must come from disk
-- and prints the :class:`~repro.service.StoreStats` hit-rate line CI
surfaces alongside the timing benchmarks.

Exit status is non-zero if the warm pass executed anything (a store
regression), so the CI bench job doubles as a serving-path gate.

Knobs: ``REPRO_BENCH_SCALE`` (default 0.25) scales the workloads;
``REPRO_MAX_WORKERS`` / ``REPRO_SERIAL`` shape execution as usual.

Run directly::

    PYTHONPATH=src python benchmarks/store_hitrate.py
"""

import os
import tempfile
import time

from repro.analysis.figure4 import figure4_experiment
from repro.service import ExperimentService, ResultStore

#: a small-but-real slice of the Figure 4 grid
WORKLOADS = ("dense_mvm", "gauss", "kmeans")

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


def serve_pass(label: str, store_dir: str) -> ExperimentService:
    """One figure request through a fresh service over ``store_dir``."""
    experiment = figure4_experiment(WORKLOADS, scale=BENCH_SCALE)
    parallel = os.environ.get("REPRO_SERIAL", "") not in ("1", "true")
    t0 = time.time()
    with ExperimentService(store=ResultStore(store_dir),
                           parallel=parallel) as service:
        streamed = sum(1 for _ in service.submit(experiment).as_completed())
    print(f"{label}: {streamed} runs streamed in {time.time() - t0:.2f}s")
    print(f"{label}: [{service.store.stats}]")
    print(f"{label}: [service: {service.stats}]")
    return service


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-hitrate-") as store_dir:
        serve_pass("cold", store_dir)
        warm = serve_pass("warm", store_dir)
        expected = len(WORKLOADS) * 3        # workloads x {1p, misp, smp}
        ok = (warm.stats.executed == 0
              and warm.store.stats.hits == expected)
        print(f"warm-pass store hit rate: "
              f"{warm.store.stats.hit_rate * 100:.1f}% "
              f"({'OK' if ok else 'REGRESSION: warm pass executed runs'})")
        return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
