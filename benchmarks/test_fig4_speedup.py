"""Figure 4 — MISP vs SMP speedup over 1P for all 16 applications.

Regenerates the paper's bar chart as a table: the driver declares the
``16 workloads x {1p, misp 1x8, smp8}`` grid and the Runner executes
the 48 unique simulations in parallel worker processes.  The paper's
companion claims are asserted: every application scales, MISP tracks
SMP within a few percent, and the suite means are small (paper: RMS
+1.5%, SPEComp -1.9%).
"""

from conftest import BENCH_SCALE, run_once

from repro.analysis import format_figure4, run_figure4
from repro.workloads import FIGURE4_ORDER


def test_figure4(benchmark, runner):
    result = run_once(benchmark,
                      lambda: run_figure4(FIGURE4_ORDER, scale=BENCH_SCALE,
                                          runner=runner))
    print()
    print(format_figure4(result))
    print(f"  [runner: {runner.stats}]")
    for row in result.rows:
        assert row.misp_speedup > 2.0, f"{row.workload} failed to scale"
        assert abs(row.misp_vs_smp) < 0.15, (
            f"{row.workload}: MISP deviates {row.misp_vs_smp:+.1%} from SMP")
    assert abs(result.mean_misp_vs_smp("rms")) < 0.08
    assert abs(result.mean_misp_vs_smp("speccomp")) < 0.08
    # RayTracer is the most scalable application (Section 5.2)
    ray = result.row("RayTracer")
    assert ray.misp_speedup == max(r.misp_speedup for r in result.rows)
    # each unique (workload, system, config) simulated exactly once
    assert runner.stats.executed <= 3 * len(FIGURE4_ORDER)
