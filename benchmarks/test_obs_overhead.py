"""Observability overhead gate: instrumented runs must stay cheap.

Two guarantees, one per test:

* ``test_obs_overhead_observed`` times the **observed** Figure 4 smoke
  grid (``Session.observe(...)``: charge-path counting closures, fine
  trace records, end-of-run registry pump) as a committed
  ``BENCH_baseline.json`` entry, so the cost of observability itself
  has a regression trajectory like every other artifact.
* ``test_obs_overhead_ratio`` runs the same grid plain and observed
  (best-of-N each, same process) and gates the enabled-observability
  overhead below ``OVERHEAD_LIMIT`` -- the "zero-cost when disabled,
  cheap when enabled" contract from the observability layer.

The grid is the Figure 4 system triple on one workload at smoke scale;
structure (per-op charge wrapper, per-event instant records) is what
costs, not workload size, so the small grid bounds the full one.
"""

import os
import time

from conftest import run_once

from repro.obs import MetricsRegistry
from repro.systems import Session

#: workload scale for the overhead grid (kept small: the gate measures
#: instrumentation structure, which is scale-invariant)
SMOKE_SCALE = float(os.environ.get("REPRO_OBS_BENCH_SCALE", "0.05"))
WORKLOAD = "dense_mvm"
#: the Figure 4 system triple (1P denominator, MISP, SMP baseline)
GRID = (("1p", "smp1"), ("misp", "1x8"), ("smp", "smp8"))
#: observed / plain wall-clock ratio ceiling
OVERHEAD_LIMIT = 1.10
ROUNDS = 3


def _run_grid(observe: bool) -> None:
    registry = MetricsRegistry() if observe else None
    for system, config in GRID:
        session = Session(system, config)
        if observe:
            session = session.observe(registry=registry,
                                      run_id=f"bench-{system}")
        session.run(WORKLOAD, scale=SMOKE_SCALE)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_overhead_observed(benchmark):
    run_once(benchmark, lambda: _run_grid(observe=True))


def test_obs_overhead_ratio():
    # interleave-free best-of-N: the minimum of several runs of a
    # deterministic simulation is a stable wall-clock estimator
    plain = _best_of(lambda: _run_grid(observe=False))
    observed = _best_of(lambda: _run_grid(observe=True))
    ratio = observed / plain
    print(f"\nobservability overhead: plain {plain:.3f}s, "
          f"observed {observed:.3f}s, ratio {ratio:.3f}")
    assert ratio < OVERHEAD_LIMIT, (
        f"enabled observability costs {(ratio - 1) * 100:.1f}% "
        f"(limit {(OVERHEAD_LIMIT - 1) * 100:.0f}%)")
