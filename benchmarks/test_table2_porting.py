"""Table 2 — porting legacy multithreaded applications to MISP.

Ports every legacy application (written purely against the
Pthreads/Win32 APIs) through ShredLib's thread-to-shred shims, runs
each on the MISP machine via the declared porting grid, and prints the
table.  Also reproduces the Open Dynamics Engine finding: the naive
port wastes the AMSs while the main thread sleeps in the OS; the
paper's structural fix (a native I/O thread) recovers the loss -- and
because the ODE runs are grid members too, the speedup is computed
from memoized summaries, not fresh simulations.
"""

from conftest import run_once

from repro.analysis import format_table2, run_table2
from repro.analysis.table2 import ode_restructuring_speedup, table2_experiment
from repro.workloads.legacy import make_ode_like
from repro.workloads.runner import run_smp


def test_table2_ports(benchmark, runner):
    rows = run_once(benchmark, lambda: run_table2(ams_count=7,
                                                  runner=runner))
    print()
    print(format_table2(rows))
    for row in rows:
        assert row.ran_correctly
        assert row.lines_changed == 1        # the shim "header include"
        assert row.api_calls_translated > 0
    # every app also runs unmodified on the SMP baseline
    smp = run_smp(make_ode_like(restructured=True), ncpus=4)
    assert smp.runtime.active == 0


def test_table2_ode_restructuring(benchmark, runner):
    speedup = run_once(
        benchmark, lambda: ode_restructuring_speedup(ams_count=7,
                                                     runner=runner))
    naive, fixed = runner.run_many(table2_experiment(ams_count=7).runs[-2:])
    print(f"\n  naive: {naive.cycles:,} cycles; "
          f"restructured: {fixed.cycles:,} cycles; "
          f"speedup {speedup:.2f}x")
    assert speedup > 1.25
    # the second lookup was served from the Runner's memo
    assert runner.stats.memo_hits >= 2
