"""Table 2 — porting legacy multithreaded applications to MISP.

Ports every legacy application (written purely against the
Pthreads/Win32 APIs) through ShredLib's thread-to-shred shims, runs
each on the MISP machine, and prints the porting table.  Also
reproduces the Open Dynamics Engine finding: the naive port wastes the
AMSs while the main thread sleeps in the OS; the paper's structural
fix (a native I/O thread) recovers the loss.
"""

from conftest import run_once

from repro.analysis import format_table2, run_table2
from repro.analysis.table2 import ode_restructuring_speedup
from repro.workloads.legacy import make_ode_like
from repro.workloads.runner import run_misp, run_smp


def test_table2_ports(benchmark):
    rows = run_once(benchmark, lambda: run_table2(ams_count=7))
    print()
    print(format_table2(rows))
    for row in rows:
        assert row.ran_correctly
        assert row.lines_changed == 1        # the shim "header include"
        assert row.api_calls_translated > 0
    # every app also runs unmodified on the SMP baseline
    smp = run_smp(make_ode_like(restructured=True), ncpus=4)
    assert smp.runtime.active == 0


def test_table2_ode_restructuring(benchmark):
    def run():
        naive = run_misp(make_ode_like(restructured=False), ams_count=7)
        fixed = run_misp(make_ode_like(restructured=True), ams_count=7)
        return naive, fixed

    naive, fixed = run_once(benchmark, run)
    speedup = naive.cycles / fixed.cycles
    ams_available = lambda r: 1 - (
        sum(s.suspended_cycles for s in r.machine.sequencers
            if not s.is_oms) / (7 * r.cycles))
    print(f"\n  naive: {naive.cycles:,} cycles; "
          f"restructured: {fixed.cycles:,} cycles; "
          f"speedup {speedup:.2f}x")
    assert speedup > 1.25
