"""Figure 5 — sensitivity to the inter-sequencer signal cost.

Two reproductions of the same claim:

1. **Analytic** (the paper's own method): apply Equations 1/2 to each
   application's measured event counts for signal in {500, 1000, 5000}
   and report % overhead over ideal (signal = 0) hardware.
2. **Dynamic** (an ablation the prototype could not do): re-run a
   workload with the machine's signal cost actually swept -- declared
   as a params-sweep grid of RunSpecs -- confirming the analytic model
   against end-to-end runtimes.
"""

import pytest
from conftest import BENCH_SCALE, run_once

from repro.analysis import FIGURE5_SIGNAL_COSTS, format_figure5, run_figure5
from repro.experiments import ExperimentSpec, RunSpec
from repro.params import DEFAULT_PARAMS
from repro.workloads import FIGURE4_ORDER

APPS = FIGURE4_ORDER


def test_figure5_analytic(benchmark, runner):
    rows = run_once(benchmark,
                    lambda: run_figure5(APPS, scale=BENCH_SCALE,
                                        runner=runner))
    print()
    print(format_figure5(rows))
    for row in rows:
        o500, o1000, o5000 = row.overheads
        assert 0 <= o500 <= o1000 <= o5000          # monotone in signal
        assert o1000 == pytest.approx(2 * o500)     # linear
        # decompressed to the testbed's event density, magnitudes land
        # in the paper's "insensitive" range (<= ~1%)
        assert row.overheads_decompressed[-1] < 0.02


def test_figure5_dynamic_sweep(benchmark, runner):
    """End-to-end: sweep the machine's actual signal cost on kmeans
    (the paper's worst case)."""
    signals = (0,) + FIGURE5_SIGNAL_COSTS
    sweep = ExperimentSpec("fig5-sweep", tuple(
        RunSpec("kmeans", "misp", "1x8", scale=BENCH_SCALE,
                params=DEFAULT_PARAMS.with_changes(signal_cost=signal))
        for signal in signals))

    def run():
        result = runner.run_experiment(sweep)
        return {spec.params.signal_cost: result[spec].cycles
                for spec in sweep.runs}

    cycles = run_once(benchmark, run)
    ideal = cycles[0]
    print()
    for signal in FIGURE5_SIGNAL_COSTS:
        overhead = cycles[signal] / ideal - 1
        print(f"  kmeans signal={signal:5d}: {overhead * 100:+.3f}% vs ideal")
    # runtimes grow (weakly) with signal cost and stay small
    assert cycles[500] <= cycles[1000] * 1.001
    assert cycles[1000] <= cycles[5000] * 1.001
    assert cycles[5000] / ideal - 1 < 0.25
