"""Figure 7 — MISP MP throughput under multiprogramming.

Regenerates all nine series (ideal, smp, 4x2, 2x4, 1x8, 1x7+1, 1x6+2,
1x5+3, 1x4+4): RayTracer's speedup vs unloaded as 0..4 single-threaded
processes are added.  The 45-point sweep is declared as a ``configs x
loads`` grid; the Runner executes the points in parallel worker
processes and folds the "ideal" series onto the identically
partitioned fixed-series runs.  Asserts the paper's Section 5.4
findings: 1x8 degrades nearly linearly, more MISP processors flatten
the curve, and the per-load ideal partition stays at 1.0.
"""

import pytest
from conftest import FIG7_RT_SCALE, run_once

from repro.analysis import FIGURE7_SERIES, format_figure7, run_figure7


def test_figure7(benchmark, runner):
    result = run_once(
        benchmark, lambda: run_figure7(rt_scale=FIG7_RT_SCALE,
                                       runner=runner))
    print()
    print(format_figure7(result))
    print(f"  [runner: {runner.stats}]")

    one_x8 = result.curve("1x8")
    # "the performance of RayTracer decreases nearly linearly"
    for load in range(1, 5):
        assert one_x8[load] == pytest.approx(1 / (1 + load), abs=0.08)

    # every curve starts at 1.0 (normalized to its own unloaded config)
    for config in FIGURE7_SERIES:
        assert result.curve(config)[0] == pytest.approx(1.0)

    # "As we increase the number of MISP processors ... scaling
    # performance improves"
    at = 2
    assert result.curve("1x8")[at] < result.curve("2x4")[at]
    assert result.curve("2x4")[at] <= result.curve("4x2")[at] + 1e-9

    # the ideal partition keeps RayTracer unaffected
    for value in result.curve("ideal"):
        assert value == pytest.approx(1.0, abs=0.05)

    # SMP degrades gracefully (~ 8/(8+N))
    smp = result.curve("smp")
    for load in range(1, 5):
        assert smp[load] == pytest.approx(8 / (8 + load), abs=0.12)

    # curves never increase with load
    for config in FIGURE7_SERIES:
        curve = result.curve(config)
        for a, b in zip(curve, curve[1:]):
            assert b <= a + 0.05

    # the ideal series dedups onto the fixed-partition grid: 9 series
    # x 5 loads declare 50 specs but at most 45 unique simulations
    assert runner.stats.executed <= 45
