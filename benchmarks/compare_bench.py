"""Compare two pytest-benchmark JSON files and flag regressions.

Benchmarks are matched by test name; each pair's median wall-clock
times are compared, and the run fails (exit 1) when any benchmark
regresses by more than the threshold.  Benchmarks present in only one
file are reported but never fail the comparison, so adding or
retiring a benchmark does not break CI.

When bottleneck-analysis snapshots accompany the benchmark files
(``--analysis-baseline`` / ``--analysis-candidate``, written by
``python -m repro.analysis.report --analyze-out``), a failed
comparison also prints *where* the cycles went -- the stall-class and
per-run attribution from :mod:`repro.obs.diff` -- instead of just the
wall-clock ratio.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_new.json
    python benchmarks/compare_bench.py old.json new.json --threshold 0.10
"""

import argparse
import json
import os
import sys
from typing import Optional, Sequence


def load_medians(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["median"]
            for bench in data["benchmarks"]}


def attribution_hint(baseline: str, candidate: str) -> Optional[str]:
    """Cycle attribution for a regression, from analysis snapshots.

    Returns the :func:`repro.obs.diff.format_diff` report when both
    snapshot files exist and parse, else ``None`` -- the hint is
    best-effort and must never turn a perf gate into an import error.
    """
    try:
        sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                        os.pardir, "src"))
        from repro.obs.diff import diff_analyses, format_diff
        with open(baseline, encoding="utf-8") as handle:
            doc_a = json.load(handle)
        with open(candidate, encoding="utf-8") as handle:
            doc_b = json.load(handle)
        return format_diff(diff_analyses(doc_a, doc_b, label_a=baseline,
                                         label_b=candidate))
    except Exception as exc:  # noqa: BLE001 - hint only, report why
        return f"(no attribution hint: {exc})"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when a median regresses by more than "
                             "this fraction (default 0.25 = +25%%)")
    parser.add_argument("--analysis-baseline", default=None, metavar="FILE",
                        help="bottleneck-analysis JSON for the baseline "
                             "(report --analyze-out); used to attribute "
                             "a failed comparison to stall classes")
    parser.add_argument("--analysis-candidate", default=None, metavar="FILE",
                        help="bottleneck-analysis JSON for the candidate")
    args = parser.parse_args(argv)

    base = load_medians(args.baseline)
    cand = load_medians(args.candidate)
    shared = sorted(set(base) & set(cand))

    width = max((len(name) for name in shared), default=4)
    print(f"{'benchmark':<{width}s} {'base':>9s} {'cand':>9s} {'delta':>8s}")
    regressions = []
    for name in shared:
        ratio = cand[name] / base[name] - 1.0
        flag = ""
        if ratio > args.threshold:
            regressions.append(name)
            flag = "  << REGRESSION"
        print(f"{name:<{width}s} {base[name]:>8.3f}s {cand[name]:>8.3f}s "
              f"{ratio * 100:>+7.1f}%{flag}")

    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}s} {'-':>9s} {cand[name]:>8.3f}s      new")
    for name in sorted(set(base) - set(cand)):
        print(f"{name:<{width}s} {base[name]:>8.3f}s {'-':>9s}  removed")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold * 100:.0f}%: {', '.join(regressions)}")
        if args.analysis_baseline and args.analysis_candidate:
            hint = attribution_hint(args.analysis_baseline,
                                    args.analysis_candidate)
            if hint:
                print("\nwhere the cycles went (simulated-cycle "
                      "attribution, repro.obs.diff):")
                print(hint)
        else:
            print("for cycle-level attribution, generate analysis "
                  "snapshots with 'python -m repro.analysis.report "
                  "--smoke --analyze --analyze-out FILE' and re-run "
                  "with --analysis-baseline/--analysis-candidate")
        return 1
    print(f"\nno benchmark regressed beyond {args.threshold * 100:.0f}% "
          f"({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
