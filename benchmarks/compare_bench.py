"""Compare two pytest-benchmark JSON files and flag regressions.

Benchmarks are matched by test name; each pair's median wall-clock
times are compared, and the run fails (exit 1) when any benchmark
regresses by more than the threshold.  Benchmarks present in only one
file are reported but never fail the comparison, so adding or
retiring a benchmark does not break CI.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_new.json
    python benchmarks/compare_bench.py old.json new.json --threshold 0.10
"""

import argparse
import json
from typing import Optional, Sequence


def load_medians(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["median"]
            for bench in data["benchmarks"]}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when a median regresses by more than "
                             "this fraction (default 0.25 = +25%%)")
    args = parser.parse_args(argv)

    base = load_medians(args.baseline)
    cand = load_medians(args.candidate)
    shared = sorted(set(base) & set(cand))

    width = max((len(name) for name in shared), default=4)
    print(f"{'benchmark':<{width}s} {'base':>9s} {'cand':>9s} {'delta':>8s}")
    regressions = []
    for name in shared:
        ratio = cand[name] / base[name] - 1.0
        flag = ""
        if ratio > args.threshold:
            regressions.append(name)
            flag = "  << REGRESSION"
        print(f"{name:<{width}s} {base[name]:>8.3f}s {cand[name]:>8.3f}s "
              f"{ratio * 100:>+7.1f}%{flag}")

    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}s} {'-':>9s} {cand[name]:>8.3f}s      new")
    for name in sorted(set(base) - set(cand)):
        print(f"{name:<{width}s} {base[name]:>8.3f}s {'-':>9s}  removed")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold * 100:.0f}%: {', '.join(regressions)}")
        return 1
    print(f"\nno benchmark regressed beyond {args.threshold * 100:.0f}% "
          f"({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
