"""RayTracer on MISP vs SMP, with the page-probing optimization.

Reproduces a slice of the Section 5.3 analysis on the paper's most
scalable application: runs RayTracer on the 1P baseline, the MISP
uniprocessor, and the 8-way SMP; then applies the page-probing
optimization ("the OMS probes each page while executing in the serial
region") and shows the AMS proxy faults collapse.

Run:  python examples/raytracer_demo.py [scale]
"""

import sys

from repro.workloads.rms.raytracer import make_raytracer
from repro.workloads.runner import run_1p, run_misp, run_smp


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    plain = make_raytracer(scale=scale)
    probed = make_raytracer(scale=scale, probe_pages=True)

    base = run_1p(plain)
    misp = run_misp(plain, ams_count=7)
    smp = run_smp(plain, ncpus=8)
    misp_probed = run_misp(probed, ams_count=7)

    print(f"RayTracer (scale={scale})")
    print(f"  1P        : {base.cycles:>14,} cycles")
    print(f"  MISP 1x8  : {misp.cycles:>14,} cycles "
          f"(speedup {base.cycles / misp.cycles:.2f}x)")
    print(f"  SMP 8-way : {smp.cycles:>14,} cycles "
          f"(speedup {base.cycles / smp.cycles:.2f}x)")
    delta = misp.cycles / smp.cycles - 1
    print(f"  MISP vs SMP: {delta:+.2%}  "
          "(paper: within ~2% either way)")
    print()
    before = misp.serializing_events()
    after = misp_probed.serializing_events()
    print("page-probing optimization (Section 5.3):")
    print(f"  AMS proxy faults : {before['ams_pf']:>6} -> {after['ams_pf']}")
    print(f"  OMS page faults  : {before['oms_pf']:>6} -> {after['oms_pf']}")
    print(f"  runtime          : {misp.cycles:,} -> {misp_probed.cycles:,} "
          f"({misp.cycles / misp_probed.cycles:.3f}x)")


if __name__ == "__main__":
    main()
