"""Compose sessions and plug a custom system backend into the registry.

Demonstrates the repro.systems API end to end:

1. run one workload on several systems through the composable
   ``Session`` builder (including the multi-group ``hybrid`` backend);
2. define a custom ``SystemBackend`` subclass -- here a "turbo" MISP
   whose inter-sequencer signal is free -- and register it;
3. run the custom system through the experiment Runner purely by
   name: registering the backend is all it takes to make it
   spec-able, grid-able, and cacheable;
4. override a backend's *memory-hierarchy topology*: ``build_machine``
   is where a backend declares how sequencers share caches, so a
   subclass can ask what one machine-wide L2 would buy.

Run me:  PYTHONPATH=src python examples/custom_backend.py
"""

from repro.core.mp import build_machine
from repro.core.notation import parse_config
from repro.experiments import ExperimentSpec, Runner, summarize_run
from repro.mem.hierarchy import shared_l2_global
from repro.params import DEFAULT_PARAMS
from repro.systems import SYSTEM_REGISTRY, MispBackend, Session

SCALE = 0.1
WORKLOAD = "RayTracer"


class TurboMispBackend(MispBackend):
    """MISP with zero-cost inter-sequencer signaling (a what-if)."""

    name = "turbo"
    default_config = "1x8"
    description = "MISP with free SIGNAL delivery"

    def build_machine(self, config, params):
        return super().build_machine(config, params.with_changes(
            signal_cost=0))


class GlobalL2MispBackend(MispBackend):
    """MISP behind one machine-wide shared L2 (a topology what-if).

    The built-in backends declare their hierarchy topology in
    ``build_machine`` (MISP: one L2 per processor; SMP: private L2
    per core); overriding it is one argument.
    """

    name = "misp_gl2"
    default_config = "1x8"
    description = "MISP with a single machine-wide L2"

    def build_machine(self, config, params):
        return build_machine(parse_config(config), params=params,
                             hierarchy=shared_l2_global)


def main() -> None:
    # --- 1. sessions: one builder call per system --------------------
    print(f"{'system':10s} {'config':8s} {'cycles':>14s}")
    for system, config in [("1p", None), ("misp", "1x8"),
                           ("smp", "smp8"), ("hybrid", "1x4+1x2"),
                           ("hybrid", "1x4+4")]:
        session = Session(system, config) if config else Session(system)
        result = session.run(WORKLOAD, scale=SCALE)
        print(f"{result.system:10s} {result.config:8s} "
              f"{result.cycles:>14,}")

    # --- 2 + 3. register a backend, run it by name -------------------
    SYSTEM_REGISTRY.register(TurboMispBackend())
    exp = ExperimentSpec.grid("turbo-vs-misp", [WORKLOAD],
                              systems=("misp", "turbo"), scale=SCALE)
    # custom backends live in this process only: run the grid serially
    result = Runner(parallel=False).run_experiment(exp)
    misp, turbo = result.summaries()
    print(f"\nturbo speedup over misp: "
          f"{misp.cycles / turbo.cycles:.3f}x "
          f"(signal cost {DEFAULT_PARAMS.signal_cost} -> 0)")

    # --- 4. hierarchy-topology override ------------------------------
    SYSTEM_REGISTRY.register(GlobalL2MispBackend())
    print("\nshared vs private caches (same workload, default params):")
    for result in (Session("misp", "1x8").run(WORKLOAD, scale=SCALE),
                   Session("misp_gl2").run(WORKLOAD, scale=SCALE),
                   Session("smp", "smp8").run(WORKLOAD, scale=SCALE)):
        mem = summarize_run(result).mem
        print(f"  {result.system:9s} L2 hits {mem.l2_hits:>6,}  "
              f"L1 inval {mem.l1_invalidations:>5,}  "
              f"L2 inval {mem.l2_invalidations:>5,}  "
              f"mem accesses {mem.mem_accesses:>6,}")


if __name__ == "__main__":
    main()
