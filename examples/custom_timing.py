"""Plug a custom timing model into the registry and sweep it.

The functional/timing split: the machine decides *what happens* (ISA
semantics, ShredLib, the model kernel), the active
``repro.timing.TimingModel`` decides *how long it takes*.  This demo
walks the subsystem end to end:

1. price one run under the built-in models -- the paper's ``fixed``
   per-op costs vs the ``scoreboard`` in-order pipeline -- and watch
   SIGNAL/proxy costs emerge from pipeline drain instead of constants;
2. sweep the scoreboard's functional-unit pool: MISP's eight
   sequencers share one processor's FUs, so its speedup over SMP is a
   function of core width (the figure_pipeline artifact);
3. define and register a custom model -- memory accesses priced at a
   multiple of the hierarchy's charge -- and run it through the
   experiment Runner purely by name: registering is all it takes to
   make a model spec-able, grid-able, and cacheable.

Run me:  PYTHONPATH=src python examples/custom_timing.py
"""

from repro.analysis import format_figure_pipeline, run_figure_pipeline
from repro.experiments import ExperimentSpec, Runner, RunSpec
from repro.systems import Session
from repro.timing import TIMING_REGISTRY, FixedTiming

SCALE = 0.1
WORKLOAD = "RayTracer"


class SlowMemoryTiming(FixedTiming):
    """Fixed pricing with every hierarchy charge tripled (a what-if).

    Subclassing ``FixedTiming`` keeps the constant base costs; only
    the memory terms change.  Occupancy-independent models like this
    one could declare ``supports_capture = True``, but leaving it
    False is always safe.
    """

    name = "slow_mem"
    supports_capture = False
    description = "fixed costs with 3x memory-hierarchy charges"

    def charge(self, seq, op, base, walks=0, access=0, fetch=0):
        return super().charge(seq, op, base, walks,
                              3 * access, 3 * fetch)


def main() -> None:
    # --- 1. one run, two built-in price tags -------------------------
    print(f"{'timing':12s} {'cycles':>14s}")
    for timing in ("fixed", "scoreboard"):
        result = Session("misp", "1x8").timing(timing).run(
            WORKLOAD, scale=SCALE)
        print(f"{timing:12s} {result.cycles:>14,}")

    # --- 2. the scoreboard's new axis: core width --------------------
    rows = run_figure_pipeline(WORKLOAD, fu_counts=(1, 2, 8),
                               scale=SCALE, runner=Runner(parallel=False))
    print()
    print(format_figure_pipeline(rows))

    # --- 3. register a model, run it by name -------------------------
    TIMING_REGISTRY.register(SlowMemoryTiming)
    exp = ExperimentSpec.grid("slow-mem", [WORKLOAD], systems=("misp",),
                              scale=SCALE, timing_model="slow_mem")
    # custom models live in this process only: run the grid serially
    result = Runner(parallel=False).run_experiment(exp)
    slow = result[RunSpec(WORKLOAD, "misp", "1x8", scale=SCALE,
                          timing_model="slow_mem")]
    fixed = Session("misp", "1x8").run(WORKLOAD, scale=SCALE)
    print(f"\n3x memory charges: {fixed.cycles:,} -> {slow.cycles:,} "
          f"cycles ({slow.cycles / fixed.cycles:.3f}x, "
          f"timing_model={slow.timing_model!r} in the summary)")


if __name__ == "__main__":
    main()
