"""Porting a legacy Pthreads application to MISP (the Table 2 story).

``lame_mt`` (the frame-parallel MP3 encoder analogue) is written
purely against the Pthreads API -- it knows nothing about shreds.
Porting is the construction of the :class:`PthreadsAPI` shim over
ShredLib (the paper's single header include): the same source then
runs multi-shredded on MISP, as gang workers on the SMP baseline, and
sequentially on 1P.

Run:  python examples/porting_pthreads.py
"""

from repro.workloads.legacy import make_lame_mt, make_ode_like
from repro.workloads.runner import run_1p, run_misp, run_smp


def main():
    app = make_lame_mt()
    base = run_1p(app)
    misp = run_misp(app, ams_count=7)
    smp = run_smp(app, ncpus=8)

    print("lame_mt (legacy Pthreads source, zero lines changed):")
    print(f"  1P        : {base.cycles:>12,} cycles")
    print(f"  MISP 1x8  : {misp.cycles:>12,} cycles "
          f"({base.cycles / misp.cycles:.2f}x)")
    print(f"  SMP 8-way : {smp.cycles:>12,} cycles "
          f"({base.cycles / smp.cycles:.2f}x)")
    shim = getattr(misp.runtime, "legacy_shim", None)
    print(f"  Pthreads calls translated by the shim: "
          f"{shim.calls_translated}")
    print()

    naive = run_misp(make_ode_like(restructured=False), ams_count=7)
    fixed = run_misp(make_ode_like(restructured=True), ams_count=7)
    print("ode_like (the one app needing a structural change, §5.5):")
    print(f"  naive port (main thread sleeps in OS) : {naive.cycles:>12,}")
    print(f"  restructured (native I/O thread)      : {fixed.cycles:>12,}")
    print(f"  restructuring speedup                 : "
          f"{naive.cycles / fixed.cycles:.2f}x")


if __name__ == "__main__":
    main()
