"""The MISP ISA extension at instruction granularity.

Assembles and runs a mini-ISA program that exercises all three MISP
mechanisms on a 1 OMS + 2 AMS processor:

* ``SIGNAL`` delivers ⟨EIP, ESP⟩ continuations to both AMSs;
* each worker's first store page-faults and is **proxy-executed** by
  the OMS (watch the proxy counters);
* a worker SIGNALs the busy OMS, whose ``YMONITOR``-registered handler
  takes the ingress signal as an asynchronous control transfer.

Run:  python examples/misp_assembly.py
"""

from repro.core import build_machine
from repro.isa import AsmStream, assemble
from repro.params import DEFAULT_PARAMS, PAGE_SIZE

SOURCE = """
; ---- main program (runs on the OMS) --------------------------------
boot:
    ymonitor notify          ; register the yield-conditional handler
    li   r0, 1               ; SID 1
    li   r1, 0x180000        ; worker 1 stack
    signal r0, worker, r1
    li   r0, 2               ; SID 2
    li   r1, 0x184000        ; worker 2 stack
    signal r0, worker, r1
    li   r5, 0               ; signals observed
    li   r4, 2
wait:
    spin 2000
    bne  r5, r4, wait        ; until both workers reported in
    sys  write               ; print the result
    halt

notify:                      ; ingress-signal handler (sender in r6)
    addi r5, r5, 1
    yret

; ---- worker shred (runs on an AMS) ----------------------------------
worker:
    li   r2, 0x100000        ; shared results page
    li   r3, 7
    st   r3, r2, 0           ; page fault -> proxy execution
    li   r0, 0               ; SID 0 = the OMS
    li   r1, 0x188000
    signal r0, done, r1      ; tell the OMS we finished
    halt
done:
    halt
"""


def main():
    machine = build_machine([2], params=DEFAULT_PARAMS)
    process = machine.spawn_process("misp-asm")
    space = process.address_space
    space._next_vpn = 0x100000 // PAGE_SIZE
    space.reserve("shared", 4)
    space._next_vpn = 0x180000 // PAGE_SIZE
    space.reserve("stacks", 4)

    program = assemble(SOURCE)
    stream = AsmStream(program, process, DEFAULT_PARAMS,
                       stack_top=0x180000, label="main")
    thread = machine.spawn_thread(process, "main", stream, pinned_cpu=0)
    thread.is_shredded = True
    machine.run_to_completion(limit=10**10)

    print(f"finished at cycle {process.exit_time:,}; "
          f"main retired {stream.instructions_retired} instructions")
    print(f"ingress signals handled by YMONITOR handler: r5 = {stream.regs[5]}")
    print()
    print("architectural event counts:")
    for kind, count in sorted(machine.trace.summary().items()):
        print(f"  {kind:18s} {count}")
    stats = machine.proxy_stats
    print(f"\nproxy executions: {stats.requests} "
          f"(mean latency {stats.mean_latency:,.0f} cycles)")


if __name__ == "__main__":
    main()
