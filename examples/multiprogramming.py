"""MISP multiprocessor throughput under load (Figure 7 in miniature).

Runs the shredded RayTracer with 0..4 background single-threaded
processes on three eight-sequencer partitions plus the SMP baseline
and the per-load ideal partition, and prints the speedup-vs-unloaded
curves.  Watch 1x8 collapse (every background process time-shares the
one OMS and idles the AMSs) while 4x2 stays flat.

Run:  python examples/multiprogramming.py [rt_scale]
"""

import sys

from repro.workloads.multiprog import speedup_curve

CONFIGS = ["ideal", "smp", "4x2", "2x4", "1x8"]


def main():
    rt_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    loads = range(5)
    print(f"RayTracer speedup vs unloaded (rt_scale={rt_scale})")
    print(f"{'config':8s} " + " ".join(f"load={n:<2d}" for n in loads))
    for config in CONFIGS:
        curve = speedup_curve(config, loads=loads, rt_scale=rt_scale)
        print(f"{config:8s} " + " ".join(f"{v:7.3f}" for v in curve))


if __name__ == "__main__":
    main()
