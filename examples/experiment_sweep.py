"""Declare-and-run experiment grids with repro.experiments.

Demonstrates the orchestration subsystem end to end:

1. declare a grid (workloads x systems) plus a parameter sweep;
2. run it through one Runner -- shared runs deduplicate, independent
   runs execute in parallel worker processes;
3. re-run it to show the in-memory memo (and, with REPRO_CACHE_DIR or
   --cache-dir, the on-disk cache) serving repeat invocations.

Run me:  PYTHONPATH=src python examples/experiment_sweep.py
"""

import argparse
import time

from repro.experiments import ExperimentSpec, Runner, RunSpec
from repro.params import DEFAULT_PARAMS

SCALE = 0.1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None,
                        help="persist finished runs on disk")
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args()
    runner = Runner(cache_dir=args.cache_dir, max_workers=args.jobs)

    # --- a Figure-4-shaped grid, plus a signal-cost sweep ------------
    grid = ExperimentSpec.grid(
        "speedups", ["RayTracer", "gauss", "dense_mmm"],
        systems=[("1p", "smp1"), ("misp", "1x8"), ("smp", "smp8")],
        scale=SCALE)
    sweep = ExperimentSpec("signal-sweep", tuple(
        RunSpec("RayTracer", "misp", "1x8", scale=SCALE,
                params=DEFAULT_PARAMS.with_changes(signal_cost=cost))
        for cost in (0, 500, 5000)))

    t0 = time.time()
    result = runner.run_experiment(grid + sweep)
    print(f"ran {len(result)} unique simulations "
          f"in {time.time() - t0:.1f}s  [{runner.stats}]")

    print(f"\n{'workload':12s} {'system':6s} {'config':6s} "
          f"{'cycles':>14s} {'proxy':>6s}")
    for summary in result.summaries():
        print(f"{summary.workload:12s} {summary.system:6s} "
              f"{summary.config:6s} {summary.cycles:>14,} "
              f"{summary.proxy.requests:>6d}")

    # --- repeat invocation: served without simulating ----------------
    t0 = time.time()
    runner.run_experiment(grid + sweep)
    print(f"\nsecond invocation: {time.time() - t0:.3f}s  "
          f"[{runner.stats}]")


if __name__ == "__main__":
    main()
