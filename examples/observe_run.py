"""Observability end to end: metrics, spans, and a Perfetto timeline.

Runs one MISP simulation with ``Session.observe(...)`` turned on and
shows everything the observability layer produces:

* the per-run **metrics families** (engine, trace, timing, memory
  hierarchy, TLB, ShredLib) labeled with the run's correlation id, in
  both snapshot and Prometheus text form;
* timestamped **sync-contention records** from the ShredLib runtime
  log (unified into the same registry);
* a **Perfetto/Chrome trace** (``observe_trace.json``) with one track
  per sequencer -- open it at https://ui.perfetto.dev to see ring
  transitions, proxy choreography, and contention on a timeline.

Run:  python examples/observe_run.py
"""

from repro.obs import MetricsRegistry, export_run
from repro.systems import Session

TRACE_PATH = "observe_trace.json"


def main():
    registry = MetricsRegistry()
    session = (Session("misp", "1x8")
               .observe(registry=registry, run_id="demo"))
    result = session.run("RayTracer", scale=0.05)
    print(f"{result.workload} on {result.system}:{result.config} -> "
          f"{result.cycles:,} cycles (observed as '{result.obs.run_id}')")

    # -- the hot-path counters the observation wrapper collected -------
    obs = result.obs
    print(f"\ntiming layer: {obs.ops:,} ops priced, "
          f"{obs.charged_cycles:,} cycles charged, "
          f"{obs.signal_charges} SIGNALs ({obs.signal_cycles:,} cycles)")

    # -- ShredLib contention, timestamped because the run was observed -
    events = result.runtime.log.contention_events()
    print(f"sync contention: {len(events)} timestamped events")
    for cycle, name in events[:5]:
        print(f"  cycle {cycle:>12,}  {name}")

    # -- every family this run published, Prometheus-style -------------
    print("\nmetrics snapshot (this run's families):")
    for family in sorted(obs.snapshot()):
        print(f"  {family}")
    print("\nPrometheus exposition (excerpt):")
    text = registry.render_prometheus()
    print("\n".join(text.splitlines()[:12]))

    # -- the timeline ---------------------------------------------------
    doc = export_run(result, TRACE_PATH)
    print(f"\nwrote {len(doc['traceEvents'])} trace events -> {TRACE_PATH}")
    print("open it at https://ui.perfetto.dev (or chrome://tracing)")


if __name__ == "__main__":
    main()
