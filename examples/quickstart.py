"""Quickstart: write a multi-shredded program and run it on MISP.

Builds a small data-parallel application against the public ShredLib
API, runs it on the 1P baseline and on a MISP uniprocessor
(1 OMS + 7 AMS), and prints the speedup plus the architectural events
(ring transitions, proxy executions) the run generated.

Run:  python examples/quickstart.py
"""

from repro.workloads.base import WorkloadSpec
from repro.workloads.runner import run_1p, run_misp


def build(api, nworkers):
    """A tiny map-reduce: 32 tasks square numbers, main sums them."""
    ctx = api.ctx
    data = ctx.reserve("data", 64)          # demand-zero pages
    results = []
    lock = api.mutex("results")

    def task(i):
        yield from ctx.touch(data, i % 64)  # first touch page-faults
        yield from ctx.compute(2_000_000)   # the "work"
        yield from lock.acquire()
        results.append(i * i)
        yield from lock.release()

    def main():
        shreds = []
        for i in range(32):
            shred = yield from api.create(task(i), name=f"task-{i}")
            shreds.append(shred)
        yield from api.join_all(shreds)
        assert sorted(results) == [i * i for i in range(32)]
        yield from ctx.syscall("write")     # report the answer
    return main()


def main():
    workload = WorkloadSpec("quickstart", "micro", build)

    base = run_1p(workload)
    misp = run_misp(workload, ams_count=7)

    print(f"1P baseline : {base.cycles:>12,} cycles")
    print(f"MISP 1x8    : {misp.cycles:>12,} cycles")
    print(f"speedup     : {base.cycles / misp.cycles:.2f}x "
          f"on 8 sequencers")
    print()
    print("serializing events on MISP (the Table 1 view):")
    for key, value in misp.serializing_events().items():
        print(f"  {key:15s} {value}")
    print()
    stats = misp.machine.proxy_stats
    print(f"proxy executions: {stats.requests} "
          f"({stats.page_faults} page faults, {stats.syscalls} syscalls), "
          f"mean latency {stats.mean_latency:,.0f} cycles")


if __name__ == "__main__":
    main()
