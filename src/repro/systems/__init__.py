"""Pluggable system backends and the composable Session API.

The MISP paper treats sequencer topology as an architectural
resource; this package treats *systems* -- ways of laying an
application onto a partition -- as pluggable values:

* :class:`SystemBackend` + :data:`SYSTEM_REGISTRY` -- the protocol
  and the name -> backend registry (``misp``, ``smp``, ``1p``,
  ``multiprog``, ``hybrid`` built in).  Registering a backend is
  sufficient to make it spec-able through
  :class:`~repro.experiments.spec.RunSpec`, cacheable, and grid-able.
* :class:`Session` -- the fluent builder that composes a backend with
  configuration/params/policy/limit/background and runs workloads.

Quick start::

    from repro.systems import SYSTEM_REGISTRY, Session

    misp = Session("misp", "1x8").run("RayTracer", scale=0.1)
    hyb = Session("hybrid", "1x4+1x2").run("RayTracer", scale=0.1)
    print(misp.cycles, hyb.cycles, SYSTEM_REGISTRY.names())
"""

from repro.systems.base import (
    DEFAULT_CONFIGS, SYSTEM_REGISTRY, SYSTEMS, StagedRun, SystemBackend,
    SystemRegistry, get_system, register_system,
)
from repro.systems.backends import (
    HYBRID, MISP, MULTIPROG, ONE_P, SMP, HybridBackend, MispBackend,
    MultiprogBackend, OnePBackend, SmpBackend,
)
from repro.systems.session import Session

__all__ = [
    "DEFAULT_CONFIGS", "SYSTEM_REGISTRY", "SYSTEMS", "StagedRun",
    "SystemBackend", "SystemRegistry", "get_system", "register_system",
    "HYBRID", "MISP", "MULTIPROG", "ONE_P", "SMP", "HybridBackend",
    "MispBackend", "MultiprogBackend", "OnePBackend", "SmpBackend",
    "Session",
]
