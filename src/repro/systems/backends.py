"""Built-in system backends: misp, smp, 1p, multiprog, and hybrid.

Each backend owns its slice of the Figure 6 notation rules
(``canonical_config``), its machine construction, and its staging --
everything :func:`repro.experiments.runner.execute` used to dispatch
on system strings.  The ``hybrid`` backend is new relative to the
paper's Section 5 scenarios: it runs one *shredded* application gang
across a multi-group MISP partition such as ``1x4+1x2`` (one OS
thread per MISP processor, plus bare gang-scheduler worker threads on
any plain CPUs), which is what a ShredLib runtime would do on a
heterogeneous MISP MP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.mp import build_machine
from repro.core.notation import (
    FIGURE7_SEQUENCERS, config_name, ideal_config_for_load, parse_config,
    total_sequencers,
)
from repro.errors import ConfigurationError, SimulationError
from repro.mem.hierarchy import (
    private_l2_per_sequencer, shared_l2_per_processor,
)
from repro.smp.machine import build_smp_machine
from repro.systems.base import StagedRun, SystemBackend, register_system
from repro.workloads.multiprog import (
    MULTIPROG_HORIZON, MULTIPROG_SLICE, background_body,
)
from repro.workloads.runner import (
    _setup, misp_group_body, misp_thread_body, smp_main_body,
    smp_worker_body,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.experiments.spec import RunSpec
    from repro.experiments.summary import RunSummary
    from repro.params import MachineParams
    from repro.shredlib.runtime import QueuePolicy
    from repro.workloads.base import WorkloadSpec
    from repro.workloads.runner import RunResult


class MispBackend(SystemBackend):
    """One MISP processor; the application is ONE OS thread (Figure 3)."""

    name = "misp"
    default_config = "1x8"
    description = "single MISP processor, one multi-shredded OS thread"

    def canonical_config(self, config: str,
                         background: int = 0) -> tuple[str, str]:
        counts = parse_config(config)
        if len(counts) != 1:
            raise ConfigurationError(
                f"system='misp' runs on one MISP processor, got '{config}'; "
                "use system='hybrid' for multi-group partitions or "
                "system='multiprog' for MP multiprogramming")
        return self.name, config_name(counts)

    def build_machine(self, config: str,
                      params: "MachineParams") -> "Machine":
        # MISP topology: the shred team shares the processor's L2
        return build_machine(parse_config(config), params=params,
                             hierarchy=shared_l2_per_processor)

    def stage(self, machine: "Machine", workload: "WorkloadSpec", *,
              config: str, policy: "QueuePolicy",
              background: int = 0) -> StagedRun:
        ams_count = parse_config(config)[0]
        process, rt, api = _setup(machine, workload, machine.params)
        rt.policy = policy
        thread = machine.spawn_thread(
            process, f"{workload.name}-main",
            misp_thread_body(machine, 0, rt, api, workload,
                             nworkers=1 + ams_count),
            pinned_cpu=0)
        thread.is_shredded = ams_count > 0
        return StagedRun(machine, process, rt, thread, config=config)


class SmpBackend(SystemBackend):
    """The N-way SMP baseline: one gang-scheduler OS thread per core."""

    name = "smp"
    default_config = "smp8"
    description = "SMP baseline, one worker OS thread per core"

    def canonical_config(self, config: str,
                         background: int = 0) -> tuple[str, str]:
        counts = parse_config(config)
        if any(counts):
            raise ConfigurationError(
                f"system='smp' needs plain CPUs, got '{config}'")
        if len(counts) == 1:
            return "1p", "smp1"
        return self.name, config_name(counts)

    def build_machine(self, config: str,
                      params: "MachineParams") -> "Machine":
        # SMP topology: private L2 per core, coherence between them
        return build_smp_machine(len(parse_config(config)), params=params,
                                 hierarchy=private_l2_per_sequencer)

    def stage(self, machine: "Machine", workload: "WorkloadSpec", *,
              config: str, policy: "QueuePolicy",
              background: int = 0) -> StagedRun:
        process, rt, api = _setup(machine, workload, machine.params)
        rt.policy = policy
        thread = machine.spawn_thread(
            process, f"{workload.name}-main",
            smp_main_body(machine, process, rt, api, workload,
                          nworkers=machine.num_cpus))
        return StagedRun(machine, process, rt, thread, config=config)


class OnePBackend(SmpBackend):
    """Single CPU, single gang scheduler: Figure 4's denominator."""

    name = "1p"
    default_config = "smp1"
    description = "sequential 1P baseline"

    def canonical_config(self, config: str,
                         background: int = 0) -> tuple[str, str]:
        counts = parse_config(config)
        if any(counts) or len(counts) != 1:
            raise ConfigurationError(
                f"system='1p' is the single-CPU baseline, got '{config}'; "
                "use system='smp' for multi-CPU machines")
        return self.name, "smp1"


class HybridBackend(SystemBackend):
    """A shredded gang spanning a multi-group MISP partition.

    New scenario (not in the paper's Section 5): on ``1x4+1x2`` the
    application runs as two multi-shredded OS threads -- one per MISP
    processor, each SIGNALing gang schedulers onto its own AMSs --
    all draining one shared ShredLib work queue.  Plain CPUs in the
    partition (e.g. ``1x4+2``) contribute bare gang-scheduler worker
    threads, SMP-style.
    """

    name = "hybrid"
    default_config = "1x4+1x2"
    description = "shredded gangs across a multi-group MISP partition"

    def canonical_config(self, config: str,
                         background: int = 0) -> tuple[str, str]:
        counts = parse_config(config)
        if not any(counts):
            raise ConfigurationError(
                f"system='hybrid' needs at least one MISP processor, got "
                f"'{config}'; use system='smp' for plain-CPU machines")
        if len(counts) == 1:
            raise ConfigurationError(
                f"system='hybrid' spans multiple processors, got "
                f"'{config}'; use system='misp' for a single MISP "
                "processor")
        return self.name, config_name(counts)

    def build_machine(self, config: str,
                      params: "MachineParams") -> "Machine":
        # each MISP group shares its processor's L2; plain CPUs in the
        # partition degenerate to private L2s
        return build_machine(parse_config(config), params=params,
                             hierarchy=shared_l2_per_processor)

    def stage(self, machine: "Machine", workload: "WorkloadSpec", *,
              config: str, policy: "QueuePolicy",
              background: int = 0) -> StagedRun:
        counts = tuple(len(p.amss) for p in machine.processors)
        process, rt, api = _setup(machine, workload, machine.params)
        rt.policy = policy
        nworkers = total_sequencers(counts)
        main_thread = None
        worker_base = 0
        for proc_index, ams in enumerate(counts):
            if ams > 0:
                primary = main_thread is None
                thread = machine.spawn_thread(
                    process, f"{workload.name}-g{proc_index}",
                    misp_group_body(machine, proc_index, rt, api,
                                    workload if primary else None,
                                    nworkers, worker_base=worker_base),
                    pinned_cpu=proc_index)
                thread.is_shredded = True
                if primary:
                    main_thread = thread
                worker_base += 1 + ams
            else:
                machine.spawn_thread(
                    process, f"{workload.name}-w{worker_base}",
                    smp_worker_body(rt, worker_base),
                    pinned_cpu=proc_index)
                worker_base += 1
        return StagedRun(machine, process, rt, main_thread, config=config)


class MultiprogBackend(SystemBackend):
    """The Section 5.4 multiprogramming study: one shredded application
    plus N single-threaded background processes on a partition of
    :data:`~repro.core.notation.FIGURE7_SEQUENCERS` sequencers."""

    name = "multiprog"
    default_config = "1x8"
    default_limit = MULTIPROG_HORIZON
    supports_background = True
    # drive() polls fixed slices against a horizon, so the engine
    # never drains and the trace's event graph would be truncated
    supports_capture = False
    description = "shredded app + background load (Figure 7)"

    def canonical_config(self, config: str,
                         background: int = 0) -> tuple[str, str]:
        if config == "smp":          # the 8-way SMP baseline series
            return self.name, config
        if config == "ideal":        # per-load partition (Section 5.4)
            counts = ideal_config_for_load(FIGURE7_SEQUENCERS, background)
        else:
            counts = parse_config(config)
        if not any(counts):
            raise ConfigurationError(
                f"multiprog partition '{config}' has no MISP "
                "processor to drive the shredded workload; use "
                "config='smp' for the SMP multiprogramming baseline")
        return self.name, config_name(counts)

    def build_machine(self, config: str,
                      params: "MachineParams") -> "Machine":
        if config == "smp":
            return build_smp_machine(FIGURE7_SEQUENCERS, params=params,
                                     hierarchy=private_l2_per_sequencer)
        return build_machine(parse_config(config), params=params,
                             hierarchy=shared_l2_per_processor)

    def stage(self, machine: "Machine", workload: "WorkloadSpec", *,
              config: str, policy: "QueuePolicy",
              background: int = 0) -> StagedRun:
        process, rt, api = _setup(machine, workload, machine.params)
        if config == "smp":
            thread = machine.spawn_thread(
                process, f"{workload.name}-main",
                smp_main_body(machine, process, rt, api, workload,
                              nworkers=machine.num_cpus))
        else:
            counts = parse_config(config)
            thread = machine.spawn_thread(
                process, f"{workload.name}-main",
                misp_thread_body(machine, 0, rt, api, workload,
                                 nworkers=1 + counts[0]),
                pinned_cpu=0)
            thread.is_shredded = counts[0] > 0
        rt.policy = policy
        for i in range(background):
            bg = machine.spawn_process(f"background-{i}")
            machine.spawn_thread(bg, f"bg-{i}", background_body())
        return StagedRun(machine, process, rt, thread, config=config,
                         background=background)

    def drive(self, staged: StagedRun, limit: int) -> int:
        """Poll for *application* exit: the background processes are
        CPU-bound and never terminate, so the machine as a whole never
        reaches ``all_done``."""
        machine, process = staged.machine, staged.process
        machine.start_timers()
        while not process.exited and machine.now < limit:
            machine.run(until=min(machine.now + MULTIPROG_SLICE, limit))
        if not process.exited:
            raise SimulationError(
                f"'{staged.runtime.name}' did not finish on "
                f"'{staged.config}' with {staged.background} background "
                f"processes within {limit} cycles")
        machine.stop()
        return process.exit_time

    def summarize(self, run: "RunResult",
                  spec: Optional["RunSpec"] = None) -> "RunSummary":
        from repro.experiments.summary import summarize_multiprog
        return summarize_multiprog(run, spec)


#: the built-in backends, in the legacy SYSTEMS presentation order
MISP = register_system(MispBackend())
SMP = register_system(SmpBackend())
ONE_P = register_system(OnePBackend())
MULTIPROG = register_system(MultiprogBackend())
HYBRID = register_system(HybridBackend())
