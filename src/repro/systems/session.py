"""The composable Session builder: one fluent path from backend to run.

A :class:`Session` binds a system backend to a configuration and a
set of execution knobs (machine parameters, gang-scheduler queue
policy, cycle limit, multiprogramming background load) and runs
workloads on it::

    from repro.systems import Session

    result = (Session("misp", "1x8")
              .params(signal_cost=500)
              .policy("lifo")
              .run("RayTracer", scale=0.1))

Sessions are immutable: every knob method returns a *new* session, so
a configured session can be kept and reused as a template.  The
legacy ``run_misp`` / ``run_smp`` / ``run_1p`` functions are thin
wrappers over sessions, and :func:`repro.experiments.runner.execute`
builds one per :class:`~repro.experiments.spec.RunSpec`.
"""

from __future__ import annotations

import copy
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.runtime import QueuePolicy
from repro.systems.base import SystemBackend, get_system
from repro.timing.base import TimingModel, get_timing, resolve_timing
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.runner import RunResult


class Session:
    """A reusable, composable recipe for running workloads on a system."""

    def __init__(self, system: Union[str, SystemBackend],
                 config: Optional[str] = None) -> None:
        self._backend = (get_system(system) if isinstance(system, str)
                         else system)
        self._config = config
        self._params: MachineParams = DEFAULT_PARAMS
        self._policy: QueuePolicy = QueuePolicy.FIFO
        self._limit: Optional[int] = None
        self._background = 0
        self._capture = False
        self._timing: Union[str, TimingModel, type] = "fixed"
        #: (registry, run_id) when observation is requested, else None
        self._observe: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Knobs (each returns a new Session)
    # ------------------------------------------------------------------
    def _clone(self) -> "Session":
        return copy.copy(self)

    def config(self, config: str) -> "Session":
        """Use a different machine configuration."""
        new = self._clone()
        new._config = config
        return new

    def params(self, params: Optional[MachineParams] = None,
               **changes) -> "Session":
        """Set machine parameters, optionally with field overrides.

        ``session.params(signal_cost=500)`` tweaks the current
        parameter set; ``session.params(my_params)`` replaces it.
        """
        new = self._clone()
        base = params if params is not None else self._params
        new._params = base.with_changes(**changes) if changes else base
        return new

    def policy(self, policy: Union[str, QueuePolicy]) -> "Session":
        """Set the gang-scheduler queue policy ("fifo" | "lifo")."""
        new = self._clone()
        new._policy = (policy if isinstance(policy, QueuePolicy)
                       else QueuePolicy(str(policy).strip().lower()))
        return new

    def limit(self, limit: int) -> "Session":
        """Set the cycle budget before the run is declared hung."""
        if limit <= 0:
            raise ConfigurationError(f"limit must be positive: {limit}")
        new = self._clone()
        new._limit = limit
        return new

    def background(self, count: int) -> "Session":
        """Set the number of background single-threaded processes."""
        if count < 0:
            raise ConfigurationError("background must be >= 0")
        new = self._clone()
        new._background = count
        return new

    def timing(self, timing: Union[str, TimingModel, type]) -> "Session":
        """Select the timing model pricing this session's runs.

        Accepts a :data:`~repro.timing.TIMING_REGISTRY` name
        (``"fixed"``, ``"scoreboard"``), a
        :class:`~repro.timing.TimingModel` subclass, or a prototype
        instance (copied per run -- bound models carry run state).
        Names are validated immediately; the model itself is
        instantiated fresh for every :meth:`run`.
        """
        if isinstance(timing, str):
            get_timing(timing)  # fail fast on unknown names
        elif not (isinstance(timing, TimingModel)
                  or (isinstance(timing, type)
                      and issubclass(timing, TimingModel))):
            raise ConfigurationError(
                f"cannot use {timing!r} as a timing model; pass a "
                "registry name, a TimingModel subclass, or an instance")
        new = self._clone()
        new._timing = timing
        return new

    def capture(self, enabled: bool = True) -> "Session":
        """Record an execution trace (``RunResult.trace``) for replay.

        The trace feeds :class:`repro.sim.captrace.ReplayMachine`,
        which re-prices the run under new timing parameters without
        re-executing it.  Only valid on backends whose drive loop
        drains the engine (``supports_capture``).
        """
        new = self._clone()
        new._capture = enabled
        return new

    def observe(self, enabled: bool = True, *, registry=None,
                run_id: Optional[str] = None) -> "Session":
        """Instrument the run with the observability layer.

        An observed run wraps the timing charge path in op/cycle
        counters, turns on fine-grained trace records (timeline
        export), timestamps ShredLib contention, and pumps everything
        into a metrics registry (default: the process-wide one from
        :func:`repro.obs.get_registry`) under one correlation id.  The
        :class:`~repro.obs.observe.ObservedRun` rides back on
        ``RunResult.obs``.  Un-observed sessions pay nothing.
        """
        new = self._clone()
        new._observe = (registry, run_id) if enabled else None
        return new

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def resolve(self) -> tuple[SystemBackend, str]:
        """The canonical ``(backend, config)`` this session will run on.

        Canonicalization may redirect to a different backend (e.g.
        ``smp`` on one CPU collapses to ``1p``).
        """
        config = (self._config or self._backend.default_config)
        system, config = self._backend.canonical_config(
            str(config).strip().lower(), self._background)
        backend = (self._backend if system == self._backend.name
                   else get_system(system))
        if self._background and not backend.supports_background:
            raise ConfigurationError(
                f"system '{backend.name}' does not support background "
                "processes; use a multiprogramming system")
        return backend, config

    def _timing_name(self) -> str:
        if isinstance(self._timing, str):
            return self._timing
        return self._timing.name

    def describe(self) -> str:
        backend, config = self.resolve()
        extra = f"+{self._background}bg" if self._background else ""
        timing = self._timing_name()
        if timing != "fixed":
            extra += f"~{timing}"
        return f"{backend.name}:{config}{extra}"

    def run(self, workload: Union[str, WorkloadSpec],
            scale: Optional[float] = None, **args) -> RunResult:
        """Run a workload (a spec, or a registry name to build) on this
        session's system and return the live :class:`RunResult`."""
        if isinstance(workload, str):
            workload = REGISTRY.build(workload, scale, **args)
        elif scale is not None or args:
            raise ConfigurationError(
                "scale/args apply to registry names; pass a workload "
                "name string to build one")
        backend, config = self.resolve()
        machine = backend.build_machine(config, self._params)
        # backend build signatures stay timing-agnostic; the resolved
        # model (a fresh instance per run) attaches here
        timing_model = resolve_timing(self._timing)
        machine.set_timing(timing_model)
        obs = None
        if self._observe is not None:
            from repro.obs.observe import ObservedRun
            registry, run_id = self._observe
            obs = ObservedRun(registry=registry, run_id=run_id)
            machine.enable_observation(obs)
        cap = None
        if self._capture:
            if not backend.supports_capture:
                raise ConfigurationError(
                    f"system '{backend.name}' does not support trace "
                    "capture (its drive loop does not drain the engine)")
            if not timing_model.supports_capture:
                raise ConfigurationError(
                    f"timing model '{timing_model.canonical_name()}' does "
                    "not support trace capture: its op costs depend on "
                    "pipeline occupancy, so a captured cost decomposition "
                    "would not replay -- drop .capture(), or use "
                    ".timing('fixed')")
            cap = machine.enable_capture()
        staged = backend.stage(machine, workload, config=config,
                               policy=self._policy,
                               background=self._background)
        if obs is not None:
            obs.attach_runtime(staged.runtime)
        limit = self._limit if self._limit is not None else backend.default_limit
        cycles = backend.drive(staged, limit)
        trace = None
        if cap is not None:
            from repro.sim.captrace import CapturedTrace
            machine.engine.set_recorder(None)
            trace = CapturedTrace.from_machine(machine, cap,
                                               staged.process.pid)
        if obs is not None:
            obs.finish(cycles=cycles, runtime=staged.runtime,
                       workload=workload.name, system=backend.name,
                       config=config)
        return RunResult(workload.name, backend.name, config, cycles,
                         machine, staged.runtime, staged.main_thread,
                         background=self._background, trace=trace,
                         obs=obs)

    def __repr__(self) -> str:
        try:
            label = self.describe()
        except Exception:
            # repr must not raise on not-yet-valid configurations
            label = f"{self._backend.name}:{self._config or '?'}"
        return f"Session({label!r})"
