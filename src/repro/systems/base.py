"""The system-backend protocol and registry.

A *system* is everything about a simulation that is not the workload:
how the machine is partitioned, how the application's OS threads and
gang schedulers are laid onto it, and how the finished run is boiled
down to a :class:`~repro.experiments.summary.RunSummary`.  The paper's
point is that sequencer topology is an architectural resource; this
module makes it a *pluggable* one, mirroring the workload
``REGISTRY``:

* :class:`SystemBackend` -- the protocol: a ``name``, a
  ``default_config``, ``canonical_config`` (the Figure 6 notation
  rules for this system), ``build_machine``, ``stage`` (lay the
  application onto the machine), ``drive`` (run it), ``summarize``;
* :data:`SYSTEM_REGISTRY` -- name -> backend, consulted by
  :class:`~repro.experiments.spec.RunSpec` validation and by
  :func:`~repro.experiments.runner.execute`, so *registering a backend
  is sufficient* to make it spec-able, cacheable, and grid-able;
* :data:`SYSTEMS` / :data:`DEFAULT_CONFIGS` -- live views over the
  registry (re-exported by :mod:`repro.experiments` for
  compatibility); a backend registered at runtime appears in both.

Custom backends registered at runtime are visible only in the
registering process: run them through a serial Runner
(``Runner(parallel=False)``), or register them at import time so
worker processes see them too.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import ConfigurationError
from repro.workloads.runner import DEFAULT_LIMIT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.experiments.spec import RunSpec
    from repro.experiments.summary import RunSummary
    from repro.kernel.process import OSThread, Process
    from repro.params import MachineParams
    from repro.shredlib.runtime import QueuePolicy, ShredRuntime
    from repro.workloads.base import WorkloadSpec
    from repro.workloads.runner import RunResult


@dataclass
class StagedRun:
    """A machine with the application laid onto it, ready to drive."""

    machine: "Machine"
    process: "Process"
    runtime: "ShredRuntime"
    main_thread: "OSThread"
    config: str = ""
    background: int = 0


class SystemBackend:
    """One way of running a workload on a simulated system.

    Subclasses set the class attributes and implement the three
    stages; :class:`~repro.systems.session.Session` composes them into
    a run, and the experiment layer resolves them by name through
    :data:`SYSTEM_REGISTRY`.
    """

    #: registry key (``RunSpec.system``)
    name: str = ""
    #: configuration used when a spec/session names none
    default_config: str = ""
    #: cycle budget substituted for the untouched generic default
    default_limit: int = DEFAULT_LIMIT
    #: whether ``background`` (multiprogramming load) is meaningful
    supports_background: bool = False
    #: whether trace capture/replay (repro.sim.captrace) is valid for
    #: this backend's drive loop (requires a plain run-to-completion
    #: engine drain)
    supports_capture: bool = True
    #: one-line description for docs and error messages
    description: str = ""

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def canonical_config(self, config: str,
                         background: int = 0) -> tuple[str, str]:
        """Normalize ``config``; returns the canonical ``(system,
        config)`` pair.

        The returned system name may differ from :attr:`name` -- e.g.
        the SMP backend canonicalizes a single-CPU configuration to
        the ``1p`` baseline -- in which case the caller re-resolves
        the backend through the registry.
        """
        return self.name, config

    def build_machine(self, config: str,
                      params: "MachineParams") -> "Machine":
        """Build the simulated machine for a canonical ``config``.

        This is also where a backend declares its memory-hierarchy
        topology: pass a :data:`repro.mem.hierarchy.HierarchyFactory`
        (e.g. ``shared_l2_per_processor`` for MISP shapes,
        ``private_l2_per_sequencer`` for SMP shapes) to the machine
        factory, so sharing-vs-coherence differences between systems
        are built in rather than assumed.
        """
        raise NotImplementedError

    def stage(self, machine: "Machine", workload: "WorkloadSpec", *,
              config: str, policy: "QueuePolicy",
              background: int = 0) -> StagedRun:
        """Lay the workload's processes/threads/shreds onto ``machine``."""
        raise NotImplementedError

    def drive(self, staged: StagedRun, limit: int) -> int:
        """Run a staged machine to completion; returns the cycle count."""
        staged.machine.run_to_completion(limit)
        return staged.process.exit_time or staged.machine.now

    def summarize(self, run: "RunResult",
                  spec: Optional["RunSpec"] = None) -> "RunSummary":
        """Flatten a finished run into plain, picklable data."""
        from repro.experiments.summary import summarize_run
        return summarize_run(run, spec)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} '{self.name}'>"


class SystemRegistry:
    """Name -> :class:`SystemBackend`, in registration order."""

    def __init__(self) -> None:
        self._backends: dict[str, SystemBackend] = {}

    @staticmethod
    def _key(name: str) -> str:
        return str(name).strip().lower()

    def register(self, backend: SystemBackend, *,
                 replace: bool = False) -> SystemBackend:
        """Register a backend under its :attr:`~SystemBackend.name`.

        ``replace=True`` swaps an existing backend in place.  Note
        that :meth:`RunSpec.spec_hash` encodes the backend's *name*,
        not its behavior: a replacement that simulates differently
        under the same name will be served stale results by the
        on-disk cache.  Give behaviorally different backends distinct
        names (or point the Runner at a fresh ``cache_dir``).
        """
        key = self._key(backend.name)
        if not key:
            raise ConfigurationError("system backend needs a name")
        if key in self._backends and not replace:
            raise ConfigurationError(
                f"system '{key}' already registered; pass replace=True "
                "to override")
        self._backends[key] = backend
        return backend

    def unregister(self, name: str) -> SystemBackend:
        try:
            return self._backends.pop(self._key(name))
        except KeyError:
            raise ConfigurationError(
                f"system '{name}' is not registered") from None

    def find(self, name: str) -> Optional[SystemBackend]:
        return self._backends.get(self._key(name))

    def get(self, name: str) -> SystemBackend:
        backend = self.find(name)
        if backend is None:
            raise ConfigurationError(
                f"unknown system '{name}'; registered systems: "
                f"{tuple(self._backends)}")
        return backend

    def names(self) -> list[str]:
        return list(self._backends)

    def backends(self) -> list[SystemBackend]:
        return list(self._backends.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._key(name) in self._backends

    def __len__(self) -> int:
        return len(self._backends)

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._backends))

    @contextmanager
    def temporary(self, backend: SystemBackend):
        """Register ``backend`` for the duration of a ``with`` block."""
        self.register(backend)
        try:
            yield backend
        finally:
            self.unregister(backend.name)


#: the process-wide registry, populated by :mod:`repro.systems.backends`
SYSTEM_REGISTRY = SystemRegistry()


def register_system(backend: SystemBackend, *,
                    replace: bool = False) -> SystemBackend:
    """Register a backend in the process-wide :data:`SYSTEM_REGISTRY`."""
    return SYSTEM_REGISTRY.register(backend, replace=replace)


def get_system(name: str) -> SystemBackend:
    """Look up a backend by name (raises ConfigurationError if unknown)."""
    return SYSTEM_REGISTRY.get(name)


class _SystemsView(Sequence):
    """Live, tuple-like view of the registered system names."""

    def __init__(self, registry: SystemRegistry) -> None:
        self._registry = registry

    def __getitem__(self, index):
        return tuple(self._registry.names())[index]

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __repr__(self) -> str:
        return repr(tuple(self._registry.names()))


class _DefaultConfigsView(Mapping):
    """Live name -> ``default_config`` view of the registry."""

    def __init__(self, registry: SystemRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> str:
        backend = self._registry.find(name)
        if backend is None:
            raise KeyError(name)
        return backend.default_config

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry)

    def __len__(self) -> int:
        return len(self._registry)

    def __repr__(self) -> str:
        return repr(dict(self))


#: systems a RunSpec can target (live registry view)
SYSTEMS = _SystemsView(SYSTEM_REGISTRY)

#: default machine configuration per system (live registry view)
DEFAULT_CONFIGS = _DefaultConfigsView(SYSTEM_REGISTRY)
