"""Workload interface for the evaluation harness.

A workload is a multi-shredded application written against the public
:class:`~repro.shredlib.api.ShredAPI`.  The same body runs on every
system configuration:

* on **MISP**, the main shred runs inside one OS thread whose gang
  schedulers occupy the OMS and (via ``SIGNAL``) the AMSs;
* on the **SMP baseline**, the gang schedulers run as one OS thread
  per core;
* on the **1P baseline**, a single gang scheduler runs everything
  sequentially (the denominator of Figure 4's speedups).

``build(api, nworkers)`` returns the main shred's generator;
``nworkers`` is how many gang schedulers will drain the queue, so the
workload can size its shred count (M >= N, Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI

#: signature of a workload main-shred factory
BuildFn = Callable[[ShredAPI, int], Iterator[Op]]

#: signature of a spec factory: ``factory(scale=..., **kwargs)`` builds
#: a (possibly scaled or otherwise parameterized) WorkloadSpec
SpecFactory = Callable[..., "WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark application."""

    name: str
    #: "rms", "speccomp", "micro", or "legacy"
    suite: str
    build: BuildFn
    description: str = ""
    #: deterministic seed fed to the workload's RNG streams
    seed: int = 0

    def instantiate(self, api: ShredAPI, nworkers: int) -> Iterator[Op]:
        return self.build(api, nworkers)


class WorkloadRegistry:
    """Name -> spec registry used by benchmarks and examples.

    Besides the full-size spec instances, the registry holds each
    workload's *spec factory*, so scaled (or otherwise parameterized)
    variants are constructed uniformly by name everywhere -- the
    experiment layer resolves every :class:`repro.experiments.RunSpec`
    through :meth:`build`.
    """

    def __init__(self) -> None:
        self._specs: dict[str, WorkloadSpec] = {}
        self._factories: dict[str, SpecFactory] = {}

    def register(self, spec: WorkloadSpec,
                 factory: Optional[SpecFactory] = None) -> WorkloadSpec:
        if spec.name in self._specs:
            raise ValueError(f"workload '{spec.name}' already registered")
        self._specs[spec.name] = spec
        if factory is not None:
            self._factories[spec.name] = factory
        return spec

    def get(self, name: str) -> WorkloadSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown workload '{name}'; known: {sorted(self._specs)}"
            ) from None

    def build(self, name: str, scale: Optional[float] = None,
              **kwargs) -> WorkloadSpec:
        """Construct the named workload, optionally scaled.

        ``scale=None`` with no extra arguments returns the registered
        full-size spec; anything else goes through the workload's
        registered factory (``factory(scale=..., **kwargs)``).
        """
        if scale is None and not kwargs:
            return self.get(name)
        self.get(name)  # canonical unknown-name error
        factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"workload '{name}' has no spec factory; it cannot be "
                "scaled or parameterized")
        return factory(scale=1.0 if scale is None else scale, **kwargs)

    def by_suite(self, suite: str) -> list[WorkloadSpec]:
        return [s for s in self._specs.values() if s.suite == suite]

    def names(self) -> list[str]:
        return sorted(self._specs)


#: the process-wide registry populated by the rms/ and speccomp/ modules
REGISTRY = WorkloadRegistry()
