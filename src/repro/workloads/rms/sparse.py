"""RMS sparse matrix-vector kernels: sparse_mvm, sparse_mvm_sym,
sparse_mvm_trans.

CSR-style kernels with irregular per-row work (higher task variance
than the dense kernels).  The symmetric variant updates both ``y[i]``
and ``y[j]`` per nonzero, so concurrent tasks serialize briefly on
per-band output locks -- the kind of "contention on common
synchronization objects" ShredLib's event log profiles (Section 4.2).

Per the paper's Table 1 these kernels first-touch most of their data
from worker shreds (CSR value/column slices), so their compulsory
faults arrive as AMS proxy events (205 / 669 / 200), unlike
gauss/kmeans/svm whose main thread initializes everything.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.common import (
    WORK_CHUNK, chunk_ranges, jittered, parallel_for,
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(value * scale))


def _make_sparse(name: str, *, main_pages: int, shred_pages: int,
                 total_work: int, serial_work: int, iterations: int,
                 task_cv: float, locked_bands: int = 0,
                 scale: float = 1.0) -> WorkloadSpec:
    main_pages = _scaled(main_pages, scale)
    shred_pages = _scaled(shred_pages, scale)
    total_work = _scaled(total_work, scale)
    serial_work = _scaled(serial_work, scale)
    ntasks = 64

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        index = ctx.reserve("csr_index", main_pages)   # row_ptr + x
        values = ctx.reserve("csr_values", shred_pages)
        rng = ctx.rng(11)
        locks = [api.mutex(f"yband-{b}") for b in range(locked_bands)]
        work_per_iter = total_work // iterations
        serial_per_iter = serial_work // iterations
        slices = chunk_ranges(shred_pages, ntasks)

        def row_task(tid: int, iteration: int) -> Iterator[Op]:
            if iteration == 0:
                start, count = slices[tid]
                yield from ctx.touch_range(values, start, count)
            work = jittered(work_per_iter // ntasks, task_cv, rng)
            if locks:
                # symmetric update: y[i] and y[j] bands under lock
                lock = locks[tid % len(locks)]
                pre = work // 4
                yield from ctx.compute(max(1, work - pre), chunk=WORK_CHUNK)
                yield from lock.acquire()
                yield from ctx.compute(max(1, pre), chunk=WORK_CHUNK)
                yield from lock.release()
            else:
                yield from ctx.compute(work, chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            # serial: build row pointers / load the vector
            yield from ctx.touch_range(index, 0, main_pages, write=True)
            for iteration in range(iterations):
                bodies = [row_task(i, iteration) for i in range(ntasks)]
                yield from parallel_for(api, bodies, name=name)
                yield from ctx.compute(serial_per_iter, chunk=WORK_CHUNK)

        return main()

    return WorkloadSpec(name, "rms", build,
                        description=f"CSR sparse kernel '{name}'")


def make_sparse_mvm(scale: float = 1.0) -> WorkloadSpec:
    return _make_sparse("sparse_mvm", main_pages=27, shred_pages=205,
                        total_work=1_250_000_000, serial_work=81_000_000,
                        iterations=4, task_cv=0.30, scale=scale)


def make_sparse_mvm_sym(scale: float = 1.0) -> WorkloadSpec:
    return _make_sparse("sparse_mvm_sym", main_pages=11, shred_pages=669,
                        total_work=3_400_000_000, serial_work=294_000_000,
                        iterations=8, task_cv=0.35, locked_bands=8,
                        scale=scale)


def make_sparse_mvm_trans(scale: float = 1.0) -> WorkloadSpec:
    return _make_sparse("sparse_mvm_trans", main_pages=26, shred_pages=200,
                        total_work=9_100_000_000, serial_work=590_000_000,
                        iterations=12, task_cv=0.30, scale=scale)


REGISTRY.register(make_sparse_mvm(), factory=make_sparse_mvm)
REGISTRY.register(make_sparse_mvm_sym(), factory=make_sparse_mvm_sym)
REGISTRY.register(make_sparse_mvm_trans(), factory=make_sparse_mvm_trans)
