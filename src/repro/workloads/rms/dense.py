"""RMS dense linear-algebra kernels: dense_mmm, dense_mvm, dense_mvm_sym.

The RMS suite "includes kernels of code for matrix multiplication
(both dense and sparse)" (Section 5.2).  Each kernel is written
against the ShredLib API with the structure of the real algorithm:

* ``dense_mmm`` -- blocked C = A*B; the main shred initializes A and B
  (its compulsory faults land on the OMS), worker tasks first-touch
  their C blocks and workspace (their faults are AMS proxy events).
* ``dense_mvm`` -- y = A*x, row-striped, single pass.
* ``dense_mvm_sym`` -- y = A*x with A symmetric packed (triangular
  storage), iterated power-method style; triangular row blocks give
  the tasks a deterministic work skew.

Work amounts (cycles) and page-profile targets come from the paper's
Table 1 event counts for these kernels; see EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.common import (
    WORK_CHUNK, chunk_ranges, jittered, parallel_for,
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(value * scale))


def make_dense_mmm(scale: float = 1.0) -> WorkloadSpec:
    """Blocked dense matrix-matrix multiply."""
    input_pages = _scaled(29, scale)       # A and B (paper OMS PF: 29)
    output_pages = _scaled(133, scale)     # C + per-task workspace (AMS PF: 133)
    total_work = _scaled(2_080_000_000, scale)
    serial_work = _scaled(20_000_000, scale)
    ntasks = 64

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        inputs = ctx.reserve("AB", input_pages)
        output = ctx.reserve("C", output_pages)
        rng = ctx.rng(1)

        def block_task(tid: int, page_start: int, page_count: int) -> Iterator[Op]:
            # first touch of this task's C block: compulsory fault
            yield from ctx.touch_range(output, page_start, page_count, write=True)
            yield from ctx.compute(jittered(total_work // ntasks, 0.05, rng),
                                   chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            # serial: initialize A and B on the main shred
            yield from ctx.touch_range(inputs, 0, input_pages, write=True)
            yield from ctx.compute(serial_work, chunk=WORK_CHUNK)
            blocks = chunk_ranges(output_pages, ntasks)
            bodies = [block_task(i, start, count)
                      for i, (start, count) in enumerate(blocks)]
            yield from parallel_for(api, bodies, name="mmm")

        return main()

    return WorkloadSpec("dense_mmm", "rms", build,
                        description="blocked dense matrix-matrix multiply")


def make_dense_mvm(scale: float = 1.0) -> WorkloadSpec:
    """Row-striped dense matrix-vector multiply."""
    input_pages = _scaled(1, scale)
    output_pages = _scaled(5, scale)
    total_work = _scaled(770_000_000, scale)
    serial_work = _scaled(36_000_000, scale)
    ntasks = 32

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        vec = ctx.reserve("x", input_pages)
        out = ctx.reserve("y", output_pages)
        rng = ctx.rng(2)

        def stripe_task(tid: int, page: int) -> Iterator[Op]:
            yield from ctx.touch_range(out, page, 1, write=True)
            yield from ctx.compute(jittered(total_work // ntasks, 0.03, rng),
                                   chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            yield from ctx.touch_range(vec, 0, input_pages, write=True)
            yield from ctx.compute(serial_work, chunk=WORK_CHUNK)
            bodies = [stripe_task(i, i % output_pages) for i in range(ntasks)]
            yield from parallel_for(api, bodies, name="mvm")

        return main()

    return WorkloadSpec("dense_mvm", "rms", build,
                        description="row-striped dense matrix-vector multiply")


def make_dense_mvm_sym(scale: float = 1.0) -> WorkloadSpec:
    """Symmetric-packed matrix-vector multiply, power-iterated."""
    input_pages = _scaled(2, scale)
    output_pages = _scaled(9, scale)
    iterations = 16
    total_work = _scaled(16_500_000_000, scale)
    serial_work = _scaled(337_000_000, scale)
    ntasks = 64

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        vec = ctx.reserve("x", input_pages)
        out = ctx.reserve("y", output_pages)
        work_per_iter = total_work // iterations
        serial_per_iter = serial_work // iterations

        def tri_task(tid: int, iteration: int) -> Iterator[Op]:
            if iteration == 0:
                yield from ctx.touch_range(out, tid % output_pages, 1, write=True)
            # triangular storage: task tid covers rows with ~linear skew
            share = 2 * (tid + 1) / (ntasks * (ntasks + 1))
            yield from ctx.compute(max(1, int(work_per_iter * share)),
                                   chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            yield from ctx.touch_range(vec, 0, input_pages, write=True)
            for iteration in range(iterations):
                bodies = [tri_task(i, iteration) for i in range(ntasks)]
                yield from parallel_for(api, bodies, name="mvmsym")
                # serial: normalize the iterate
                yield from ctx.compute(serial_per_iter, chunk=WORK_CHUNK)

        return main()

    return WorkloadSpec("dense_mvm_sym", "rms", build,
                        description="symmetric dense MVM (power iteration)")


REGISTRY.register(make_dense_mmm(), factory=make_dense_mmm)
REGISTRY.register(make_dense_mvm(), factory=make_dense_mvm)
REGISTRY.register(make_dense_mvm_sym(), factory=make_dense_mvm_sym)
