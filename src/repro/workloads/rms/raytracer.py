"""RayTracer: the RMS suite's "highly scalable multithreaded graphics
application" (Hurley, Intel Technology Journal 2005).

Tile-based rendering: the image is cut into many more tiles than
sequencers and tiles flow through the shared work queue, so the large
per-tile cost variance (empty sky vs. reflective geometry) balances
naturally -- which is why RayTracer is the most scalable application
in Figure 4 and the measured application of the Figure 7
multiprogramming study.

Page profile (Table 1): the main shred loads the scene/BVH (210 OMS
compulsory faults); worker shreds first-touch the framebuffer and
per-tile ray state (979 AMS proxy faults).
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.common import WORK_CHUNK, chunk_ranges, jittered, parallel_for


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(value * scale))


def make_raytracer(scale: float = 1.0, ntiles: int = 512,
                   probe_pages: bool = False) -> WorkloadSpec:
    """``probe_pages=True`` applies the Section 5.3 optimization: the
    main shred touches one byte of every framebuffer page while still
    in the serial region, converting the workers' compulsory AMS proxy
    faults into cheap OMS faults."""
    scene_pages = _scaled(210, scale)
    framebuffer_pages = _scaled(979, scale)
    total_work = _scaled(9_170_000_000, scale)
    serial_work = _scaled(34_000_000, scale)

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        scene = ctx.reserve("scene", scene_pages)
        framebuffer = ctx.reserve("framebuffer", framebuffer_pages)
        rng = ctx.rng(51)
        tiles = chunk_ranges(framebuffer_pages, ntiles)

        def render_tile(tid: int) -> Iterator[Op]:
            start, count = tiles[tid]
            if count > 0:
                yield from ctx.touch_range(framebuffer, start, count,
                                           write=True)
            # per-tile cost varies strongly with scene content
            yield from ctx.compute(
                jittered(total_work // ntiles, 0.40, rng), chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            # serial: parse the scene and build the BVH
            yield from ctx.touch_range(scene, 0, scene_pages, write=True)
            if probe_pages:
                # page-probing optimization (Section 5.3)
                yield from ctx.touch_range(framebuffer, 0,
                                           framebuffer_pages, write=True)
            yield from ctx.compute(serial_work, chunk=WORK_CHUNK)
            bodies = [render_tile(i) for i in range(ntiles)]
            yield from parallel_for(api, bodies, name="tile")
            # write the image out
            yield from ctx.syscall("write")

        return main()

    name = "RayTracer" + ("_probed" if probe_pages else "")
    return WorkloadSpec(name, "rms", build,
                        description="tile-parallel ray tracer")


REGISTRY.register(make_raytracer(), factory=make_raytracer)
