"""RMS benchmark-suite kernels (Section 5.2)."""

from repro.workloads.rms.dense import (
    make_dense_mmm, make_dense_mvm, make_dense_mvm_sym,
)
from repro.workloads.rms.raytracer import make_raytracer
from repro.workloads.rms.solvers import (
    make_adat, make_gauss, make_kmeans, make_svm_c,
)
from repro.workloads.rms.sparse import (
    make_sparse_mvm, make_sparse_mvm_sym, make_sparse_mvm_trans,
)

__all__ = [
    "make_dense_mmm", "make_dense_mvm", "make_dense_mvm_sym",
    "make_raytracer", "make_adat", "make_gauss", "make_kmeans",
    "make_svm_c", "make_sparse_mvm", "make_sparse_mvm_sym",
    "make_sparse_mvm_trans",
]
