"""RMS iterative solvers and learners: gauss, kmeans, svm_c, ADAt.

* ``gauss`` -- red/black Gauss-Seidel PDE sweeps ("partial
  differential equations solver (Gauss-Seidel iterative solver)").
  The main shred initializes the full grid -- 7170 compulsory OMS
  faults in the paper's Table 1 -- and worker tasks then sweep
  already-resident pages, so AMS proxy faults are ~0.
* ``kmeans`` -- K-means clustering: parallel assignment over point
  chunks, serial centroid recomputation per iteration.
* ``svm_c`` -- SVM classifier training: parallel kernel-row
  evaluations with a shred-side kernel cache (its first touches are
  the paper's 1307 AMS faults), serial multiplier update.
* ``ADAt`` -- the A*D*A^T triple product: two dependent parallel
  phases per iteration.

gauss, kmeans, and svm_c also log progress through a periodic
``write`` system call on the main shred -- the 8 OMS syscalls the
paper reports for each.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.common import (
    WORK_CHUNK, chunk_ranges, jittered, parallel_for,
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(value * scale))


def make_gauss(scale: float = 1.0) -> WorkloadSpec:
    """Red/black Gauss-Seidel iterative solver."""
    grid_pages = _scaled(7170, scale)
    iterations = 24
    total_work = _scaled(15_900_000_000, scale)
    serial_work = _scaled(800_000_000, scale)   # residual checks
    syscall_every = 3                           # 24/3 = 8 progress logs
    ntasks = 32

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        grid = ctx.reserve("grid", grid_pages)
        work_per_phase = total_work // (iterations * 2)
        serial_per_iter = serial_work // iterations

        def sweep_task(tid: int) -> Iterator[Op]:
            # pages are resident (main initialized the grid)
            yield from ctx.compute(work_per_phase // ntasks, chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            # serial: set up the grid and boundary conditions
            yield from ctx.touch_range(grid, 0, grid_pages, write=True)
            for iteration in range(iterations):
                for _color in ("red", "black"):
                    bodies = [sweep_task(i) for i in range(ntasks)]
                    yield from parallel_for(api, bodies, name="sweep")
                yield from ctx.compute(serial_per_iter, chunk=WORK_CHUNK)
                if iteration % syscall_every == syscall_every - 1:
                    yield from ctx.syscall("write")

        return main()

    return WorkloadSpec("gauss", "rms", build,
                        description="red/black Gauss-Seidel PDE solver")


def make_kmeans(scale: float = 1.0) -> WorkloadSpec:
    """K-means clustering."""
    point_pages = _scaled(7170, scale)
    iterations = 10
    total_work = _scaled(3_250_000_000, scale)
    serial_work = _scaled(95_000_000, scale)
    ntasks = 32

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        points = ctx.reserve("points", point_pages)
        rng = ctx.rng(21)
        work_per_iter = total_work // iterations
        serial_per_iter = serial_work // iterations

        def assign_task(tid: int) -> Iterator[Op]:
            yield from ctx.compute(
                jittered(work_per_iter // ntasks, 0.05, rng),
                chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            # serial: load the dataset
            yield from ctx.touch_range(points, 0, point_pages, write=True)
            for iteration in range(iterations):
                bodies = [assign_task(i) for i in range(ntasks)]
                yield from parallel_for(api, bodies, name="assign")
                # serial: recompute centroids
                yield from ctx.compute(serial_per_iter, chunk=WORK_CHUNK)
                if iteration % 2 == 0 and iteration < 16:
                    yield from ctx.syscall("write")
                if iteration % 2 == 1 and iteration < 6:
                    yield from ctx.syscall("write")

        return main()

    return WorkloadSpec("kmeans", "rms", build,
                        description="K-means clustering")


def make_svm_c(scale: float = 1.0) -> WorkloadSpec:
    """SVM classifier training."""
    data_pages = _scaled(7204, scale)
    cache_pages = _scaled(1307, scale)
    iterations = 16
    total_work = _scaled(11_400_000_000, scale)
    serial_work = _scaled(560_000_000, scale)
    ntasks = 48

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        data = ctx.reserve("training", data_pages)
        cache = ctx.reserve("kcache", cache_pages)
        rng = ctx.rng(31)
        work_per_iter = total_work // iterations
        serial_per_iter = serial_work // iterations
        # kernel-cache rows materialize over the first iterations
        cache_slices = chunk_ranges(cache_pages, iterations // 2)

        def kernel_task(tid: int, iteration: int) -> Iterator[Op]:
            if iteration < len(cache_slices) and tid == 0:
                start, count = cache_slices[iteration]
                yield from ctx.touch_range(cache, start, count, write=True)
            yield from ctx.compute(
                jittered(work_per_iter // ntasks, 0.20, rng),
                chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            yield from ctx.touch_range(data, 0, data_pages, write=True)
            for iteration in range(iterations):
                bodies = [kernel_task(i, iteration) for i in range(ntasks)]
                yield from parallel_for(api, bodies, name="kernel")
                yield from ctx.compute(serial_per_iter, chunk=WORK_CHUNK)
                if iteration % 2 == 1:
                    yield from ctx.syscall("write")

        return main()

    return WorkloadSpec("svm_c", "rms", build,
                        description="SVM classifier training")


def make_adat(scale: float = 1.0) -> WorkloadSpec:
    """The A*D*A^T triple product (two dependent parallel phases)."""
    main_pages = _scaled(1, scale)
    shred_pages = _scaled(9, scale)
    iterations = 6
    total_work = _scaled(2_130_000_000, scale)
    serial_work = _scaled(63_000_000, scale)
    ntasks = 32

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        diag = ctx.reserve("D", main_pages)
        temp = ctx.reserve("DAt", shred_pages)
        rng = ctx.rng(41)
        work_per_phase = total_work // (iterations * 2)
        serial_per_iter = serial_work // iterations

        def phase_task(tid: int, iteration: int, phase: int) -> Iterator[Op]:
            if iteration == 0 and phase == 0:
                yield from ctx.touch_range(temp, tid % shred_pages, 1,
                                           write=True)
            yield from ctx.compute(
                jittered(work_per_phase // ntasks, 0.08, rng),
                chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            yield from ctx.touch_range(diag, 0, main_pages, write=True)
            for iteration in range(iterations):
                for phase in range(2):  # D*A^T then A*(D*A^T)
                    bodies = [phase_task(i, iteration, phase)
                              for i in range(ntasks)]
                    yield from parallel_for(api, bodies, name=f"ph{phase}")
                yield from ctx.compute(serial_per_iter, chunk=WORK_CHUNK)

        return main()

    return WorkloadSpec("ADAt", "rms", build,
                        description="A*D*A^T triple product")


REGISTRY.register(make_gauss(), factory=make_gauss)
REGISTRY.register(make_kmeans(), factory=make_kmeans)
REGISTRY.register(make_svm_c(), factory=make_svm_c)
REGISTRY.register(make_adat(), factory=make_adat)
