"""Evaluation workloads: RMS kernels, SPEComp proxies, and drivers.

Importing this package populates :data:`repro.workloads.base.REGISTRY`
with the 16 applications of the paper's Section 5 evaluation.
"""

from repro.workloads import legacy, rms, speccomp  # noqa: F401 -- registers the suites
from repro.workloads.base import REGISTRY, WorkloadRegistry, WorkloadSpec
from repro.workloads.runner import (
    DEFAULT_LIMIT, RunResult, run_1p, run_hybrid, run_misp, run_smp,
)

#: the 11 RMS + 5 SPEComp applications of Figure 4 / Table 1, in the
#: paper's presentation order
FIGURE4_ORDER = [
    "ADAt", "dense_mmm", "dense_mvm", "dense_mvm_sym", "gauss", "kmeans",
    "sparse_mvm", "sparse_mvm_sym", "sparse_mvm_trans", "svm_c",
    "RayTracer", "swim", "applu", "galgel", "equake", "art",
]

__all__ = [
    "REGISTRY", "WorkloadRegistry", "WorkloadSpec", "DEFAULT_LIMIT",
    "RunResult", "run_1p", "run_hybrid", "run_misp", "run_smp",
    "FIGURE4_ORDER",
]
