"""SPEComp application proxies (Section 5.2)."""

from repro.workloads.speccomp.apps import EVENT_SCALE, PROFILES, make_speccomp

__all__ = ["EVENT_SCALE", "PROFILES", "make_speccomp"]
