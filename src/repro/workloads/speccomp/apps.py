"""SPEComp application proxies: swim, applu, galgel, equake, art.

The paper runs five SPEComp benchmarks (reference inputs) through a
MISP-enabled OpenMP runtime (Section 5.2).  We cannot run the Fortran
originals, so each is a synthetic proxy that preserves what MISP can
see of the application (DESIGN.md, substitution table):

* the OpenMP structure -- alternating serial stanzas and parallel
  regions with implicit barriers over exactly N workers;
* the serializing-event profile of Table 1 -- per-iteration syscalls
  (file I/O) and fresh OMS page touches in the serial stanza, fresh
  first-touch slices per worker in the parallel regions (the AMS
  proxy faults), scaled by ``EVENT_SCALE``;
* per-application scalability (galgel the poorest, swim the best).

All event targets are 1/50 of the paper's Table 1 counts
(``EVENT_SCALE``): the reference runs are minutes long on 3 GHz
hardware and simulating them 1:1 buys no additional fidelity --
the *rates* are what the overhead model consumes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterator

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.common import (
    WORK_CHUNK, chunk_ranges, jittered, parallel_region,
)

#: global event scale relative to the paper's Table 1 counts
EVENT_SCALE = 1.0 / 50.0


@dataclass(frozen=True)
class SpecProfile:
    """Per-application proxy parameters (post-EVENT_SCALE)."""

    name: str
    iterations: int
    #: main-shred syscalls over the whole run
    syscalls: int
    #: pages the main shred touches at init
    init_pages: int
    #: fresh pages the main shred touches per iteration (serial stanza)
    oms_pages_per_iter: int
    #: fresh pages worker shreds first-touch per iteration (all workers)
    shred_pages_per_iter: int
    #: total parallel work, cycles
    parallel_work: int
    #: total serial work, cycles
    serial_work: int
    #: worker syscalls over the whole run (art only, Table 1: 436)
    worker_syscalls: int = 0
    #: per-worker load variance inside a region
    worker_cv: float = 0.04


PROFILES = {
    "swim": SpecProfile(
        name="swim", iterations=120, syscalls=1540, init_pages=400,
        oms_pages_per_iter=6, shred_pages_per_iter=58,
        parallel_work=24_000_000_000, serial_work=720_000_000),
    "applu": SpecProfile(
        name="applu", iterations=100, syscalls=28, init_pages=600,
        oms_pages_per_iter=6, shred_pages_per_iter=65,
        parallel_work=13_000_000_000, serial_work=650_000_000),
    "galgel": SpecProfile(
        name="galgel", iterations=80, syscalls=18, init_pages=1000,
        oms_pages_per_iter=25, shred_pages_per_iter=35,
        parallel_work=8_900_000_000, serial_work=1_500_000_000,
        worker_cv=0.12),
    "equake": SpecProfile(
        name="equake", iterations=60, syscalls=919, init_pages=400,
        oms_pages_per_iter=9, shred_pages_per_iter=28,
        parallel_work=5_300_000_000, serial_work=560_000_000),
    "art": SpecProfile(
        name="art", iterations=64, syscalls=400, init_pages=1500,
        oms_pages_per_iter=18, shred_pages_per_iter=43,
        parallel_work=6_500_000_000, serial_work=540_000_000,
        worker_syscalls=9),
}


def make_speccomp(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Build one SPEComp proxy; ``scale`` shrinks it further for tests."""
    profile = PROFILES[name]

    def scaled(v: int, minimum: int = 0) -> int:
        return max(minimum, int(v * scale))

    iterations = max(2, int(profile.iterations * min(1.0, scale * 4)))

    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        ctx = api.ctx
        init_pages = scaled(profile.init_pages, 1)
        oms_pp = scaled(profile.oms_pages_per_iter * profile.iterations, 0)
        shred_pp = scaled(profile.shred_pages_per_iter * profile.iterations, 0)
        init = ctx.reserve("init", init_pages)
        oms_stream = ctx.reserve("serial_buffers", max(1, oms_pp))
        shred_stream = ctx.reserve("worker_arrays", max(1, shred_pp))
        rng = ctx.rng(61)

        par_per_iter = scaled(profile.parallel_work) // iterations
        ser_per_iter = scaled(profile.serial_work) // iterations
        syscalls_per_iter = scaled(profile.syscalls, 0) / iterations
        wsys_total = scaled(profile.worker_syscalls, 0)
        oms_slices = chunk_ranges(max(1, oms_pp), iterations)
        shred_slices = chunk_ranges(max(1, shred_pp), iterations)

        def region_worker(wid: int, iteration: int) -> Iterator[Op]:
            # each worker first-touches its slice of this iteration's
            # fresh arrays (the AMS compulsory faults of Table 1)
            start, count = shred_slices[iteration]
            offset, w_count = chunk_ranges(count, nworkers)[wid]
            w_start = start + offset
            if w_count > 0:
                yield from ctx.touch_range(shred_stream, w_start, w_count,
                                           write=True)
            if wsys_total and wid == 1 + (iteration % max(1, nworkers - 1)):
                if iteration % max(1, iterations // wsys_total) == 0:
                    yield from ctx.syscall("io")
            yield from ctx.compute(
                jittered(par_per_iter // nworkers, profile.worker_cv, rng),
                chunk=WORK_CHUNK)

        def main() -> Iterator[Op]:
            yield from ctx.touch_range(init, 0, init_pages, write=True)
            syscall_debt = 0.0
            for iteration in range(iterations):
                # --- serial stanza: I/O and bookkeeping ------------------
                start, count = oms_slices[iteration]
                if count > 0:
                    yield from ctx.touch_range(oms_stream, start, count,
                                               write=True)
                syscall_debt += syscalls_per_iter
                while syscall_debt >= 1.0:
                    yield from ctx.syscall("write")
                    syscall_debt -= 1.0
                yield from ctx.compute(max(1, ser_per_iter), chunk=WORK_CHUNK)
                # --- parallel region (implicit barrier at join) ----------
                yield from parallel_region(
                    api, nworkers, lambda w: region_worker(w, iteration),
                    name=f"{profile.name}-r{iteration}")

        return main()

    return WorkloadSpec(name, "speccomp", build,
                        description=f"SPEComp proxy for {name} "
                                    f"(events at 1/50 of Table 1)")


for _name in PROFILES:
    REGISTRY.register(make_speccomp(_name),
                      factory=functools.partial(make_speccomp, _name))
