"""Staging primitives and legacy run functions for the system backends.

This module holds the building blocks every system backend composes
(Section 5.2's methodology):

* :func:`misp_group_body` / :func:`misp_thread_body` -- the body of a
  multi-shredded OS thread (Figure 3): register the proxy handler,
  push the main shred, ``SIGNAL`` a gang scheduler onto every AMS,
  then run a gang scheduler on the OMS;
* :func:`smp_main_body` / :func:`smp_worker_body` -- the same
  application code run as ``ncpus`` OS threads (one gang scheduler
  each), the way an OpenMP runtime would run it on a real SMP;
* :func:`_setup` -- process + runtime + API plumbing shared by all.

The actual system assembly lives in :mod:`repro.systems`: backends
(``misp``, ``smp``, ``1p``, ``multiprog``, ``hybrid``, ...) stage
these bodies onto machines, and the composable
:class:`~repro.systems.session.Session` builder drives them.
:func:`run_misp`, :func:`run_smp`, :func:`run_1p`, and
:func:`run_hybrid` are thin compatibility wrappers over sessions.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.machine import Machine
from repro.core.mp import config_name
from repro.exec.context import ExecContext
from repro.exec.ops import Op, SignalShred, SyscallOp
from repro.kernel.process import OSThread, Process
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.api import ShredAPI
from repro.shredlib.proxyhandler import GenericProxyHandler
from repro.shredlib.runtime import QueuePolicy, ShredRuntime
from repro.shredlib.scheduler import gang_scheduler
from repro.sim.trace import EventKind
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.captrace import CapturedTrace

#: default per-run cycle budget before declaring a hang
DEFAULT_LIMIT = 2_000_000_000_000


@dataclass
class RunResult:
    """Outcome of one workload execution."""

    workload: str
    system: str           # a SYSTEM_REGISTRY name (possibly redirected)
    config: str           # e.g. "1x8", "smp8", "1x4+1x2"
    cycles: int           # process completion time
    machine: Machine
    runtime: ShredRuntime
    main_thread: OSThread
    #: background single-threaded processes (multiprogramming runs)
    background: int = 0
    #: captured execution trace (Session.capture() runs only)
    trace: Optional["CapturedTrace"] = None
    #: observability state (Session.observe() runs only); a
    #: repro.obs.observe.ObservedRun with the run's correlation id
    obs: Optional[object] = None

    # ------------------------------------------------------------------
    # Event accounting (the Table 1 view of this run)
    # ------------------------------------------------------------------
    def oms_event_count(self, kind: EventKind) -> int:
        return self.machine.trace.total(kind, self.machine.oms_ids())

    def ams_event_count(self, kind: EventKind) -> int:
        return self.machine.trace.total(kind, self.machine.ams_ids())

    def serializing_events(self) -> dict[str, int]:
        """Counts in the paper's Table 1 layout."""
        return {
            "oms_syscall": self.oms_event_count(EventKind.SYSCALL),
            "oms_pf": self.oms_event_count(EventKind.PAGE_FAULT),
            "oms_timer": self.oms_event_count(EventKind.TIMER),
            "oms_interrupt": self.oms_event_count(EventKind.INTERRUPT),
            "ams_syscall": self.ams_event_count(EventKind.SYSCALL),
            "ams_pf": self.ams_event_count(EventKind.PAGE_FAULT),
        }


def _workload_seed(workload: WorkloadSpec) -> int:
    return workload.seed or zlib.crc32(workload.name.encode())


def _setup(machine: Machine, workload: WorkloadSpec,
           params: MachineParams) -> tuple[Process, ShredRuntime, ShredAPI]:
    process = machine.spawn_process(workload.name)
    ctx = ExecContext(process, params, seed=_workload_seed(workload))
    ctx.machine = machine
    rt = ShredRuntime(params, name=workload.name)
    # place the runtime's shared state (work-queue lock + sync-object
    # lines) in the application's address space; the loader maps it
    # up front, so runtime lock traffic hits the cache hierarchy
    # without compulsory-fault noise
    shared = process.address_space.reserve("shredlib", 1)
    process.address_space.handle_fault(shared.start_vpn)
    rt.attach_shared(shared.base_vaddr, shared.size_bytes)
    api = ShredAPI(rt, ctx)
    return process, rt, api


def misp_group_body(machine: Machine, proc_index: int, rt: ShredRuntime,
                    api: ShredAPI, workload: Optional[WorkloadSpec],
                    nworkers: int, worker_base: int = 0) -> Iterator[Op]:
    """Body of one multi-shredded OS thread driving one MISP processor.

    The generalization behind Figure 3 that multi-processor (hybrid)
    partitions stage once per MISP processor: gang-scheduler worker
    ids start at ``worker_base`` (they must be unique runtime-wide),
    and only the *primary* group -- the one given a ``workload`` --
    instantiates and pushes the main shred.
    """
    processor = machine.processors[proc_index]
    handler = GenericProxyHandler()
    handler.register(processor)
    yield from GenericProxyHandler.registration_ops(rt.params)
    if workload is not None:
        main = rt.new_shred(workload.instantiate(api, nworkers), name="main")
        # the main shred is the primary OS thread's own execution
        main.affinity = worker_base
        rt.set_main(main)
        rt.push(main)
    for sid in range(1, len(processor.amss) + 1):
        yield SignalShred(sid, gang_scheduler(rt, worker_id=worker_base + sid),
                          label=f"gang-{worker_base + sid}")
    yield from gang_scheduler(rt, worker_id=worker_base)


def misp_thread_body(machine: Machine, proc_index: int, rt: ShredRuntime,
                     api: ShredAPI, workload: WorkloadSpec,
                     nworkers: int) -> Iterator[Op]:
    """Body of the single multi-shredded OS thread (Figure 3).

    Exposed publicly so the Figure 7 driver can build mixed workloads.
    """
    yield from misp_group_body(machine, proc_index, rt, api, workload,
                               nworkers, worker_base=0)


def smp_worker_body(rt: ShredRuntime, worker_id: int) -> Iterator[Op]:
    """One SMP worker OS thread: a bare gang scheduler."""
    yield from gang_scheduler(rt, worker_id)


def smp_main_body(machine: Machine, process: Process, rt: ShredRuntime,
                  api: ShredAPI, workload: WorkloadSpec,
                  nworkers: int) -> Iterator[Op]:
    """Main OS thread on SMP: spawn workers, then join the gang."""
    main = rt.new_shred(workload.instantiate(api, nworkers), name="main")
    main.affinity = 0  # runs on the main OS thread's gang scheduler
    rt.set_main(main)
    rt.push(main)
    for i in range(1, nworkers):
        # thread creation is an OS service on SMP
        yield SyscallOp("thread_create", cost=rt.params.syscall_service_cost)
        machine.spawn_thread(process, f"{workload.name}-w{i}",
                             smp_worker_body(rt, i))
    yield from gang_scheduler(rt, worker_id=0)


# ----------------------------------------------------------------------
# Legacy run functions: thin wrappers over repro.systems.Session
# ----------------------------------------------------------------------
def run_misp(workload: WorkloadSpec, ams_count: int = 7,
             params: MachineParams = DEFAULT_PARAMS,
             limit: int = DEFAULT_LIMIT,
             policy: QueuePolicy = QueuePolicy.FIFO) -> RunResult:
    """Run a workload on a MISP uniprocessor with ``ams_count`` AMSs."""
    from repro.systems import Session
    return (Session("misp", config_name([ams_count]))
            .params(params).policy(policy).limit(limit).run(workload))


def run_smp(workload: WorkloadSpec, ncpus: int = 8,
            params: MachineParams = DEFAULT_PARAMS,
            limit: int = DEFAULT_LIMIT,
            policy: QueuePolicy = QueuePolicy.FIFO) -> RunResult:
    """Run a workload on the ``ncpus``-way SMP baseline."""
    from repro.systems import Session
    return (Session("smp", f"smp{ncpus}")
            .params(params).policy(policy).limit(limit).run(workload))


def run_1p(workload: WorkloadSpec,
           params: MachineParams = DEFAULT_PARAMS,
           limit: int = DEFAULT_LIMIT,
           policy: QueuePolicy = QueuePolicy.FIFO) -> RunResult:
    """Single-sequencer baseline run (Figure 4's denominator)."""
    return run_smp(workload, ncpus=1, params=params, limit=limit,
                   policy=policy)


def run_hybrid(workload: WorkloadSpec, config: str = "1x4+1x2",
               params: MachineParams = DEFAULT_PARAMS,
               limit: int = DEFAULT_LIMIT,
               policy: QueuePolicy = QueuePolicy.FIFO) -> RunResult:
    """Run a workload shredded across a multi-group MISP partition.

    Every MISP processor in ``config`` (e.g. ``"1x4+1x2"``) drives its
    own gang of shreds via its own OS thread; plain CPUs, if any, run
    bare gang-scheduler worker threads.
    """
    from repro.systems import Session
    return (Session("hybrid", config)
            .params(params).policy(policy).limit(limit).run(workload))
