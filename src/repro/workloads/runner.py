"""Run workloads on MISP, SMP, and 1P systems.

This is the experiment driver used by every benchmark: it assembles a
machine, a process, a ShredLib runtime, and the workload's shreds, and
runs to completion.  The two system builders mirror Section 5.2's
methodology:

* :func:`run_misp` -- the application is ONE OS thread.  Its body
  registers the proxy handler, pushes the main shred, ``SIGNAL``\\ s a
  gang scheduler onto every AMS (Figure 3), and then runs a gang
  scheduler itself on the OMS.
* :func:`run_smp` -- the same application code runs as ``ncpus`` OS
  threads (one gang scheduler each), the way an OpenMP runtime would
  run it on a real SMP.
* :func:`run_1p` -- one CPU, one gang scheduler: the sequential
  baseline all Figure 4 speedups are normalized to.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.machine import Machine
from repro.core.mp import build_machine, config_name
from repro.errors import ConfigurationError
from repro.exec.context import ExecContext
from repro.exec.ops import Op, SignalShred, SyscallOp
from repro.kernel.process import OSThread, Process
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.api import ShredAPI
from repro.shredlib.proxyhandler import GenericProxyHandler
from repro.shredlib.runtime import QueuePolicy, ShredRuntime
from repro.shredlib.scheduler import gang_scheduler
from repro.sim.trace import EventKind
from repro.smp.machine import build_smp_machine
from repro.workloads.base import WorkloadSpec

#: default per-run cycle budget before declaring a hang
DEFAULT_LIMIT = 2_000_000_000_000


@dataclass
class RunResult:
    """Outcome of one workload execution."""

    workload: str
    system: str           # "misp" | "smp" | "1p"
    config: str           # e.g. "1x8", "smp8"
    cycles: int           # process completion time
    machine: Machine
    runtime: ShredRuntime
    main_thread: OSThread

    # ------------------------------------------------------------------
    # Event accounting (the Table 1 view of this run)
    # ------------------------------------------------------------------
    def oms_event_count(self, kind: EventKind) -> int:
        return self.machine.trace.total(kind, self.machine.oms_ids())

    def ams_event_count(self, kind: EventKind) -> int:
        return self.machine.trace.total(kind, self.machine.ams_ids())

    def serializing_events(self) -> dict[str, int]:
        """Counts in the paper's Table 1 layout."""
        return {
            "oms_syscall": self.oms_event_count(EventKind.SYSCALL),
            "oms_pf": self.oms_event_count(EventKind.PAGE_FAULT),
            "oms_timer": self.oms_event_count(EventKind.TIMER),
            "oms_interrupt": self.oms_event_count(EventKind.INTERRUPT),
            "ams_syscall": self.ams_event_count(EventKind.SYSCALL),
            "ams_pf": self.ams_event_count(EventKind.PAGE_FAULT),
        }


def _workload_seed(workload: WorkloadSpec) -> int:
    return workload.seed or zlib.crc32(workload.name.encode())


def _setup(machine: Machine, workload: WorkloadSpec,
           params: MachineParams) -> tuple[Process, ShredRuntime, ShredAPI]:
    process = machine.spawn_process(workload.name)
    ctx = ExecContext(process, params, seed=_workload_seed(workload))
    ctx.machine = machine
    rt = ShredRuntime(params, name=workload.name)
    api = ShredAPI(rt, ctx)
    return process, rt, api


def misp_thread_body(machine: Machine, proc_index: int, rt: ShredRuntime,
                     api: ShredAPI, workload: WorkloadSpec,
                     nworkers: int) -> Iterator[Op]:
    """Body of the single multi-shredded OS thread (Figure 3).

    Exposed publicly so the Figure 7 driver can build mixed workloads.
    """
    processor = machine.processors[proc_index]
    handler = GenericProxyHandler()
    handler.register(processor)
    yield from GenericProxyHandler.registration_ops(rt.params)
    main = rt.new_shred(workload.instantiate(api, nworkers), name="main")
    main.affinity = 0  # the main shred is the OS thread's own execution
    rt.set_main(main)
    rt.push(main)
    for sid in range(1, len(processor.amss) + 1):
        yield SignalShred(sid, gang_scheduler(rt, worker_id=sid),
                          label=f"gang-{sid}")
    yield from gang_scheduler(rt, worker_id=0)


def run_misp(workload: WorkloadSpec, ams_count: int = 7,
             params: MachineParams = DEFAULT_PARAMS,
             limit: int = DEFAULT_LIMIT,
             policy: QueuePolicy = QueuePolicy.FIFO) -> RunResult:
    """Run a workload on a MISP uniprocessor with ``ams_count`` AMSs."""
    machine = build_machine([ams_count], params=params)
    process, rt, api = _setup(machine, workload, params)
    rt.policy = policy
    nworkers = 1 + ams_count
    thread = machine.spawn_thread(
        process, f"{workload.name}-main",
        misp_thread_body(machine, 0, rt, api, workload, nworkers),
        pinned_cpu=0)
    thread.is_shredded = ams_count > 0
    cycles = machine.run_to_completion(limit)
    return RunResult(workload.name, "misp", config_name([ams_count]),
                     process.exit_time or cycles, machine, rt, thread)


def smp_worker_body(rt: ShredRuntime, worker_id: int) -> Iterator[Op]:
    """One SMP worker OS thread: a bare gang scheduler."""
    yield from gang_scheduler(rt, worker_id)


def smp_main_body(machine: Machine, process: Process, rt: ShredRuntime,
                  api: ShredAPI, workload: WorkloadSpec,
                  nworkers: int) -> Iterator[Op]:
    """Main OS thread on SMP: spawn workers, then join the gang."""
    main = rt.new_shred(workload.instantiate(api, nworkers), name="main")
    main.affinity = 0  # runs on the main OS thread's gang scheduler
    rt.set_main(main)
    rt.push(main)
    for i in range(1, nworkers):
        # thread creation is an OS service on SMP
        yield SyscallOp("thread_create", cost=rt.params.syscall_service_cost)
        machine.spawn_thread(process, f"{workload.name}-w{i}",
                             smp_worker_body(rt, i))
    yield from gang_scheduler(rt, worker_id=0)


def run_smp(workload: WorkloadSpec, ncpus: int = 8,
            params: MachineParams = DEFAULT_PARAMS,
            limit: int = DEFAULT_LIMIT,
            policy: QueuePolicy = QueuePolicy.FIFO) -> RunResult:
    """Run a workload on the ``ncpus``-way SMP baseline."""
    machine = build_smp_machine(ncpus, params=params)
    _ensure_thread_create(machine)
    process, rt, api = _setup(machine, workload, params)
    rt.policy = policy
    thread = machine.spawn_thread(
        process, f"{workload.name}-main",
        smp_main_body(machine, process, rt, api, workload, ncpus))
    cycles = machine.run_to_completion(limit)
    return RunResult(workload.name, "smp" if ncpus > 1 else "1p",
                     f"smp{ncpus}", process.exit_time or cycles,
                     machine, rt, thread)


def run_1p(workload: WorkloadSpec,
           params: MachineParams = DEFAULT_PARAMS,
           limit: int = DEFAULT_LIMIT) -> RunResult:
    """Single-sequencer baseline run (Figure 4's denominator)."""
    return run_smp(workload, ncpus=1, params=params, limit=limit)


def _ensure_thread_create(machine: Machine) -> None:
    """Register the thread_create syscall if this kernel lacks it."""
    from repro.kernel.syscalls import SyscallSpec
    try:
        machine.kernel.syscalls.lookup("thread_create")
    except ConfigurationError:
        machine.kernel.syscalls.register(SyscallSpec("thread_create"))
