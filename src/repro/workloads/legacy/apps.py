"""Legacy multithreaded applications for the Table 2 porting study.

Table 2 of the paper lists nine applications ported to MISP by
recompiling against ShredLib's thread-to-shred API mappings; most
needed no code changes beyond including the mapping header.  We
reproduce the *mechanism* with open re-implementations: each app here
is written purely against the legacy APIs
(:class:`~repro.shredlib.pthreads.PthreadsAPI` or
:class:`~repro.shredlib.win32.Win32API`) with no knowledge of shreds.
"Porting" an app is constructing the shim over a
:class:`~repro.shredlib.api.ShredAPI` -- the analogue of the paper's
single-header change -- after which the identical source runs
multi-shredded.

The Open Dynamics Engine row is special: the paper reports it needed
a structural change because its main thread sleeps in the OS waiting
for input, starving the AMSs.  :func:`ode_like` reproduces both the
naive port and the restructured version (I/O on a separate native
thread) so the utilization difference is measurable.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.shredlib.pthreads import PthreadsAPI
from repro.shredlib.win32 import Win32API
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.common import WORK_CHUNK, chunk_ranges

LegacyAPI = Union[PthreadsAPI, Win32API]


# ----------------------------------------------------------------------
# lame_mt: frame-parallel MP3 encoder (Pthreads; paper effort: 0.5 days)
# ----------------------------------------------------------------------
def lame_mt(pt: PthreadsAPI, ctx, nworkers: int,
            frames: int = 96, work_per_frame: int = 6_000_000) -> Iterator[Op]:
    """Frame-parallel encoder: a worker per core pulls frame indices."""
    audio = ctx.reserve("pcm_input", 64)
    next_frame = {"value": 0}
    frame_lock = pt.pthread_mutex_init()

    def encoder_thread(wid: int) -> Iterator[Op]:
        while True:
            yield from pt.pthread_mutex_lock(frame_lock)
            frame = next_frame["value"]
            next_frame["value"] += 1
            yield from pt.pthread_mutex_unlock(frame_lock)
            if frame >= frames:
                return
            yield from ctx.touch(audio, frame % 64)
            yield from ctx.compute(work_per_frame, chunk=WORK_CHUNK)

    def main() -> Iterator[Op]:
        yield from ctx.touch_range(audio, 0, 64, write=True)
        threads = []
        for wid in range(nworkers):
            t = yield from pt.pthread_create(encoder_thread, wid,
                                             name=f"enc-{wid}")
            threads.append(t)
        for t in threads:
            yield from pt.pthread_join(t)
        yield from ctx.syscall("write")   # emit the MP3

    return main()


# ----------------------------------------------------------------------
# media_encoder: producer/consumer pipeline (Win32; paper: 13 days)
# ----------------------------------------------------------------------
def media_encoder(w32: Win32API, ctx, nworkers: int,
                  frames: int = 64, work_per_frame: int = 5_000_000
                  ) -> Iterator[Op]:
    """Two-stage pipeline: capture -> encode, bounded by semaphores."""
    ring = ctx.reserve("frame_ring", 16)
    free_slots = w32.CreateSemaphore(8, name="free")
    full_slots = w32.CreateSemaphore(0, name="full")
    done_event = w32.CreateEvent(manual_reset=True, name="done")

    def capture_thread() -> Iterator[Op]:
        for frame in range(frames):
            yield from w32.WaitForSingleObject(free_slots)
            yield from ctx.touch(ring, frame % 16, write=True)
            yield from ctx.compute(work_per_frame // 8, chunk=WORK_CHUNK)
            yield from w32.ReleaseSemaphore(full_slots)
        yield from w32.SetEvent(done_event)

    def encode_thread(wid: int) -> Iterator[Op]:
        encoded = 0
        share = frames // max(1, nworkers - 1)
        while encoded < share:
            yield from w32.WaitForSingleObject(full_slots)
            yield from ctx.compute(work_per_frame, chunk=WORK_CHUNK)
            yield from w32.ReleaseSemaphore(free_slots)
            encoded += 1

    def main() -> Iterator[Op]:
        yield from ctx.touch_range(ring, 0, 16, write=True)
        capture = yield from w32.CreateThread(capture_thread, name="capture")
        encoders = []
        for wid in range(max(1, nworkers - 1)):
            handle = yield from w32.CreateThread(encode_thread, wid,
                                                 name=f"encode-{wid}")
            encoders.append(handle)
        yield from w32.WaitForSingleObject(capture)
        # drain whatever the encoders have not consumed
        leftover = frames - (frames // max(1, nworkers - 1)) * max(1, nworkers - 1)
        for _ in range(leftover):
            yield from w32.WaitForSingleObject(full_slots)
            yield from ctx.compute(work_per_frame, chunk=WORK_CHUNK)
            yield from w32.ReleaseSemaphore(free_slots)
        yield from w32.WaitForMultipleObjects(encoders)
        yield from ctx.syscall("write")

    return main()


# ----------------------------------------------------------------------
# jrockit_like: worker pool with stop-the-world pauses (Pthreads; 15 days)
# ----------------------------------------------------------------------
def jrockit_like(pt: PthreadsAPI, ctx, nworkers: int,
                 tasks: int = 64, gc_cycles: int = 4,
                 work_per_task: int = 4_000_000) -> Iterator[Op]:
    """JVM-style runtime: mutator workers plus stop-the-world phases."""
    heap = ctx.reserve("heap", 128)
    state = {"next": 0, "stopped": False, "parked": 0}
    lock = pt.pthread_mutex_init()
    resume_cv = pt.pthread_cond_init()
    parked_cv = pt.pthread_cond_init()

    def mutator(wid: int) -> Iterator[Op]:
        while True:
            yield from pt.pthread_mutex_lock(lock)
            while state["stopped"]:
                state["parked"] += 1
                yield from pt.pthread_cond_signal(parked_cv)
                yield from pt.pthread_cond_wait(resume_cv, lock)
                state["parked"] -= 1
            task = state["next"]
            state["next"] += 1
            yield from pt.pthread_mutex_unlock(lock)
            if task >= tasks:
                return
            yield from ctx.touch(heap, task % 128, write=True)
            yield from ctx.compute(work_per_task, chunk=WORK_CHUNK)

    def main() -> Iterator[Op]:
        yield from ctx.touch_range(heap, 0, 128, write=True)
        threads = []
        for wid in range(nworkers):
            t = yield from pt.pthread_create(mutator, wid, name=f"mut-{wid}")
            threads.append(t)
        for _gc in range(gc_cycles):
            yield from ctx.compute(work_per_task, chunk=WORK_CHUNK)
            yield from pt.pthread_mutex_lock(lock)
            if state["next"] >= tasks:
                yield from pt.pthread_mutex_unlock(lock)
                break
            state["stopped"] = True
            yield from pt.pthread_mutex_unlock(lock)
            # wait until the live mutators park, then "collect"
            yield from pt.pthread_mutex_lock(lock)
            yield from ctx.compute(work_per_task // 2, chunk=WORK_CHUNK)
            state["stopped"] = False
            yield from pt.pthread_cond_broadcast(resume_cv)
            yield from pt.pthread_mutex_unlock(lock)
        for t in threads:
            yield from pt.pthread_join(t)

    return main()


# ----------------------------------------------------------------------
# ode_like: physics engine whose main thread waits for input (3 days)
# ----------------------------------------------------------------------
def ode_like(pt: PthreadsAPI, ctx, nworkers: int, steps: int = 12,
             work_per_step: int = 24_000_000,
             input_interval: int = 4_000_000,
             restructured: bool = True) -> Iterator[Op]:
    """Physics stepping loop driven by (simulated) user input.

    ``restructured=False`` is the naive thread-to-shred port the paper
    calls inefficient: the main (multi-shredded) OS thread itself
    sleeps in the OS waiting for input, so the kernel freezes its
    whole shred team and the AMSs idle through every wait.

    ``restructured=True`` is the paper's one structural change
    (Section 5.5): a *native* OS thread handles the blocking input
    waits while the shredded thread runs the solver continuously; the
    two communicate through a polled input counter in shared memory.
    """
    bodies_region = ctx.reserve("rigid_bodies", 48)
    islands = chunk_ranges(48, nworkers)
    inputs = {"arrived": 0}

    def island_solver(wid: int, step: int) -> Iterator[Op]:
        start, count = islands[wid]
        if step == 0 and count > 0:
            yield from ctx.touch_range(bodies_region, start, count, write=True)
        yield from ctx.compute(work_per_step // nworkers, chunk=WORK_CHUNK)

    def io_thread_body() -> Iterator[Op]:
        # native OS thread: sleeps in the kernel between user inputs
        for _ in range(steps):
            yield from ctx.syscall("wait_input", arg=input_interval)
            inputs["arrived"] += 1

    def main() -> Iterator[Op]:
        if restructured:
            ctx.spawn_native("ode-io", io_thread_body())
        for step in range(steps):
            if restructured:
                # spin briefly until this step's input has arrived;
                # the blocking wait happens on the native I/O thread
                while inputs["arrived"] <= step:
                    yield from ctx.compute(10_000)
            else:
                # naive port: the shredded thread itself blocks in the OS
                yield from ctx.syscall("wait_input", arg=input_interval)
            threads = []
            for wid in range(nworkers):
                t = yield from pt.pthread_create(island_solver, wid, step,
                                                 name=f"island-{wid}")
                threads.append(t)
            for t in threads:
                yield from pt.pthread_join(t)

    return main()


# ----------------------------------------------------------------------
# thread_checker_like: instrumented race checker (Pthreads; 5 days)
# ----------------------------------------------------------------------
def thread_checker_like(pt: PthreadsAPI, ctx, nworkers: int,
                        accesses: int = 48,
                        work_per_access: int = 2_000_000) -> Iterator[Op]:
    """A happens-before checker shadowing every shared access."""
    shadow = ctx.reserve("shadow_state", 32)
    vector_lock = pt.pthread_mutex_init()

    def checked_worker(wid: int) -> Iterator[Op]:
        for i in range(accesses // nworkers):
            yield from ctx.compute(work_per_access, chunk=WORK_CHUNK)
            # instrumentation: update vector clocks under a lock
            yield from pt.pthread_mutex_lock(vector_lock)
            yield from ctx.touch(shadow, (wid + i) % 32, write=True)
            yield from pt.pthread_mutex_unlock(vector_lock)

    def main() -> Iterator[Op]:
        yield from ctx.touch_range(shadow, 0, 32, write=True)
        threads = []
        for wid in range(nworkers):
            t = yield from pt.pthread_create(checked_worker, wid,
                                             name=f"chk-{wid}")
            threads.append(t)
        for t in threads:
            yield from pt.pthread_join(t)
        yield from ctx.syscall("write")   # report

    return main()


# ----------------------------------------------------------------------
# WorkloadSpec wrappers so legacy apps run through the standard runner
# ----------------------------------------------------------------------
def _wrap(name: str, app_fn, api_kind: str, **kwargs) -> WorkloadSpec:
    def build(api: ShredAPI, nworkers: int) -> Iterator[Op]:
        legacy: LegacyAPI = (PthreadsAPI(api) if api_kind == "pthreads"
                             else Win32API(api))
        # expose the shim so the Table 2 harness can read its
        # translation counter after the run
        api.rt.legacy_shim = legacy  # type: ignore[attr-defined]
        return app_fn(legacy, api.ctx, max(1, nworkers), **kwargs)

    return WorkloadSpec(name, "legacy", build,
                        description=f"legacy {api_kind} app '{name}'")


def make_lame_mt(**kwargs) -> WorkloadSpec:
    return _wrap("lame_mt", lame_mt, "pthreads", **kwargs)


def make_media_encoder(**kwargs) -> WorkloadSpec:
    return _wrap("media_encoder", media_encoder, "win32", **kwargs)


def make_jrockit_like(**kwargs) -> WorkloadSpec:
    return _wrap("jrockit_like", jrockit_like, "pthreads", **kwargs)


def make_ode_like(restructured: bool = True, **kwargs) -> WorkloadSpec:
    suffix = "restructured" if restructured else "naive"
    return _wrap(f"ode_like_{suffix}", ode_like, "pthreads",
                 restructured=restructured, **kwargs)


def make_thread_checker_like(**kwargs) -> WorkloadSpec:
    return _wrap("thread_checker_like", thread_checker_like, "pthreads",
                 **kwargs)


def _legacy_factory(make, **fixed):
    """Adapt a legacy make_* function to the registry's factory
    protocol.  Legacy apps have no scale notion; ``scale`` is accepted
    and ignored so they resolve uniformly by name."""
    def factory(scale: float = 1.0, **kwargs) -> WorkloadSpec:
        return make(**fixed, **kwargs)
    return factory


for _make, _fixed in [
    (make_lame_mt, {}),
    (make_media_encoder, {}),
    (make_jrockit_like, {}),
    (make_thread_checker_like, {}),
    (make_ode_like, {"restructured": False}),
    (make_ode_like, {"restructured": True}),
]:
    _factory = _legacy_factory(_make, **_fixed)
    REGISTRY.register(_factory(), factory=_factory)
