"""Legacy multithreaded applications for the Table 2 porting study."""

from repro.workloads.legacy import apps
from repro.workloads.legacy.apps import (
    make_jrockit_like, make_lame_mt, make_media_encoder, make_ode_like,
    make_thread_checker_like,
)

__all__ = [
    "apps", "make_jrockit_like", "make_lame_mt", "make_media_encoder",
    "make_ode_like", "make_thread_checker_like",
]
