"""Multiprogramming driver for the Figure 7 experiment (Section 5.4).

"Figure 7 shows the performance of RayTracer as non-shredded
applications are gradually added to the system."  The measured
application is the multi-shredded RayTracer; the load is N
single-threaded, CPU-bound background processes.  The kernel scheduler
is shred-oblivious, so on configurations with few OMSs the background
processes time-share the OMS that drives RayTracer's AMSs -- and every
quantum the RayTracer thread loses also idles its AMSs, which is the
effect the figure quantifies.

Configurations are the Figure 6 partitions of eight sequencers
("4x2", "2x4", "1x8", "1x7+1", ... "1x4+4"), plus "smp" (the 8-way SMP
baseline running RayTracer as eight worker threads) and "ideal" (the
per-load uneven partition 1x(8-N)+N that gives each background process
its own AMS-less OMS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.machine import Machine
from repro.core.mp import build_machine, ideal_config_for_load, parse_config
from repro.errors import SimulationError
from repro.exec.context import ExecContext
from repro.exec.ops import Compute, Op
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.api import ShredAPI
from repro.shredlib.runtime import QueuePolicy, ShredRuntime
from repro.workloads.base import WorkloadSpec
from repro.workloads.rms.raytracer import make_raytracer
from repro.workloads.runner import (
    misp_thread_body, smp_main_body, _ensure_thread_create, _setup,
)

#: RayTracer size used for the sweep (full scale is unnecessarily slow
#: for a 45-run experiment; the curve is a ratio of its own runtimes)
DEFAULT_RT_SCALE = 0.15

#: simulation slice while polling for RayTracer completion
_SLICE = 100_000_000

#: absolute per-run budget before declaring a hang (shared with the
#: experiment layer so both drivers time out identically)
MULTIPROG_HORIZON = 200_000_000_000
_HORIZON = MULTIPROG_HORIZON


def background_body() -> Iterator[Op]:
    """A single-threaded, CPU-bound process that never exits."""
    while True:
        yield Compute(100_000)


@dataclass(frozen=True)
class MultiprogResult:
    config: str
    background: int
    raytracer_cycles: int
    machine: Machine


def run_multiprogram(config: str, background: int,
                     rt_scale: float = DEFAULT_RT_SCALE,
                     params: MachineParams = DEFAULT_PARAMS,
                     horizon: int = _HORIZON,
                     workload: Optional[WorkloadSpec] = None,
                     policy: QueuePolicy = QueuePolicy.FIFO
                     ) -> MultiprogResult:
    """Run a shredded workload (default: RayTracer at ``rt_scale``)
    plus N background processes on one configuration."""
    if workload is None:
        workload = make_raytracer(scale=rt_scale)
    if config == "smp":
        machine = build_machine("smp8", params=params)
        _ensure_thread_create(machine)
        process, rt, api = _setup(machine, workload, params)
        machine.spawn_thread(
            process, "raytracer-main",
            smp_main_body(machine, process, rt, api, workload,
                          nworkers=machine.num_cpus))
    elif config == "ideal":
        counts = ideal_config_for_load(8, background)
        machine = build_machine(counts, params=params)
        process, rt, api = _setup(machine, workload, params)
        thread = machine.spawn_thread(
            process, "raytracer-main",
            misp_thread_body(machine, 0, rt, api, workload,
                             nworkers=1 + counts[0]),
            pinned_cpu=0)
        thread.is_shredded = counts[0] > 0
    else:
        counts = parse_config(config)
        machine = build_machine(counts, params=params)
        process, rt, api = _setup(machine, workload, params)
        thread = machine.spawn_thread(
            process, "raytracer-main",
            misp_thread_body(machine, 0, rt, api, workload,
                             nworkers=1 + counts[0]),
            pinned_cpu=0)
        thread.is_shredded = counts[0] > 0

    rt.policy = policy
    for i in range(background):
        bg = machine.spawn_process(f"background-{i}")
        machine.spawn_thread(bg, f"bg-{i}", background_body())

    machine.start_timers()
    while not process.exited and machine.now < horizon:
        machine.run(until=min(machine.now + _SLICE, horizon))
    if not process.exited:
        raise SimulationError(
            f"'{workload.name}' did not finish on '{config}' with "
            f"{background} background processes within {horizon} cycles")
    machine.stop()
    return MultiprogResult(config, background, process.exit_time, machine)


def speedup_curve(config: str, loads: Sequence[int] = range(5),
                  rt_scale: float = DEFAULT_RT_SCALE,
                  params: MachineParams = DEFAULT_PARAMS) -> list[float]:
    """Speedup (vs unloaded) of RayTracer as load increases (one line
    of Figure 7).

    Every Figure 7 curve is normalized to its own configuration
    running unloaded -- that is why all curves start at 1.0 even
    though, say, 4x2 gives RayTracer only two sequencers.  For the
    per-load "ideal" partition the configuration changes with the
    load, so the baseline is re-measured per point: background
    processes on their own AMS-less OMSs leave RayTracer at 1.0.
    """
    curve: list[float] = []
    baseline: Optional[int] = None
    for load in loads:
        result = run_multiprogram(config, load, rt_scale, params)
        if config == "ideal":
            unloaded = _ideal_unloaded(load, rt_scale, params)
            curve.append(unloaded / result.raytracer_cycles)
            continue
        if baseline is None:
            baseline = result.raytracer_cycles
        curve.append(baseline / result.raytracer_cycles)
    return curve


def _ideal_unloaded(load: int, rt_scale: float,
                    params: MachineParams) -> int:
    """Unloaded RayTracer runtime on the load-``load`` ideal partition."""
    counts = ideal_config_for_load(8, load)
    workload = make_raytracer(scale=rt_scale)
    machine = build_machine(counts, params=params)
    process, rt, api = _setup(machine, workload, params)
    thread = machine.spawn_thread(
        process, "raytracer-main",
        misp_thread_body(machine, 0, rt, api, workload,
                         nworkers=1 + counts[0]),
        pinned_cpu=0)
    thread.is_shredded = counts[0] > 0
    machine.start_timers()
    while not process.exited and machine.now < _HORIZON:
        machine.run(until=machine.now + _SLICE)
    machine.stop()
    return process.exit_time
