"""Multiprogramming driver for the Figure 7 experiment (Section 5.4).

"Figure 7 shows the performance of RayTracer as non-shredded
applications are gradually added to the system."  The measured
application is the multi-shredded RayTracer; the load is N
single-threaded, CPU-bound background processes.  The kernel scheduler
is shred-oblivious, so on configurations with few OMSs the background
processes time-share the OMS that drives RayTracer's AMSs -- and every
quantum the RayTracer thread loses also idles its AMSs, which is the
effect the figure quantifies.

Configurations are the Figure 6 partitions of eight sequencers
("4x2", "2x4", "1x8", "1x7+1", ... "1x4+4"), plus "smp" (the 8-way SMP
baseline running RayTracer as eight worker threads) and "ideal" (the
per-load uneven partition 1x(8-N)+N that gives each background process
its own AMS-less OMS).

The staging and drive loop live in
:class:`repro.systems.backends.MultiprogBackend`;
:func:`run_multiprogram` is a compatibility wrapper over a
``Session("multiprog", ...)``.  This module keeps the driver-level
constants, the CPU-bound :func:`background_body` the backend stages,
and the Figure 7 curve helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.machine import Machine
from repro.core.mp import (
    FIGURE7_SEQUENCERS, config_name, ideal_config_for_load,
)
from repro.exec.ops import Compute, Op
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.runtime import QueuePolicy
from repro.workloads.base import WorkloadSpec
from repro.workloads.rms.raytracer import make_raytracer

#: RayTracer size used for the sweep (full scale is unnecessarily slow
#: for a 45-run experiment; the curve is a ratio of its own runtimes)
DEFAULT_RT_SCALE = 0.15

#: simulation slice while polling for application completion
MULTIPROG_SLICE = 100_000_000

#: absolute per-run budget before declaring a hang (shared with the
#: experiment layer so both drivers time out identically)
MULTIPROG_HORIZON = 200_000_000_000


def background_body() -> Iterator[Op]:
    """A single-threaded, CPU-bound process that never exits."""
    while True:
        yield Compute(100_000)


@dataclass(frozen=True)
class MultiprogResult:
    config: str
    background: int
    raytracer_cycles: int
    machine: Machine


def run_multiprogram(config: str, background: int,
                     rt_scale: float = DEFAULT_RT_SCALE,
                     params: MachineParams = DEFAULT_PARAMS,
                     horizon: int = MULTIPROG_HORIZON,
                     workload: Optional[WorkloadSpec] = None,
                     policy: QueuePolicy = QueuePolicy.FIFO
                     ) -> MultiprogResult:
    """Run a shredded workload (default: RayTracer at ``rt_scale``)
    plus N background processes on one configuration."""
    from repro.systems import Session
    if workload is None:
        workload = make_raytracer(scale=rt_scale)
    run = (Session("multiprog", config)
           .params(params).policy(policy).limit(horizon)
           .background(background).run(workload))
    # keep the caller's series name ("ideal", "smp") on the result
    return MultiprogResult(config, background, run.cycles, run.machine)


def speedup_curve(config: str, loads: Sequence[int] = range(5),
                  rt_scale: float = DEFAULT_RT_SCALE,
                  params: MachineParams = DEFAULT_PARAMS) -> list[float]:
    """Speedup (vs unloaded) of RayTracer as load increases (one line
    of Figure 7).

    Every Figure 7 curve is normalized to its own configuration
    running unloaded -- that is why all curves start at 1.0 even
    though, say, 4x2 gives RayTracer only two sequencers.  For the
    per-load "ideal" partition the configuration changes with the
    load, so the baseline is re-measured per point: background
    processes on their own AMS-less OMSs leave RayTracer at 1.0.
    """
    curve: list[float] = []
    baseline: Optional[int] = None
    for load in loads:
        result = run_multiprogram(config, load, rt_scale, params)
        if config == "ideal":
            unloaded = _ideal_unloaded(load, rt_scale, params)
            curve.append(unloaded / result.raytracer_cycles)
            continue
        if baseline is None:
            baseline = result.raytracer_cycles
        curve.append(baseline / result.raytracer_cycles)
    return curve


def _ideal_unloaded(load: int, rt_scale: float,
                    params: MachineParams) -> int:
    """Unloaded RayTracer runtime on the load-``load`` ideal partition."""
    partition = config_name(ideal_config_for_load(FIGURE7_SEQUENCERS, load))
    return run_multiprogram(partition, 0, rt_scale, params).raytracer_cycles
