"""Shared building blocks for the evaluation workloads.

The RMS kernels and SPEComp proxies are written against the public
ShredLib API using two parallel idioms:

* **task-queue data parallelism** (:func:`parallel_for`): the work is
  split into M >> N tasks pushed through the shared work queue --
  natural load balancing, the idiom of the RMS kernels and RayTracer;
* **OpenMP-style parallel regions** (:func:`parallel_region`): exactly
  N worker shreds per region with join (barrier) semantics -- the
  idiom of the SPEComp applications, which the paper ran through a
  MISP-enabled OpenMP runtime.

Compute amounts are expressed in cycles; structure (phases, barriers,
first-touch patterns, syscalls) is what shapes the Table 1 event
profiles and the Figure 4 scalability of each application.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Sequence

from repro.exec.ops import Op
from repro.mem.addrspace import Region
from repro.shredlib.api import ShredAPI
from repro.shredlib.shred import Shred

#: compute chunk used by workloads (coarser than the context default;
#: still far below the 2M-cycle timer quantum)
WORK_CHUNK = 100_000


def chunk_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous (start, count)."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for i in range(parts):
        count = base + (1 if i < extra else 0)
        ranges.append((start, count))
        start += count
    return ranges


def jittered(amount: int, cv: float, rng: random.Random) -> int:
    """A work amount with coefficient-of-variation ``cv`` (load imbalance)."""
    if cv <= 0:
        return amount
    factor = max(0.1, rng.gauss(1.0, cv))
    return max(1, int(amount * factor))


def parallel_for(api: ShredAPI, bodies: Sequence[Iterator[Op]],
                 name: str = "task") -> Iterator[Op]:
    """Run task bodies to completion through the shared work queue."""
    shreds: list[Shred] = []
    for i, body in enumerate(bodies):
        shred = yield from api.create(body, name=f"{name}-{i}")
        shreds.append(shred)
    yield from api.join_all(shreds)


def parallel_region(api: ShredAPI, nworkers: int,
                    body_fn: Callable[[int], Iterator[Op]],
                    name: str = "omp") -> Iterator[Op]:
    """One OpenMP-style parallel region: N workers, implicit barrier."""
    bodies = [body_fn(i) for i in range(nworkers)]
    yield from parallel_for(api, bodies, name=name)


def touch_then_compute(ctx, region: Region, start: int, count: int,
                       compute: int, write: bool = False) -> Iterator[Op]:
    """Stream over ``count`` pages, then do ``compute`` cycles of work."""
    if count > 0:
        yield from ctx.touch_range(region, start, count, write=write)
    if compute > 0:
        yield from ctx.compute(compute, chunk=WORK_CHUNK)
