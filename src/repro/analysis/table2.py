"""Table 2: applications ported to the MISP architecture.

"Each application is ported by recompiling it to use ShredLib's API
support for Win32 Threads or Pthreads. ... With most applications, we
simply changed the application's source code to include a single
header file that contains ShredLib's thread-to-shred API mapping, and
then recompiled."  (Section 5.5)

The measurable claims we reproduce:

* legacy apps written purely against the Pthreads/Win32 APIs run
  multi-shredded with **zero source changes** (the shim construction
  is the one-line header include) -- verified by actually running each
  app on the MISP machine and on the SMP baseline;
* the port is mechanical: we count the legacy API calls the shim
  translated during the run;
* the one exception, Open Dynamics Engine, needed a structural change
  because its main thread sleeps waiting for input; the naive and
  restructured ports are both run and the speedup of the
  restructuring is reported.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional

from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.legacy import apps
from repro.workloads.runner import run_misp


@dataclass(frozen=True)
class PortRow:
    """One row of the reproduced Table 2."""

    application: str
    api: str                      # "pthreads" | "win32"
    paper_effort_days: float
    source_lines: int
    lines_changed: int            # the shim include
    api_calls_translated: int
    misp_cycles: int
    ran_correctly: bool


#: paper effort numbers for the rows we re-implement
PAPER_EFFORT_DAYS = {
    "thread_checker_like": 5.0,    # Intel Thread Checker
    "jrockit_like": 15.0,          # BEA JRockit
    "media_encoder": 13.0,         # commercial media encoder
    "lame_mt": 0.5,                # LAME-MT
    "ode_like_naive": 3.0,         # Open Dynamics Engine
    "ode_like_restructured": 3.0,
}


def _source_lines(fn: Callable) -> int:
    return len(inspect.getsource(fn).splitlines())


_APPS = [
    ("thread_checker_like", "pthreads", apps.make_thread_checker_like,
     apps.thread_checker_like),
    ("lame_mt", "pthreads", apps.make_lame_mt, apps.lame_mt),
    ("media_encoder", "win32", apps.make_media_encoder, apps.media_encoder),
    ("jrockit_like", "pthreads", apps.make_jrockit_like, apps.jrockit_like),
    ("ode_like_naive", "pthreads",
     lambda: apps.make_ode_like(restructured=False), apps.ode_like),
    ("ode_like_restructured", "pthreads",
     lambda: apps.make_ode_like(restructured=True), apps.ode_like),
]


def run_table2(ams_count: int = 7,
               params: MachineParams = DEFAULT_PARAMS) -> list[PortRow]:
    """Port and run every legacy application on the MISP machine."""
    rows: list[PortRow] = []
    for name, api_kind, factory, source_fn in _APPS:
        spec = factory()
        result = run_misp(spec, ams_count=ams_count, params=params)
        shim_counter = _translated_calls(result)
        rows.append(PortRow(
            application=name, api=api_kind,
            paper_effort_days=PAPER_EFFORT_DAYS[name],
            source_lines=_source_lines(source_fn),
            lines_changed=1,
            api_calls_translated=shim_counter,
            misp_cycles=result.cycles,
            ran_correctly=result.runtime.active == 0,
        ))
    return rows


def _translated_calls(result) -> int:
    """Read the shim's translation counter from the finished run."""
    shim = getattr(result.runtime, "legacy_shim", None)
    return shim.calls_translated if shim is not None else 0


def ode_restructuring_speedup(ams_count: int = 7,
                              params: MachineParams = DEFAULT_PARAMS
                              ) -> float:
    """Speedup of the ODE structural fix (Section 5.5's one code change)."""
    naive = run_misp(apps.make_ode_like(restructured=False),
                     ams_count=ams_count, params=params)
    fixed = run_misp(apps.make_ode_like(restructured=True),
                     ams_count=ams_count, params=params)
    return naive.cycles / fixed.cycles


def format_table2(rows: list[PortRow]) -> str:
    header = (f"{'application':24s} {'API':9s} {'paper(d)':>8s} "
              f"{'LoC':>5s} {'changed':>7s} {'calls':>6s} {'ok':>3s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.application:24s} {row.api:9s} "
                     f"{row.paper_effort_days:8.1f} {row.source_lines:5d} "
                     f"{row.lines_changed:7d} {row.api_calls_translated:6d} "
                     f"{'yes' if row.ran_correctly else 'NO':>3s}")
    return "\n".join(lines)
