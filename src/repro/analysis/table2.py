"""Table 2: applications ported to the MISP architecture.

"Each application is ported by recompiling it to use ShredLib's API
support for Win32 Threads or Pthreads. ... With most applications, we
simply changed the application's source code to include a single
header file that contains ShredLib's thread-to-shred API mapping, and
then recompiled."  (Section 5.5)

The measurable claims we reproduce:

* legacy apps written purely against the Pthreads/Win32 APIs run
  multi-shredded with **zero source changes** (the shim construction
  is the one-line header include) -- verified by actually running each
  app on the MISP machine and on the SMP baseline;
* the port is mechanical: we count the legacy API calls the shim
  translated during the run;
* the one exception, Open Dynamics Engine, needed a structural change
  because its main thread sleeps waiting for input; the naive and
  restructured ports are both run and the speedup of the
  restructuring is reported.

The legacy apps are registered in the workload registry, so the ports
are declared as ordinary :class:`RunSpec` grid members; the shim's
translation counter and the joined-shred check travel back in the
:class:`~repro.experiments.RunSummary`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.figure4 import DEFAULT_AMS_COUNT
from repro.core.notation import config_name
from repro.experiments import (
    ExperimentSpec, Runner, RunSpec, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.legacy import apps


@dataclass(frozen=True)
class PortRow:
    """One row of the reproduced Table 2."""

    application: str
    api: str                      # "pthreads" | "win32"
    paper_effort_days: float
    source_lines: int
    lines_changed: int            # the shim include
    api_calls_translated: int
    misp_cycles: int
    ran_correctly: bool


#: paper effort numbers for the rows we re-implement
PAPER_EFFORT_DAYS = {
    "thread_checker_like": 5.0,    # Intel Thread Checker
    "jrockit_like": 15.0,          # BEA JRockit
    "media_encoder": 13.0,         # commercial media encoder
    "lame_mt": 0.5,                # LAME-MT
    "ode_like_naive": 3.0,         # Open Dynamics Engine
    "ode_like_restructured": 3.0,
}


def _source_lines(fn: Callable) -> int:
    return len(inspect.getsource(fn).splitlines())


#: registry name, legacy API kind, unmodified source function
_APPS = [
    ("thread_checker_like", "pthreads", apps.thread_checker_like),
    ("lame_mt", "pthreads", apps.lame_mt),
    ("media_encoder", "win32", apps.media_encoder),
    ("jrockit_like", "pthreads", apps.jrockit_like),
    ("ode_like_naive", "pthreads", apps.ode_like),
    ("ode_like_restructured", "pthreads", apps.ode_like),
]


def _port_spec(name: str, ams_count: int,
               params: MachineParams) -> RunSpec:
    return RunSpec(name, "misp", config_name([ams_count]), params=params)


def table2_experiment(ams_count: int = DEFAULT_AMS_COUNT,
                      params: MachineParams = DEFAULT_PARAMS
                      ) -> ExperimentSpec:
    """Declare the porting grid: every legacy app on the MISP machine."""
    return ExperimentSpec("table2", tuple(
        _port_spec(name, ams_count, params) for name, _, _ in _APPS))


def run_table2(ams_count: int = DEFAULT_AMS_COUNT,
               params: MachineParams = DEFAULT_PARAMS,
               runner: Optional[Runner] = None) -> list[PortRow]:
    """Port and run every legacy application on the MISP machine."""
    runner = runner or default_runner()
    result = runner.run_experiment(table2_experiment(ams_count, params))
    rows: list[PortRow] = []
    for name, api_kind, source_fn in _APPS:
        summary = result[_port_spec(name, ams_count, params)]
        rows.append(PortRow(
            application=name, api=api_kind,
            paper_effort_days=PAPER_EFFORT_DAYS[name],
            source_lines=_source_lines(source_fn),
            lines_changed=1,
            api_calls_translated=summary.legacy_calls_translated,
            misp_cycles=summary.cycles,
            ran_correctly=summary.shreds_unjoined == 0,
        ))
    return rows


def ode_restructuring_speedup(ams_count: int = DEFAULT_AMS_COUNT,
                              params: MachineParams = DEFAULT_PARAMS,
                              runner: Optional[Runner] = None) -> float:
    """Speedup of the ODE structural fix (Section 5.5's one code change).

    With a shared Runner both runs are memo hits after
    :func:`run_table2`.
    """
    runner = runner or default_runner()
    naive, fixed = runner.run_many([
        _port_spec("ode_like_naive", ams_count, params),
        _port_spec("ode_like_restructured", ams_count, params),
    ])
    return naive.cycles / fixed.cycles


def format_table2(rows: list[PortRow]) -> str:
    header = (f"{'application':24s} {'API':9s} {'paper(d)':>8s} "
              f"{'LoC':>5s} {'changed':>7s} {'calls':>6s} {'ok':>3s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.application:24s} {row.api:9s} "
                     f"{row.paper_effort_days:8.1f} {row.source_lines:5d} "
                     f"{row.lines_changed:7d} {row.api_calls_translated:6d} "
                     f"{'yes' if row.ran_correctly else 'NO':>3s}")
    return "\n".join(lines)
