"""Figure P: MISP-vs-SMP across functional-unit counts (scoreboard).

Figure 4 compares the systems under the paper's fixed per-op cost
model.  With the ``scoreboard`` timing model
(:mod:`repro.timing.scoreboard`) the comparison gains a
microarchitectural axis the paper's testbed could not vary: the width
of the execution core.  All sequencers of one MISP processor issue
into a *shared* pool of functional units, so MISP pays structural
hazards that single-sequencer processors (the SMP workers, the 1P
baseline) never see -- with one ALU and one memory unit, eight shreds
time-slice a single execution core; with eight of each they issue
unimpeded.

The sweep therefore holds everything fixed and varies
``sb_alu_units`` / ``sb_mem_units`` together, re-plotting the
Figure-4-style speedups at each width.  The expected shape (asserted
in ``tests/test_timing.py``): MISP cycles fall monotonically as units
are added -- so the MISP speedup rises monotonically -- while the SMP
curve stays flat, quantifying how much of the paper's MISP advantage
assumes an execution core wide enough for its shred gang.

Scoreboard runs are execution-driven only (no capture/replay), but
they dedup, parallelize, and cache like any grid: ``timing_model`` is
part of every spec hash, so these runs never collide with the fixed
model's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.figure4 import DEFAULT_AMS_COUNT, _systems
from repro.experiments import (
    ExperimentSpec, Runner, RunSpec, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams

#: functional-unit counts swept (applied to ALU and memory pools
#: alike); 1 = one shared execution core, 8 = one unit per sequencer
#: of the default 1x8 MISP partition
FIGURE_PIPELINE_FU_COUNTS = (1, 2, 4, 8)

#: the workload the sweep defaults to
DEFAULT_WORKLOAD = "RayTracer"


def _swept_params(params: MachineParams, fu_count: int) -> MachineParams:
    return params.with_changes(sb_alu_units=fu_count,
                               sb_mem_units=fu_count)


@dataclass(frozen=True)
class PipelineRow:
    """One FU-count point: the three systems under the scoreboard."""

    workload: str
    fu_count: int
    cycles_1p: int
    cycles_misp: int
    cycles_smp: int

    @property
    def misp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_misp

    @property
    def smp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_smp

    @property
    def misp_vs_smp(self) -> float:
        """Relative MISP slowdown vs SMP (positive = MISP slower)."""
        return self.cycles_misp / self.cycles_smp - 1.0


def figure_pipeline_experiment(
        workload: str = DEFAULT_WORKLOAD,
        fu_counts: Sequence[int] = FIGURE_PIPELINE_FU_COUNTS,
        ams_count: int = DEFAULT_AMS_COUNT,
        params: MachineParams = DEFAULT_PARAMS,
        scale: Optional[float] = None) -> ExperimentSpec:
    """Declare the grid: ``fu_counts x {1p, misp, smp}``, scoreboard."""
    runs = []
    for fu_count in fu_counts:
        swept = _swept_params(params, fu_count)
        for system, config in _systems(ams_count):
            runs.append(RunSpec(workload, system, config, scale=scale,
                                params=swept, timing_model="scoreboard"))
    return ExperimentSpec("figure_pipeline", tuple(runs))


def run_figure_pipeline(workload: str = DEFAULT_WORKLOAD,
                        fu_counts: Sequence[int] = FIGURE_PIPELINE_FU_COUNTS,
                        ams_count: int = DEFAULT_AMS_COUNT,
                        params: MachineParams = DEFAULT_PARAMS,
                        scale: Optional[float] = None,
                        runner: Optional[Runner] = None
                        ) -> list[PipelineRow]:
    """Execute the sweep and collect one row per FU count."""
    runner = runner or default_runner()
    result = runner.run_experiment(figure_pipeline_experiment(
        workload, fu_counts, ams_count, params, scale))
    systems = _systems(ams_count)
    rows: list[PipelineRow] = []
    for fu_count in fu_counts:
        swept = _swept_params(params, fu_count)
        per_system = {
            system: result[RunSpec(workload, system, config, scale=scale,
                                   params=swept,
                                   timing_model="scoreboard")]
            for system, config in systems
        }
        rows.append(PipelineRow(
            workload, fu_count,
            per_system["1p"].cycles,
            per_system["misp"].cycles,
            per_system["smp"].cycles))
    return rows


def format_figure_pipeline(rows: Sequence[PipelineRow]) -> str:
    """Render the sweep as a table of speedups per core width."""
    if not rows:
        return "figure_pipeline: no rows"
    header = (f"{rows[0].workload} (scoreboard): {'FUs':>4s} "
              f"{'MISP':>6s} {'SMP':>6s} {'Δ(M/S)':>8s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{'':{len(rows[0].workload) + 14}s} {row.fu_count:>4d} "
            f"{row.misp_speedup:6.2f} {row.smp_speedup:6.2f} "
            f"{row.misp_vs_smp * 100:+7.2f}%")
    first, last = rows[0], rows[-1]
    lines.append(
        f"MISP speedup {first.misp_speedup:.2f} -> {last.misp_speedup:.2f} "
        f"as shared FU pool widens {first.fu_count} -> {last.fu_count} "
        "(single-sequencer SMP cores never contend)")
    return "\n".join(lines)
