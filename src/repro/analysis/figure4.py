"""Figure 4: MISP vs SMP speedup over 1P, for all 16 applications.

"Figure 4 shows, for each application, MISP performance as speedup
over single sequencer performance.  For comparison, we also show the
performance for those same applications when executing on a similarly
configured SMP machine with eight cores."  (Section 5.3)

The companion text also gives the two summary statistics this module
computes: "The RMS applications perform, on average, 1.5% slower on
MISP than their performance on the SMP system, while the SPEComp
applications perform, on average, 1.9% faster on MISP."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.base import REGISTRY, WorkloadSpec
from repro.workloads.runner import RunResult, run_1p, run_misp, run_smp


@dataclass(frozen=True)
class SpeedupRow:
    """One bar pair of Figure 4."""

    workload: str
    suite: str
    cycles_1p: int
    cycles_misp: int
    cycles_smp: int

    @property
    def misp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_misp

    @property
    def smp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_smp

    @property
    def misp_vs_smp(self) -> float:
        """Relative MISP slowdown vs SMP (positive = MISP slower)."""
        return self.cycles_misp / self.cycles_smp - 1.0


@dataclass
class Figure4Result:
    rows: list[SpeedupRow]
    #: full run records for further analysis (Table 1, Figure 5)
    misp_runs: dict[str, RunResult]

    def row(self, workload: str) -> SpeedupRow:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)

    def mean_misp_vs_smp(self, suite: str) -> float:
        """Average MISP-vs-SMP delta for one suite (the §5.3 numbers)."""
        deltas = [r.misp_vs_smp for r in self.rows if r.suite == suite]
        if not deltas:
            raise ValueError(f"no rows for suite '{suite}'")
        return sum(deltas) / len(deltas)


def run_figure4(workload_names: Sequence[str],
                ams_count: int = 7,
                params: MachineParams = DEFAULT_PARAMS,
                scale: Optional[float] = None) -> Figure4Result:
    """Execute the Figure 4 experiment for the named workloads.

    ``scale`` rebuilds each workload scaled (for fast CI runs); the
    default uses the registered full-size specs.
    """
    rows: list[SpeedupRow] = []
    misp_runs: dict[str, RunResult] = {}
    ncpus = ams_count + 1
    for name in workload_names:
        spec = _spec(name, scale)
        r1 = run_1p(spec, params=params)
        rm = run_misp(spec, ams_count=ams_count, params=params)
        rs = run_smp(spec, ncpus=ncpus, params=params)
        rows.append(SpeedupRow(name, spec.suite, r1.cycles, rm.cycles,
                               rs.cycles))
        misp_runs[name] = rm
    return Figure4Result(rows, misp_runs)


def _spec(name: str, scale: Optional[float]) -> WorkloadSpec:
    if scale is None:
        return REGISTRY.get(name)
    from repro.workloads import rms, speccomp
    factories = {
        "ADAt": rms.make_adat, "dense_mmm": rms.make_dense_mmm,
        "dense_mvm": rms.make_dense_mvm,
        "dense_mvm_sym": rms.make_dense_mvm_sym, "gauss": rms.make_gauss,
        "kmeans": rms.make_kmeans, "sparse_mvm": rms.make_sparse_mvm,
        "sparse_mvm_sym": rms.make_sparse_mvm_sym,
        "sparse_mvm_trans": rms.make_sparse_mvm_trans,
        "svm_c": rms.make_svm_c, "RayTracer": rms.make_raytracer,
    }
    if name in factories:
        return factories[name](scale=scale)
    return speccomp.make_speccomp(name, scale=scale)


def format_figure4(result: Figure4Result) -> str:
    """Render the figure as the table of bar heights."""
    lines = [f"{'application':18s} {'MISP':>6s} {'SMP':>6s} {'Δ(M/S)':>8s}",
             "-" * 42]
    for row in result.rows:
        lines.append(f"{row.workload:18s} {row.misp_speedup:6.2f} "
                     f"{row.smp_speedup:6.2f} {row.misp_vs_smp * 100:+7.2f}%")
    for suite, label in (("rms", "RMS"), ("speccomp", "SPEComp")):
        try:
            delta = result.mean_misp_vs_smp(suite) * 100
        except ValueError:
            continue
        lines.append(f"{label} mean MISP-vs-SMP: {delta:+.2f}% "
                     f"(paper: {'+1.5%' if suite == 'rms' else '-1.9%'})")
    return "\n".join(lines)
