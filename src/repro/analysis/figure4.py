"""Figure 4: MISP vs SMP speedup over 1P, for all 16 applications.

"Figure 4 shows, for each application, MISP performance as speedup
over single sequencer performance.  For comparison, we also show the
performance for those same applications when executing on a similarly
configured SMP machine with eight cores."  (Section 5.3)

The companion text also gives the two summary statistics this module
computes: "The RMS applications perform, on average, 1.5% slower on
MISP than their performance on the SMP system, while the SPEComp
applications perform, on average, 1.9% faster on MISP."

The experiment is declared as a ``workloads x {1p, misp, smp}`` grid
over :mod:`repro.experiments`; the Runner deduplicates runs shared
with Table 1 / Figure 5 and executes grid members in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.notation import config_name
from repro.experiments import (
    ExperimentSpec, Runner, RunSpec, RunSummary, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.service import ExperimentService
from repro.workloads.base import REGISTRY

#: AMS count of the paper's MISP uniprocessor prototype (1 OMS + 7 AMS)
DEFAULT_AMS_COUNT = 7


@dataclass(frozen=True)
class SpeedupRow:
    """One bar pair of Figure 4."""

    workload: str
    suite: str
    cycles_1p: int
    cycles_misp: int
    cycles_smp: int

    @property
    def misp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_misp

    @property
    def smp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_smp

    @property
    def misp_vs_smp(self) -> float:
        """Relative MISP slowdown vs SMP (positive = MISP slower)."""
        return self.cycles_misp / self.cycles_smp - 1.0


@dataclass
class Figure4Result:
    rows: list[SpeedupRow]
    #: MISP run summaries for further analysis (Table 1, Figure 5)
    misp_summaries: dict[str, RunSummary]

    def row(self, workload: str) -> SpeedupRow:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)

    def mean_misp_vs_smp(self, suite: str) -> float:
        """Average MISP-vs-SMP delta for one suite (the §5.3 numbers)."""
        deltas = [r.misp_vs_smp for r in self.rows if r.suite == suite]
        if not deltas:
            raise ValueError(f"no rows for suite '{suite}'")
        return sum(deltas) / len(deltas)


def _systems(ams_count: int) -> tuple[tuple[str, str], ...]:
    return (("1p", "smp1"),
            ("misp", config_name([ams_count])),
            ("smp", f"smp{ams_count + 1}"))


def figure4_experiment(workload_names: Sequence[str],
                       ams_count: int = DEFAULT_AMS_COUNT,
                       params: MachineParams = DEFAULT_PARAMS,
                       scale: Optional[float] = None) -> ExperimentSpec:
    """Declare the Figure 4 grid: each workload on 1P, MISP, and SMP."""
    return ExperimentSpec.grid("figure4", workload_names,
                               systems=_systems(ams_count),
                               scale=scale, params=params)


def _assemble_figure4(result, workload_names: Sequence[str],
                      ams_count: int, params: MachineParams,
                      scale: Optional[float]) -> Figure4Result:
    """Shape an experiment result into the figure's rows.

    ``result`` is anything indexable by :class:`RunSpec` (an
    :class:`~repro.experiments.ExperimentResult`, however produced --
    batch Runner or streaming service job)."""
    spec_1p, spec_misp, spec_smp = _systems(ams_count)
    rows: list[SpeedupRow] = []
    misp_summaries: dict[str, RunSummary] = {}
    for name in workload_names:
        suite = REGISTRY.get(name).suite
        per_system = {
            system: result[RunSpec(name, system, config, scale=scale,
                                   params=params)]
            for system, config in (spec_1p, spec_misp, spec_smp)
        }
        rows.append(SpeedupRow(name, suite,
                               per_system["1p"].cycles,
                               per_system["misp"].cycles,
                               per_system["smp"].cycles))
        misp_summaries[name] = per_system["misp"]
    return Figure4Result(rows, misp_summaries)


def run_figure4(workload_names: Sequence[str],
                ams_count: int = DEFAULT_AMS_COUNT,
                params: MachineParams = DEFAULT_PARAMS,
                scale: Optional[float] = None,
                runner: Optional[Runner] = None) -> Figure4Result:
    """Execute the Figure 4 experiment for the named workloads.

    ``scale`` rebuilds each workload scaled (for fast CI runs); the
    default uses the registered full-size specs.
    """
    runner = runner or default_runner()
    result = runner.run_experiment(
        figure4_experiment(workload_names, ams_count, params, scale))
    return _assemble_figure4(result, workload_names, ams_count, params,
                             scale)


def run_figure4_streaming(
        service: ExperimentService,
        workload_names: Sequence[str],
        ams_count: int = DEFAULT_AMS_COUNT,
        params: MachineParams = DEFAULT_PARAMS,
        scale: Optional[float] = None,
        progress: Optional[Callable[[int, int, RunSummary], None]] = None,
) -> Figure4Result:
    """Figure 4 over the streaming job API.

    Submits the grid to an
    :class:`~repro.service.ExperimentService` and consumes partial
    summaries as runs finish -- ``progress(done, total, summary)``
    fires per completed run, *before* the grid completes -- then
    assembles the same :class:`Figure4Result` the batch path builds.
    Concurrent submissions of overlapping grids (another client asking
    for the same baselines) share executions through the service's
    in-flight table.
    """
    job = service.submit(
        figure4_experiment(workload_names, ams_count, params, scale))
    for done, summary in enumerate(job.as_completed(), start=1):
        if progress is not None:
            progress(done, job.expected, summary)
    return _assemble_figure4(job.result(), workload_names, ams_count,
                             params, scale)


def format_figure4(result: Figure4Result) -> str:
    """Render the figure as the table of bar heights."""
    lines = [f"{'application':18s} {'MISP':>6s} {'SMP':>6s} {'Δ(M/S)':>8s}",
             "-" * 42]
    for row in result.rows:
        lines.append(f"{row.workload:18s} {row.misp_speedup:6.2f} "
                     f"{row.smp_speedup:6.2f} {row.misp_vs_smp * 100:+7.2f}%")
    for suite, label in (("rms", "RMS"), ("speccomp", "SPEComp")):
        try:
            delta = result.mean_misp_vs_smp(suite) * 100
        except ValueError:
            continue
        lines.append(f"{label} mean MISP-vs-SMP: {delta:+.2f}% "
                     f"(paper: {'+1.5%' if suite == 'rms' else '-1.9%'})")
    return "\n".join(lines)
