"""Figure 7: MISP MP throughput under multiprogramming (Section 5.4).

Regenerates the figure's nine series -- ideal, smp, 4x2, 2x4, 1x8,
1x7+1, 1x6+2, 1x5+3, 1x4+4 -- each a speedup-vs-unloaded curve for
RayTracer as 0..4 single-threaded processes are added.

Expected shape (Section 5.4): the 1x8 configuration degrades "nearly
linearly" because every background process time-shares the single OMS
and idles the AMSs; adding MISP processors (2x4, 4x2) flattens the
curve; the per-load ideal partition (background processes on AMS-less
OMSs) stays at 1.0.

The 45-point sweep is declared as a ``configs x loads`` grid over
:mod:`repro.experiments`.  Declaring it (instead of looping over
:func:`~repro.workloads.multiprog.run_multiprogram`) buys two things:
grid members run in parallel worker processes, and the "ideal" series
resolves each load to its explicit partition (``1x(8-N)+N``), so its
points are deduplicated against the identically configured members of
the fixed-partition series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.notation import config_name, ideal_config_for_load
from repro.experiments import (
    FIGURE7_SEQUENCERS, ExperimentSpec, Runner, RunSpec, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.multiprog import DEFAULT_RT_SCALE

#: series plotted in Figure 7, in legend order
FIGURE7_SERIES = ["ideal", "smp", "4x2", "2x4", "1x8",
                  "1x7+1", "1x6+2", "1x5+3", "1x4+4"]

#: the workload whose throughput the figure measures
FIGURE7_WORKLOAD = "RayTracer"


@dataclass(frozen=True)
class Figure7Result:
    loads: tuple[int, ...]
    #: config name -> speedup-vs-unloaded per load
    curves: dict[str, list[float]]

    def curve(self, config: str) -> list[float]:
        return self.curves[config]


def _mp_spec(config: str, load: int, rt_scale: float,
             params: MachineParams) -> RunSpec:
    return RunSpec(FIGURE7_WORKLOAD, "multiprog", config, scale=rt_scale,
                   background=load, params=params)


def _ideal_partition(load: int) -> str:
    return config_name(ideal_config_for_load(FIGURE7_SEQUENCERS, load))


def figure7_experiment(series: Sequence[str] = FIGURE7_SERIES,
                       loads: Sequence[int] = range(5),
                       rt_scale: float = DEFAULT_RT_SCALE,
                       params: MachineParams = DEFAULT_PARAMS
                       ) -> ExperimentSpec:
    """Declare the Figure 7 grid: every (config, load) point, plus the
    per-load unloaded baselines the "ideal" series normalizes to."""
    runs: list[RunSpec] = []
    for config in series:
        for load in loads:
            runs.append(_mp_spec(config, load, rt_scale, params))
            if config == "ideal":
                # the ideal series re-baselines per point: the same
                # partition, unloaded
                runs.append(_mp_spec(_ideal_partition(load), 0,
                                     rt_scale, params))
    return ExperimentSpec("figure7", tuple(runs))


def run_figure7(series: Sequence[str] = FIGURE7_SERIES,
                loads: Sequence[int] = range(5),
                rt_scale: float = DEFAULT_RT_SCALE,
                params: MachineParams = DEFAULT_PARAMS,
                runner: Optional[Runner] = None) -> Figure7Result:
    loads = tuple(loads)
    runner = runner or default_runner()
    result = runner.run_experiment(
        figure7_experiment(series, loads, rt_scale, params))

    curves: dict[str, list[float]] = {}
    for config in series:
        if config == "ideal":
            # normalized per point to the same partition running
            # unloaded: background processes on their own AMS-less
            # OMSs leave RayTracer at 1.0
            curve = []
            for load in loads:
                loaded = result[_mp_spec(config, load, rt_scale, params)]
                unloaded = result[_mp_spec(_ideal_partition(load), 0,
                                           rt_scale, params)]
                curve.append(unloaded.cycles / loaded.cycles)
        else:
            # every fixed curve is normalized to its own first point
            base = result[_mp_spec(config, loads[0], rt_scale,
                                   params)].cycles
            curve = [base / result[_mp_spec(config, load, rt_scale,
                                            params)].cycles
                     for load in loads]
        curves[config] = curve
    return Figure7Result(loads, curves)


def format_figure7(result: Figure7Result) -> str:
    header = (f"{'config':8s} "
              + " ".join(f"load={n:<2d}" for n in result.loads))
    lines = [header, "-" * len(header)]
    for config, curve in result.curves.items():
        values = " ".join(f"{v:7.3f}" for v in curve)
        lines.append(f"{config:8s} {values}")
    return "\n".join(lines)
