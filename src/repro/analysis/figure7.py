"""Figure 7: MISP MP throughput under multiprogramming (Section 5.4).

Regenerates the figure's nine series -- ideal, smp, 4x2, 2x4, 1x8,
1x7+1, 1x6+2, 1x5+3, 1x4+4 -- each a speedup-vs-unloaded curve for
RayTracer as 0..4 single-threaded processes are added.

Expected shape (Section 5.4): the 1x8 configuration degrades "nearly
linearly" because every background process time-shares the single OMS
and idles the AMSs; adding MISP processors (2x4, 4x2) flattens the
curve; the per-load ideal partition (background processes on AMS-less
OMSs) stays at 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.multiprog import DEFAULT_RT_SCALE, speedup_curve

#: series plotted in Figure 7, in legend order
FIGURE7_SERIES = ["ideal", "smp", "4x2", "2x4", "1x8",
                  "1x7+1", "1x6+2", "1x5+3", "1x4+4"]


@dataclass(frozen=True)
class Figure7Result:
    loads: tuple[int, ...]
    #: config name -> speedup-vs-unloaded per load
    curves: dict[str, list[float]]

    def curve(self, config: str) -> list[float]:
        return self.curves[config]


def run_figure7(series: Sequence[str] = FIGURE7_SERIES,
                loads: Sequence[int] = range(5),
                rt_scale: float = DEFAULT_RT_SCALE,
                params: MachineParams = DEFAULT_PARAMS) -> Figure7Result:
    curves = {config: speedup_curve(config, loads, rt_scale, params)
              for config in series}
    return Figure7Result(tuple(loads), curves)


def format_figure7(result: Figure7Result) -> str:
    header = (f"{'config':8s} "
              + " ".join(f"load={n:<2d}" for n in result.loads))
    lines = [header, "-" * len(header)]
    for config, curve in result.curves.items():
        values = " ".join(f"{v:7.3f}" for v in curve)
        lines.append(f"{config:8s} {values}")
    return "\n".join(lines)
