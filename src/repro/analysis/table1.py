"""Table 1: serializing events per application on the MISP prototype.

"Table 1 summarizes statistics for all salient architectural events
that cause the MISP processor to serialize execution to synchronize
privileged state across all AMSs. ... The events are separated into
those occurring on the OMS and those occurring on the AMSs."

Columns: OMS SysCall / PF / Timer / Interrupt, AMS SysCall / PF.
The paper's reference counts are embedded here so the harness can
report measured-vs-paper side by side (SPEComp rows are compared at
the proxies' 1/50 event scale; see
:data:`repro.workloads.speccomp.EVENT_SCALE`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.analysis.figure4 import DEFAULT_AMS_COUNT
from repro.experiments import (
    ExperimentSpec, Runner, RunSummary, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.runner import RunResult
from repro.workloads.speccomp import EVENT_SCALE


@dataclass(frozen=True)
class EventRow:
    """One row of Table 1."""

    workload: str
    oms_syscall: int
    oms_pf: int
    oms_timer: int
    oms_interrupt: int
    ams_syscall: int
    ams_pf: int

    @property
    def total_oms(self) -> int:
        return (self.oms_syscall + self.oms_pf + self.oms_timer
                + self.oms_interrupt)

    @property
    def total_ams(self) -> int:
        return self.ams_syscall + self.ams_pf


#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    "ADAt": EventRow("ADAt", 0, 1, 168, 20, 0, 9),
    "dense_mmm": EventRow("dense_mmm", 0, 29, 141, 15, 0, 133),
    "dense_mvm": EventRow("dense_mvm", 0, 1, 64, 5, 0, 5),
    "dense_mvm_sym": EventRow("dense_mvm_sym", 0, 2, 1178, 104, 0, 9),
    "gauss": EventRow("gauss", 8, 7170, 1736, 158, 0, 1),
    "kmeans": EventRow("kmeans", 8, 7170, 260, 25, 0, 2),
    "sparse_mvm": EventRow("sparse_mvm", 0, 27, 114, 13, 0, 205),
    "sparse_mvm_sym": EventRow("sparse_mvm_sym", 0, 11, 343, 31, 0, 669),
    "sparse_mvm_trans": EventRow("sparse_mvm_trans", 0, 26, 826, 75, 0, 200),
    "svm_c": EventRow("svm_c", 8, 7204, 1006, 101, 0, 1307),
    "RayTracer": EventRow("RayTracer", 0, 210, 591, 66, 0, 979),
    "swim": EventRow("swim", 77_009, 59_570, 96_687, 10_281, 0, 346_201),
    "applu": EventRow("applu", 1_394, 59_540, 57_282, 5_115, 0, 327_313),
    "galgel": EventRow("galgel", 881, 152_806, 64_880, 6_242, 0, 140_180),
    "equake": EventRow("equake", 45_937, 47_896, 29_727, 3_093, 0, 85_654),
    "art": EventRow("art", 19_978, 133_672, 31_647, 2_923, 436, 138_464),
}

#: SPEComp applications whose paper counts must be scaled for comparison
_SPECCOMP = {"swim", "applu", "galgel", "equake", "art"}


def measured_row(result: Union[RunResult, RunSummary]) -> EventRow:
    """Extract the Table 1 row from one MISP run (live result or
    plain-data summary)."""
    events = result.serializing_events()
    return EventRow(result.workload, events["oms_syscall"],
                    events["oms_pf"], events["oms_timer"],
                    events["oms_interrupt"], events["ams_syscall"],
                    events["ams_pf"])


def table1_experiment(workload_names: Sequence[str],
                      ams_count: int = DEFAULT_AMS_COUNT,
                      params: MachineParams = DEFAULT_PARAMS,
                      scale: Optional[float] = None) -> ExperimentSpec:
    """Declare the Table 1 grid: one MISP run per workload."""
    from repro.analysis.figure5 import figure5_experiment
    grid = figure5_experiment(workload_names, ams_count, params, scale)
    return ExperimentSpec("table1", grid.runs)


def run_table1(workload_names: Sequence[str],
               ams_count: int = DEFAULT_AMS_COUNT,
               params: MachineParams = DEFAULT_PARAMS,
               scale: Optional[float] = None,
               runner: Optional[Runner] = None) -> list[EventRow]:
    """Run the MISP grid and extract each workload's Table 1 row."""
    runner = runner or default_runner()
    exp = table1_experiment(workload_names, ams_count, params, scale)
    return [measured_row(s) for s in runner.run_many(exp.runs)]


def paper_row_scaled(workload: str) -> Optional[EventRow]:
    """The paper's row, at the proxies' event scale where applicable."""
    row = PAPER_TABLE1.get(workload)
    if row is None:
        return None
    if workload not in _SPECCOMP:
        return row
    scale = EVENT_SCALE
    return EventRow(row.workload, round(row.oms_syscall * scale),
                    round(row.oms_pf * scale), round(row.oms_timer * scale),
                    round(row.oms_interrupt * scale),
                    round(row.ams_syscall * scale),
                    round(row.ams_pf * scale))


def format_table1(rows: list[EventRow], compare: bool = True) -> str:
    """Render measured rows, optionally with paper references."""
    header = (f"{'application':18s} {'SysCall':>8s} {'PF':>7s} {'Timer':>7s} "
              f"{'Intr':>6s} | {'aSysCall':>8s} {'aPF':>7s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.workload:18s} {row.oms_syscall:8d} "
                     f"{row.oms_pf:7d} {row.oms_timer:7d} "
                     f"{row.oms_interrupt:6d} | {row.ams_syscall:8d} "
                     f"{row.ams_pf:7d}")
        if compare:
            paper = paper_row_scaled(row.workload)
            if paper is not None:
                lines.append(f"{'  (paper, scaled)':18s} "
                             f"{paper.oms_syscall:8d} {paper.oms_pf:7d} "
                             f"{paper.oms_timer:7d} {paper.oms_interrupt:6d}"
                             f" | {paper.ams_syscall:8d} {paper.ams_pf:7d}")
    return "\n".join(lines)
