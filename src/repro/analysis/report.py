"""One-stop evaluation report: regenerate every table and figure.

``python -m repro.analysis.report`` runs the full Section 5 evaluation
(Figure 4, Table 1, Figure 5, Figure 6, Figure 7, Table 2) and prints
the paper-shaped artifacts.  All experiments flow through one shared
:class:`repro.experiments.Runner`, so runs common to several artifacts
simulate once, grid members execute in parallel worker processes, and
(with ``--cache-dir``) a re-invocation is served from the on-disk
cache.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis.figure4 import (
    format_figure4, run_figure4, run_figure4_streaming,
)
from repro.analysis.figure5 import format_figure5, run_figure5
from repro.analysis.figure7 import format_figure7, run_figure7
from repro.analysis.figure_mem import format_figure_mem, run_figure_mem
from repro.analysis.table1 import format_table1, run_table1
from repro.analysis.table2 import (
    format_table2, ode_restructuring_speedup, run_table2,
)
from repro.core.notation import FIGURE6_CONFIGS, config_name, parse_config
from repro.experiments import Runner, default_runner
from repro.service import ExperimentService, store_from_env
from repro.systems import SYSTEM_REGISTRY


def figure6_text() -> str:
    """Figure 6: the MISP MP configurations, as partition listings."""
    lines = ["Figure 6 -- MISP MP configurations (8 sequencers total):"]
    for name in FIGURE6_CONFIGS:
        counts = parse_config(name)
        parts = " | ".join(
            "OMS" + (f"+{c}AMS" if c else "") for c in counts)
        lines.append(f"  {config_name(counts):7s} -> {parts}")
    return "\n".join(lines)


def full_report(workloads: Optional[Sequence[str]] = None,
                scale: Optional[float] = None,
                rt_scale: float = 0.15,
                runner: Optional[Runner] = None,
                service: Optional[ExperimentService] = None,
                stream=sys.stdout) -> None:
    """Regenerate every artifact.

    With ``service`` the Figure 4 grid flows through the streaming job
    API -- partial results print as runs finish -- and the report ends
    with the content-addressed store's hit-rate line.  ``runner`` and
    ``service`` should share one store so artifacts warm each other.
    """
    from repro.workloads import FIGURE4_ORDER
    names = list(workloads or FIGURE4_ORDER)
    runner = runner or default_runner()

    def emit(text: str) -> None:
        print(text, file=stream)
        stream.flush()

    t0 = time.time()
    emit("=" * 70)
    emit("MISP reproduction -- full evaluation report")
    emit("system backends: " + ", ".join(
        f"{b.name} ({b.default_config})"
        for b in SYSTEM_REGISTRY.backends()))
    emit("=" * 70)

    emit("\n--- Figure 4: speedup vs 1P (MISP 1x8 vs SMP 8-way) ---")
    if service is not None:
        def progress(done: int, total: int, summary) -> None:
            emit(f"  [{done}/{total}] {summary.workload}/{summary.system}:"
                 f"{summary.config} -> {summary.cycles:,} cycles")

        fig4 = run_figure4_streaming(service, names, scale=scale,
                                     progress=progress)
    else:
        fig4 = run_figure4(names, scale=scale, runner=runner)
    emit(format_figure4(fig4))

    emit("\n--- Table 1: serializing events (MISP 1x8) ---")
    emit(format_table1(run_table1(names, scale=scale, runner=runner)))

    emit("\n--- Figure 5: sensitivity to signal cost ---")
    emit(format_figure5(run_figure5(names, scale=scale, runner=runner)))

    emit("\n--- Figure M: sensitivity to memory cost (new axis) ---")
    emit(format_figure_mem(run_figure_mem(workload=names[0], scale=scale,
                                          runner=runner)))
    sample = fig4.misp_summaries[names[0]].mem
    emit(f"{names[0]} on MISP: {sample.accesses:,} hierarchy accesses, "
         f"L1 {sample.l1_hit_rate * 100:.1f}% / "
         f"L2 {sample.l2_hit_rate * 100:.1f}% hit, "
         f"{sample.l1_invalidations} L1 invalidations, "
         f"TLB {sample.tlb_hits:,}h/{sample.tlb_misses:,}m/"
         f"{sample.tlb_flushes}f")

    emit("\n--- " + figure6_text())

    emit("\n--- Figure 7: MP throughput under multiprogramming ---")
    fig7 = run_figure7(rt_scale=rt_scale, runner=runner)
    emit(format_figure7(fig7))

    emit("\n--- Table 2: porting legacy applications ---")
    emit(format_table2(run_table2(runner=runner)))
    speedup = ode_restructuring_speedup(runner=runner)
    emit(f"ODE restructuring speedup: {speedup:.2f}x")

    emit(f"\n[report completed in {time.time() - t0:.1f}s; "
         f"runs: {runner.stats}]")
    if service is not None:
        emit(f"[service: {service.stats}]")
    store = service.store if service is not None else runner.store
    if store is not None:
        # the ROADMAP's serving target: a figure request should be
        # almost entirely store hits -- report the measured rate
        emit(f"[{store.stats}]")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default: full size)")
    parser.add_argument("--rt-scale", type=float, default=0.15,
                        help="RayTracer scale for Figure 7")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workloads to run")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker processes (default: cores)")
    parser.add_argument("--serial", action="store_true",
                        help="run everything in-process, serially")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk run cache (incremental re-runs)")
    parser.add_argument("--replay", action="store_true",
                        help="capture once per sweep and replay the "
                             "timing-only points (trace-driven fast path)")
    parser.add_argument("--stream", action="store_true",
                        help="serve Figure 4 through the ExperimentService "
                             "job API (partial results stream as runs "
                             "finish; prints the store hit-rate line)")
    args = parser.parse_args(argv)
    service = None
    store = None
    if args.stream:
        import tempfile
        store_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-store-")
        store = store_from_env(store_dir)
        service = ExperimentService(store=store, max_workers=args.jobs,
                                    parallel=not args.serial,
                                    replay=args.replay)
    runner = Runner(cache_dir=None if store else args.cache_dir,
                    store=store, max_workers=args.jobs,
                    parallel=not args.serial, replay=args.replay)
    full_report(args.workloads, args.scale, args.rt_scale, runner=runner,
                service=service)
    if service is not None:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
