"""One-stop evaluation report: regenerate every table and figure.

``python -m repro.analysis.report`` runs the full Section 5 evaluation
(Figure 4, Table 1, Figure 5, Figure 6, Figure 7, Table 2) and prints
the paper-shaped artifacts.  All experiments flow through one shared
:class:`repro.experiments.Runner`, so runs common to several artifacts
simulate once, grid members execute in parallel worker processes, and
(with ``--cache-dir``) a re-invocation is served from the on-disk
cache.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Optional, Sequence

from repro.analysis.figure4 import (
    format_figure4, run_figure4, run_figure4_streaming,
)
from repro.analysis.figure5 import format_figure5, run_figure5
from repro.analysis.figure7 import format_figure7, run_figure7
from repro.analysis.figure_mem import format_figure_mem, run_figure_mem
from repro.analysis.table1 import format_table1, run_table1
from repro.analysis.table2 import (
    format_table2, ode_restructuring_speedup, run_table2,
)
from repro.core.notation import FIGURE6_CONFIGS, config_name, parse_config
from repro.experiments import Runner, default_runner
from repro.obs.emit import ReportEmitter
from repro.service import ExperimentService, store_from_env
from repro.systems import SYSTEM_REGISTRY


def figure6_text() -> str:
    """Figure 6: the MISP MP configurations, as partition listings."""
    lines = ["Figure 6 -- MISP MP configurations (8 sequencers total):"]
    for name in FIGURE6_CONFIGS:
        counts = parse_config(name)
        parts = " | ".join(
            "OMS" + (f"+{c}AMS" if c else "") for c in counts)
        lines.append(f"  {config_name(counts):7s} -> {parts}")
    return "\n".join(lines)


def full_report(workloads: Optional[Sequence[str]] = None,
                scale: Optional[float] = None,
                rt_scale: float = 0.15,
                runner: Optional[Runner] = None,
                service: Optional[ExperimentService] = None,
                stream=None,
                emitter: Optional[ReportEmitter] = None,
                smoke: bool = False) -> None:
    """Regenerate every artifact.

    With ``service`` the Figure 4 grid flows through the streaming job
    API -- partial results print as runs finish -- and the report ends
    with the content-addressed store's hit-rate line.  ``runner`` and
    ``service`` should share one store so artifacts warm each other.

    Output flows through a :class:`~repro.obs.emit.ReportEmitter`
    (built from ``stream`` when not passed), so every line carries the
    report's correlation id in structured mode.  ``smoke`` restricts
    the report to the Figure 4 grid -- the fast end-to-end slice CI
    exercises for observability artifacts.
    """
    from repro.workloads import FIGURE4_ORDER
    names = list(workloads or FIGURE4_ORDER)
    runner = runner or default_runner()
    out = emitter if emitter is not None else ReportEmitter(stream=stream)
    emit = out.emit

    t0 = time.time()
    emit("=" * 70, kind="header")
    emit("MISP reproduction -- full evaluation report", kind="header",
         run=out.run_id)
    emit("system backends: " + ", ".join(
        f"{b.name} ({b.default_config})"
        for b in SYSTEM_REGISTRY.backends()), kind="header")
    emit("=" * 70, kind="header")

    out.section("Figure 4: speedup vs 1P (MISP 1x8 vs SMP 8-way)")
    if service is not None:
        def progress(done: int, total: int, summary) -> None:
            emit(f"  [{done}/{total}] {summary.workload}/{summary.system}:"
                 f"{summary.config} -> {summary.cycles:,} cycles",
                 kind="progress", done=done, total=total,
                 workload=summary.workload, system=summary.system,
                 config=summary.config, cycles=summary.cycles)

        fig4 = run_figure4_streaming(service, names, scale=scale,
                                     progress=progress)
    else:
        fig4 = run_figure4(names, scale=scale, runner=runner)
    emit(format_figure4(fig4), kind="artifact", artifact="figure4")

    if not smoke:
        out.section("Table 1: serializing events (MISP 1x8)")
        emit(format_table1(run_table1(names, scale=scale, runner=runner)),
             kind="artifact", artifact="table1")

        out.section("Figure 5: sensitivity to signal cost")
        emit(format_figure5(run_figure5(names, scale=scale, runner=runner)),
             kind="artifact", artifact="figure5")

        out.section("Figure M: sensitivity to memory cost (new axis)")
        emit(format_figure_mem(run_figure_mem(workload=names[0], scale=scale,
                                              runner=runner)),
             kind="artifact", artifact="figure_mem")
        sample = fig4.misp_summaries[names[0]].mem
        emit(f"{names[0]} on MISP: {sample.accesses:,} hierarchy accesses, "
             f"L1 {sample.l1_hit_rate * 100:.1f}% / "
             f"L2 {sample.l2_hit_rate * 100:.1f}% hit, "
             f"{sample.l1_invalidations} L1 invalidations, "
             f"TLB {sample.tlb_hits:,}h/{sample.tlb_misses:,}m/"
             f"{sample.tlb_flushes}f", kind="stats")

        emit("\n--- " + figure6_text(), kind="artifact", artifact="figure6")

        out.section("Figure 7: MP throughput under multiprogramming")
        fig7 = run_figure7(rt_scale=rt_scale, runner=runner)
        emit(format_figure7(fig7), kind="artifact", artifact="figure7")

        out.section("Table 2: porting legacy applications")
        emit(format_table2(run_table2(runner=runner)),
             kind="artifact", artifact="table2")
        speedup = ode_restructuring_speedup(runner=runner)
        emit(f"ODE restructuring speedup: {speedup:.2f}x", kind="stats",
             speedup=speedup)

    emit(f"\n[report completed in {time.time() - t0:.1f}s; "
         f"runs: {runner.stats}]", kind="stats")
    if service is not None:
        emit(f"[service: {service.stats}]", kind="stats")
    store = service.store if service is not None else runner.store
    if store is not None:
        # the ROADMAP's serving target: a figure request should be
        # almost entirely store hits -- report the measured rate
        emit(f"[{store.stats}]", kind="stats")


def _observed_timeline(names: Sequence[str], scale: Optional[float],
                       emitter: ReportEmitter, trace_out: str) -> None:
    """Run one observed MISP simulation and export its timeline.

    The run is labeled with the report's correlation id, so the
    Perfetto document, the metrics snapshot, and the structured report
    lines all join on one id.
    """
    from repro.obs.perfetto import export_run
    from repro.systems import Session

    workload = names[0]
    session = Session("misp").observe(run_id=emitter.run_id)
    result = session.run(workload, scale=scale if scale is not None else 0.05)
    doc = export_run(result, trace_out)
    emitter.emit(
        f"[trace: {len(doc['traceEvents'])} events from observed "
        f"{workload} run ({result.cycles:,} cycles) -> {trace_out}]",
        kind="artifact", artifact="trace", path=trace_out,
        events=len(doc["traceEvents"]), cycles=result.cycles)


#: the Figure 4 smoke grid the bottleneck analysis sweeps: each
#: workload on the paper's three system shapes
_ANALYZE_SYSTEMS = (("1p", "smp1"), ("misp", "1x8"), ("smp", "smp8"))


def _parse_params(pairs: Optional[Sequence[str]]) -> dict:
    """``--param KEY=VALUE`` pairs as MachineParams field overrides."""
    changes: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            changes[key] = int(value)
        except ValueError:
            changes[key] = float(value)
    return changes


def _bottleneck_analysis(names: Sequence[str], scale: Optional[float],
                         timing: str = "fixed",
                         params: Optional[dict] = None,
                         emitter: Optional[ReportEmitter] = None) -> dict:
    """Run the Figure 4 grid and attribute every run's cycles.

    Each run captures its event-dependency trace when the backend and
    timing model support it (critical path + exact stall attribution);
    otherwise it falls back to an observed run (live stall accounts,
    no critical path) with a one-line notice.  The returned document
    is deterministic -- no run ids, keys sorted -- so two invocations
    at the same scale diff cleanly.
    """
    from repro.obs.critpath import analyze_result
    from repro.systems import Session
    from repro.timing.base import resolve_timing

    runs: dict = {}
    noticed = False
    for workload in names:
        for system, config in _ANALYZE_SYSTEMS:
            session = Session(system, config).timing(timing)
            if params:
                session = session.params(**params)
            backend, _ = session.resolve()
            model = resolve_timing(timing)
            if backend.supports_capture and model.supports_capture:
                session = session.capture()
            else:
                if not noticed and emitter is not None:
                    emitter.emit(
                        f"[analyze: '{timing}' timing does not support "
                        "trace capture; attributing from observed stall "
                        "accounts (no critical path)]", kind="notice",
                        timing=timing)
                noticed = True
                session = session.observe()
            result = session.run(workload, scale=scale)
            # totals/by_class stay exact; only the listed segments are
            # bounded, keeping multi-run snapshot files commit-sized
            doc = analyze_result(result, max_segments=64)
            runs[f"{workload}/{result.system}:{result.config}"] = doc
    return {
        "schema": "repro.analyze/1",
        "timing": timing,
        "scale": scale,
        "params": dict(sorted(params.items())) if params else {},
        "runs": dict(sorted(runs.items())),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default: full size)")
    parser.add_argument("--rt-scale", type=float, default=0.15,
                        help="RayTracer scale for Figure 7")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workloads to run")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker processes (default: cores)")
    parser.add_argument("--serial", action="store_true",
                        help="run everything in-process, serially")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk run cache (incremental re-runs)")
    parser.add_argument("--replay", action="store_true",
                        help="capture once per sweep and replay the "
                             "timing-only points (trace-driven fast path)")
    parser.add_argument("--stream", action="store_true",
                        help="serve Figure 4 through the ExperimentService "
                             "job API (partial results stream as runs "
                             "finish; prints the store hit-rate line)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast end-to-end slice: Figure 4 grid only, "
                             "small default scale (CI's observability run)")
    parser.add_argument("--structured", action="store_true",
                        default=bool(os.environ.get("REPRO_OBS_STRUCTURED")),
                        help="emit JSON-lines records with run correlation "
                             "ids instead of human text "
                             "[REPRO_OBS_STRUCTURED]")
    parser.add_argument("--metrics", action="store_true",
                        default=bool(os.environ.get("REPRO_OBS")),
                        help="print the metrics-registry snapshot after "
                             "the report [REPRO_OBS]")
    parser.add_argument("--metrics-out", default=os.environ.get(
                            "REPRO_OBS_METRICS_OUT"),
                        metavar="FILE",
                        help="write the metrics snapshot as JSON "
                             "[REPRO_OBS_METRICS_OUT]")
    parser.add_argument("--trace-out", default=os.environ.get(
                            "REPRO_OBS_TRACE_OUT"),
                        metavar="FILE",
                        help="run one observed MISP simulation and write "
                             "its Perfetto/Chrome timeline JSON "
                             "[REPRO_OBS_TRACE_OUT]")
    parser.add_argument("--analyze", action="store_true",
                        help="run the Figure 4 grid with trace capture "
                             "and print critical-path / stall-class "
                             "bottleneck attribution per run")
    parser.add_argument("--analyze-out", default=None, metavar="FILE",
                        help="write the bottleneck analysis as JSON "
                             "(deterministic; diffable with --diff)")
    parser.add_argument("--timing", default="fixed",
                        help="timing model for --analyze runs (models "
                             "that cannot capture fall back to observed "
                             "attribution)")
    parser.add_argument("--param", action="append", default=None,
                        metavar="KEY=VALUE",
                        help="MachineParams override for --analyze runs "
                             "(repeatable), e.g. --param mem_cost=600")
    parser.add_argument("--diff", nargs=2, default=None,
                        metavar=("A", "B"),
                        help="attribute the cycle delta between two "
                             "--analyze-out JSON files and exit")
    args = parser.parse_args(argv)
    if args.diff:
        from repro.obs.diff import diff_analyses, format_diff
        path_a, path_b = args.diff
        with open(path_a, encoding="utf-8") as fh:
            doc_a = json.load(fh)
        with open(path_b, encoding="utf-8") as fh:
            doc_b = json.load(fh)
        print(format_diff(diff_analyses(doc_a, doc_b,
                                        label_a=path_a, label_b=path_b)))
        return 0
    from repro.workloads import FIGURE4_ORDER
    names = list(args.workloads or FIGURE4_ORDER)
    scale = args.scale
    if args.smoke and scale is None:
        scale = 0.05

    emitter = ReportEmitter(structured=args.structured)
    service = None
    store = None
    if args.stream:
        import tempfile
        store_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-store-")
        store = store_from_env(store_dir, instance=emitter.run_id)
        service = ExperimentService(store=store, max_workers=args.jobs,
                                    parallel=not args.serial,
                                    replay=args.replay,
                                    instance=emitter.run_id)
    runner = Runner(cache_dir=None if store else args.cache_dir,
                    store=store, max_workers=args.jobs,
                    parallel=not args.serial, replay=args.replay,
                    instance=emitter.run_id)
    full_report(names, scale, args.rt_scale, runner=runner,
                service=service, emitter=emitter, smoke=args.smoke)
    if args.analyze or args.analyze_out:
        from repro.obs.critpath import format_analysis
        emitter.section("Bottleneck attribution (critical path & stalls)")
        analysis = _bottleneck_analysis(
            names, scale, timing=args.timing,
            params=_parse_params(args.param), emitter=emitter)
        for key in analysis["runs"]:
            emitter.emit(format_analysis(analysis["runs"][key]),
                         kind="artifact", artifact="analysis", run_key=key)
        if args.analyze_out:
            with open(args.analyze_out, "w", encoding="utf-8") as fh:
                json.dump(analysis, fh, indent=1, sort_keys=True)
                fh.write("\n")
            emitter.emit(f"[analysis: {len(analysis['runs'])} runs -> "
                         f"{args.analyze_out}]", kind="artifact",
                         artifact="analysis", path=args.analyze_out,
                         runs=len(analysis["runs"]))
    if args.trace_out:
        _observed_timeline(names, scale, emitter, args.trace_out)
    if args.metrics or args.metrics_out:
        from repro.obs.metrics import get_registry
        snapshot = get_registry().snapshot()
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump({"run": emitter.run_id, "metrics": snapshot},
                          fh, indent=1, sort_keys=True)
                fh.write("\n")
            emitter.emit(f"[metrics: {len(snapshot)} families -> "
                         f"{args.metrics_out}]", kind="artifact",
                         artifact="metrics", path=args.metrics_out,
                         families=len(snapshot))
        if args.metrics:
            emitter.emit(get_registry().render_prometheus(),
                         kind="metrics", families=len(snapshot))
    if service is not None:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
