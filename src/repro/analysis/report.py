"""One-stop evaluation report: regenerate every table and figure.

``python -m repro.analysis.report`` runs the full Section 5 evaluation
(Figure 4, Table 1, Figure 5, Figure 6, Figure 7, Table 2) and prints
the paper-shaped artifacts.  Individual pieces can be run through the
benchmarks/ harness instead; this module is the human-readable driver.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis.figure4 import format_figure4, run_figure4
from repro.analysis.figure5 import format_figure5, sensitivity_from_run
from repro.analysis.figure7 import FIGURE7_SERIES, format_figure7, run_figure7
from repro.analysis.table1 import format_table1, measured_row
from repro.analysis.table2 import (
    format_table2, ode_restructuring_speedup, run_table2,
)
from repro.core.mp import FIGURE6_CONFIGS, config_name, parse_config


def figure6_text() -> str:
    """Figure 6: the MISP MP configurations, as partition listings."""
    lines = ["Figure 6 -- MISP MP configurations (8 sequencers total):"]
    for name in FIGURE6_CONFIGS:
        counts = parse_config(name)
        parts = " | ".join(
            "OMS" + (f"+{c}AMS" if c else "") for c in counts)
        lines.append(f"  {config_name(counts):7s} -> {parts}")
    return "\n".join(lines)


def full_report(workloads: Optional[Sequence[str]] = None,
                scale: Optional[float] = None,
                rt_scale: float = 0.15,
                stream=sys.stdout) -> None:
    from repro.workloads import FIGURE4_ORDER
    names = list(workloads or FIGURE4_ORDER)

    def emit(text: str) -> None:
        print(text, file=stream)
        stream.flush()

    t0 = time.time()
    emit("=" * 70)
    emit("MISP reproduction -- full evaluation report")
    emit("=" * 70)

    emit("\n--- Figure 4: speedup vs 1P (MISP 1x8 vs SMP 8-way) ---")
    fig4 = run_figure4(names, scale=scale)
    emit(format_figure4(fig4))

    emit("\n--- Table 1: serializing events (MISP 1x8) ---")
    rows = [measured_row(fig4.misp_runs[name]) for name in names]
    emit(format_table1(rows))

    emit("\n--- Figure 5: sensitivity to signal cost ---")
    sens = [sensitivity_from_run(fig4.misp_runs[name]) for name in names]
    emit(format_figure5(sens))

    emit("\n--- " + figure6_text())

    emit("\n--- Figure 7: MP throughput under multiprogramming ---")
    fig7 = run_figure7(rt_scale=rt_scale)
    emit(format_figure7(fig7))

    emit("\n--- Table 2: porting legacy applications ---")
    emit(format_table2(run_table2()))
    emit(f"ODE restructuring speedup: {ode_restructuring_speedup():.2f}x")

    emit(f"\n[report completed in {time.time() - t0:.1f}s]")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default: full size)")
    parser.add_argument("--rt-scale", type=float, default=0.15,
                        help="RayTracer scale for Figure 7")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workloads to run")
    args = parser.parse_args(argv)
    full_report(args.workloads, args.scale, args.rt_scale)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
