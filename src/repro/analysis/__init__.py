"""Evaluation harness: regenerates every table and figure of Section 5.

Every driver declares its run grid as a
:class:`repro.experiments.ExperimentSpec` and consumes plain-data
:class:`repro.experiments.RunSummary` values from a
:class:`repro.experiments.Runner` -- by default the process-wide
shared runner, so runs common to several artifacts (the MISP runs
behind Figure 4, Figure 5, and Table 1) simulate exactly once.
"""

from repro.analysis.figure4 import (
    Figure4Result, SpeedupRow, figure4_experiment, format_figure4,
    run_figure4, run_figure4_streaming,
)
from repro.analysis.figure5 import (
    FIGURE5_SIGNAL_COSTS, SensitivityRow, figure5_experiment,
    format_figure5, run_figure5, sensitivity_from_run,
)
from repro.analysis.figure7 import (
    FIGURE7_SERIES, Figure7Result, figure7_experiment, format_figure7,
    run_figure7,
)
from repro.analysis.figure_mem import (
    FIGURE_MEM_COSTS, MemSensitivityRow, figure_mem_experiment,
    format_figure_mem, run_figure_mem,
)
from repro.analysis.figure_pipeline import (
    FIGURE_PIPELINE_FU_COUNTS, PipelineRow, figure_pipeline_experiment,
    format_figure_pipeline, run_figure_pipeline,
)
from repro.analysis.table1 import (
    PAPER_TABLE1, EventRow, format_table1, measured_row, paper_row_scaled,
    run_table1, table1_experiment,
)
from repro.analysis.table2 import (
    PortRow, format_table2, ode_restructuring_speedup, run_table2,
    table2_experiment,
)

__all__ = [
    "Figure4Result", "SpeedupRow", "figure4_experiment", "format_figure4",
    "run_figure4", "run_figure4_streaming",
    "FIGURE5_SIGNAL_COSTS", "SensitivityRow",
    "figure5_experiment", "format_figure5", "run_figure5",
    "sensitivity_from_run", "FIGURE7_SERIES", "Figure7Result",
    "figure7_experiment", "format_figure7", "run_figure7",
    "FIGURE_MEM_COSTS", "MemSensitivityRow", "figure_mem_experiment",
    "format_figure_mem", "run_figure_mem", "FIGURE_PIPELINE_FU_COUNTS",
    "PipelineRow", "figure_pipeline_experiment", "format_figure_pipeline",
    "run_figure_pipeline", "PAPER_TABLE1",
    "EventRow", "format_table1", "measured_row", "paper_row_scaled",
    "run_table1", "table1_experiment", "PortRow", "format_table2",
    "ode_restructuring_speedup", "run_table2", "table2_experiment",
]
