"""Evaluation harness: regenerates every table and figure of Section 5."""

from repro.analysis.figure4 import (
    Figure4Result, SpeedupRow, format_figure4, run_figure4,
)
from repro.analysis.figure5 import (
    FIGURE5_SIGNAL_COSTS, SensitivityRow, format_figure5,
    sensitivity_from_run,
)
from repro.analysis.figure7 import (
    FIGURE7_SERIES, Figure7Result, format_figure7, run_figure7,
)
from repro.analysis.table1 import (
    PAPER_TABLE1, EventRow, format_table1, measured_row, paper_row_scaled,
)
from repro.analysis.table2 import (
    PortRow, format_table2, ode_restructuring_speedup, run_table2,
)

__all__ = [
    "Figure4Result", "SpeedupRow", "format_figure4", "run_figure4",
    "FIGURE5_SIGNAL_COSTS", "SensitivityRow", "format_figure5",
    "sensitivity_from_run", "FIGURE7_SERIES", "Figure7Result",
    "format_figure7", "run_figure7", "PAPER_TABLE1", "EventRow",
    "format_table1", "measured_row", "paper_row_scaled", "PortRow",
    "format_table2", "ode_restructuring_speedup", "run_table2",
]
