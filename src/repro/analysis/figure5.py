"""Figure 5: sensitivity to the inter-sequencer signal cost.

Section 5.3's method, reproduced exactly: take each application's
serializing-event counts, split them into OMS-originated and
AMS-originated populations, and apply the Section 5.1 equations to
compute the overhead each signal cost adds over an ideal (zero-cost
signaling) implementation.  The paper evaluates signal ∈ {500, 1000,
5000} cycles and finds at most 0.65% overhead (kmeans), concluding
that "throughput performance of the applications is insensitive to
the overhead of the inter-sequencer signaling".

One caveat documented in EXPERIMENTS.md: our simulated runs are
time-compressed (a 2M-cycle timer quantum against the testbed's tens
of millions), so events are denser per cycle and the *absolute*
percentages are correspondingly larger.  The module therefore also
reports a decompressed estimate using the paper's quantum for
apples-to-apples magnitudes; orderings and linearity in the signal
cost are invariant either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.analysis.figure4 import DEFAULT_AMS_COUNT
from repro.core.overhead import SignalSensitivity
from repro.experiments import (
    ExperimentSpec, Runner, RunSummary, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.workloads.runner import RunResult

#: signal costs evaluated in Figure 5 (cycles)
FIGURE5_SIGNAL_COSTS = (500, 1000, 5000)

#: approximate timer-tick period of the paper's 3.0 GHz Windows testbed
PAPER_TICK_CYCLES = 45_000_000


@dataclass(frozen=True)
class SensitivityRow:
    """One application's Figure 5 series."""

    workload: str
    oms_events: int
    ams_events: int
    ideal_cycles: int
    #: overhead fraction per signal cost, in FIGURE5_SIGNAL_COSTS order
    overheads: tuple[float, ...]
    #: the same, rescaled to the paper's event density
    overheads_decompressed: tuple[float, ...]


def sensitivity_from_run(result: Union[RunResult, RunSummary],
                         params: MachineParams = DEFAULT_PARAMS,
                         signal_costs: Sequence[int] = FIGURE5_SIGNAL_COSTS,
                         ) -> SensitivityRow:
    """Apply the Section 5.1 model to one MISP run's event counts.

    Accepts either a live :class:`RunResult` or a plain-data
    :class:`RunSummary` from the experiment Runner.
    """
    events = result.serializing_events()
    oms_events = (events["oms_syscall"] + events["oms_pf"]
                  + events["oms_timer"] + events["oms_interrupt"])
    ams_events = events["ams_syscall"] + events["ams_pf"]
    # ideal cycles: remove the signal-dependent part of the measured run
    measured = result.cycles
    model = SignalSensitivity(oms_events, ams_events, ideal_cycles=1)
    ideal = max(1, measured - model.added_cycles(params.signal_cost))
    model = SignalSensitivity(oms_events, ams_events, ideal_cycles=ideal)
    overheads = tuple(model.overhead_fraction(s) for s in signal_costs)
    # decompress: the paper's tick period vs ours stretches runtime
    # (and therefore shrinks event density) by the quantum ratio for
    # timer-driven events; apply it to the whole population as a
    # conservative magnitude correction.
    stretch = PAPER_TICK_CYCLES / params.timer_quantum
    decompressed = SignalSensitivity(oms_events, ams_events,
                                     ideal_cycles=int(ideal * stretch))
    overheads_dec = tuple(decompressed.overhead_fraction(s)
                          for s in signal_costs)
    return SensitivityRow(result.workload, oms_events, ams_events, ideal,
                          overheads, overheads_dec)


def figure5_experiment(workload_names: Sequence[str],
                       ams_count: int = DEFAULT_AMS_COUNT,
                       params: MachineParams = DEFAULT_PARAMS,
                       scale: Optional[float] = None) -> ExperimentSpec:
    """Declare the Figure 5 grid: one MISP run per workload (the same
    runs Figure 4 and Table 1 consume, so a shared Runner deduplicates
    them)."""
    from repro.analysis.figure4 import figure4_experiment
    grid = figure4_experiment(workload_names, ams_count, params, scale)
    return ExperimentSpec(
        "figure5", tuple(s for s in grid.runs if s.system == "misp"))


def run_figure5(workload_names: Sequence[str],
                ams_count: int = DEFAULT_AMS_COUNT,
                params: MachineParams = DEFAULT_PARAMS,
                scale: Optional[float] = None,
                signal_costs: Sequence[int] = FIGURE5_SIGNAL_COSTS,
                runner: Optional[Runner] = None) -> list[SensitivityRow]:
    """Run the MISP grid and model each workload's signal sensitivity."""
    runner = runner or default_runner()
    exp = figure5_experiment(workload_names, ams_count, params, scale)
    summaries = runner.run_many(exp.runs)
    return [sensitivity_from_run(s, params, signal_costs)
            for s in summaries]


def format_figure5(rows: Sequence[SensitivityRow],
                   signal_costs: Sequence[int] = FIGURE5_SIGNAL_COSTS) -> str:
    header = (f"{'application':18s} "
              + " ".join(f"{s:>7d}" for s in signal_costs)
              + "   (decompressed: "
              + " ".join(str(s) for s in signal_costs) + ")")
    lines = [header, "-" * len(header)]
    for row in rows:
        measured = " ".join(f"{o * 100:6.2f}%" for o in row.overheads)
        paperlike = " ".join(f"{o * 100:6.3f}%"
                             for o in row.overheads_decompressed)
        lines.append(f"{row.workload:18s} {measured}   [{paperlike}]")
    worst = max(rows, key=lambda r: r.overheads[-1])
    mean = sum(r.overheads[-1] for r in rows) / len(rows)
    lines.append(f"signal={signal_costs[-1]}: mean {mean * 100:.2f}%, "
                 f"worst {worst.workload} {worst.overheads[-1] * 100:.2f}% "
                 "(paper: mean 0.15%, worst Kmeans 0.65%)")
    return "\n".join(lines)
