"""Figure M: sensitivity to the memory hierarchy (a new sweep axis).

The paper fixes the memory system and sweeps the signal cost
(Figure 5); with the hierarchy modelled in :mod:`repro.mem.hierarchy`
the dual experiment becomes possible: hold the MISP parameters fixed
and sweep the *miss penalty* (``MachineParams.mem_cost``), comparing
the three Figure 4 systems at every point.  Because MISP shreds share
their processor's L2 while SMP workers run behind private L2s, the
sweep separates the two effects the hierarchy models:

* both parallel speedups stay well above 1 but *decline* monotonically
  as memory slows: the 1P baseline runs the whole gang through one L1
  (its working set stays warm), while eight sequencers split the
  working set and re-miss on migrated shreds, so a larger miss
  penalty taxes the parallel systems relatively more;
* the MISP-vs-SMP gap tracks the coherence/sharing difference the
  flat-memory model could not express: MISP's lock and data ping-pong
  refills from the shared L2, SMP's goes to memory through cross-L2
  invalidations.

Declared as a ``mem_cost x {1p, misp, smp}`` grid of RunSpecs, so the
Runner deduplicates, parallelizes, and caches it like every other
figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.figure4 import DEFAULT_AMS_COUNT, _systems
from repro.experiments import (
    ExperimentSpec, MemorySummary, Runner, RunSpec, default_runner,
)
from repro.params import DEFAULT_PARAMS, MachineParams

#: miss penalties (cycles) evaluated by the sweep; the default
#: ``mem_cost`` (60) sits at the low end, 960 models a deep
#: memory-bound regime
FIGURE_MEM_COSTS = (15, 60, 240, 960)

#: the workload the sweep defaults to (most memory-intensive scaling)
DEFAULT_WORKLOAD = "RayTracer"


@dataclass(frozen=True)
class MemSensitivityRow:
    """One ``mem_cost`` point: the three systems plus MISP/SMP cache
    behaviour."""

    workload: str
    mem_cost: int
    cycles_1p: int
    cycles_misp: int
    cycles_smp: int
    misp_mem: MemorySummary
    smp_mem: MemorySummary

    @property
    def misp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_misp

    @property
    def smp_speedup(self) -> float:
        return self.cycles_1p / self.cycles_smp

    @property
    def misp_vs_smp(self) -> float:
        """Relative MISP slowdown vs SMP (positive = MISP slower)."""
        return self.cycles_misp / self.cycles_smp - 1.0


def figure_mem_experiment(workload: str = DEFAULT_WORKLOAD,
                          mem_costs: Sequence[int] = FIGURE_MEM_COSTS,
                          ams_count: int = DEFAULT_AMS_COUNT,
                          params: MachineParams = DEFAULT_PARAMS,
                          scale: Optional[float] = None) -> ExperimentSpec:
    """Declare the sweep grid: ``mem_costs x {1p, misp, smp}``."""
    runs = []
    for mem_cost in mem_costs:
        swept = params.with_changes(mem_cost=mem_cost)
        for system, config in _systems(ams_count):
            runs.append(RunSpec(workload, system, config, scale=scale,
                                params=swept))
    return ExperimentSpec("figure_mem", tuple(runs))


def run_figure_mem(workload: str = DEFAULT_WORKLOAD,
                   mem_costs: Sequence[int] = FIGURE_MEM_COSTS,
                   ams_count: int = DEFAULT_AMS_COUNT,
                   params: MachineParams = DEFAULT_PARAMS,
                   scale: Optional[float] = None,
                   runner: Optional[Runner] = None
                   ) -> list[MemSensitivityRow]:
    """Execute the sweep and collect one row per miss penalty."""
    runner = runner or default_runner()
    result = runner.run_experiment(
        figure_mem_experiment(workload, mem_costs, ams_count, params, scale))
    spec_1p, spec_misp, spec_smp = _systems(ams_count)
    rows: list[MemSensitivityRow] = []
    for mem_cost in mem_costs:
        swept = params.with_changes(mem_cost=mem_cost)
        per_system = {
            system: result[RunSpec(workload, system, config, scale=scale,
                                   params=swept)]
            for system, config in (spec_1p, spec_misp, spec_smp)
        }
        rows.append(MemSensitivityRow(
            workload, mem_cost,
            per_system["1p"].cycles,
            per_system["misp"].cycles,
            per_system["smp"].cycles,
            per_system["misp"].mem,
            per_system["smp"].mem))
    return rows


def format_figure_mem(rows: Sequence[MemSensitivityRow]) -> str:
    """Render the sweep as a table of speedups and cache behaviour."""
    if not rows:
        return "figure_mem: no rows"
    header = (f"{rows[0].workload}: {'mem_cost':>8s} {'MISP':>6s} "
              f"{'SMP':>6s} {'Δ(M/S)':>8s}   "
              f"{'L2 hit% M/S':>12s} {'L1 inval M/S':>14s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{'':{len(rows[0].workload) + 1}s} {row.mem_cost:>8d} "
            f"{row.misp_speedup:6.2f} {row.smp_speedup:6.2f} "
            f"{row.misp_vs_smp * 100:+7.2f}%   "
            f"{row.misp_mem.l2_hit_rate * 100:5.1f}/"
            f"{row.smp_mem.l2_hit_rate * 100:<5.1f} "
            f"{row.misp_mem.l1_invalidations:>6d}/"
            f"{row.smp_mem.l1_invalidations:<6d}")
    first, last = rows[0], rows[-1]
    lines.append(
        f"MISP speedup {first.misp_speedup:.2f} -> {last.misp_speedup:.2f} "
        f"as mem_cost {first.mem_cost} -> {last.mem_cost} "
        f"(shared-L2 hierarchy; SMP pays "
        f"{last.smp_mem.l2_invalidations} cross-L2 invalidations)")
    return "\n".join(lines)
