"""repro: a reproduction of "Multiple Instruction Stream Processor"
(Hankins et al., ISCA 2006).

The package implements the MISP architecture -- sequencers as
user-visible architectural resources, the SIGNAL instruction,
YIELD-CONDITIONAL asynchronous control transfer, proxy execution, and
ring-transition serialization -- on a discrete-event machine simulator
with a model OS kernel, plus the ShredLib user-level threading runtime
and the paper's full Section 5 evaluation.

Quick start::

    from repro.core import build_machine
    from repro.workloads import REGISTRY, run_misp, run_1p

    workload = REGISTRY.get("RayTracer")
    base = run_1p(workload)
    misp = run_misp(workload, ams_count=7)
    print("speedup:", base.cycles / misp.cycles)

Whole experiment grids (with shared-run deduplication, parallel
execution, and on-disk caching) go through :mod:`repro.experiments`::

    from repro.experiments import ExperimentSpec, Runner

    exp = ExperimentSpec.grid("demo", ["RayTracer"], scale=0.1)
    for summary in Runner().run_experiment(exp).summaries():
        print(summary.system, summary.cycles)
"""

from repro.errors import ReproError
from repro.params import DEFAULT_PARAMS, PAGE_SIZE, MachineParams

__version__ = "1.0.0"

__all__ = ["ReproError", "DEFAULT_PARAMS", "PAGE_SIZE", "MachineParams",
           "__version__"]
