"""repro: a reproduction of "Multiple Instruction Stream Processor"
(Hankins et al., ISCA 2006).

The package implements the MISP architecture -- sequencers as
user-visible architectural resources, the SIGNAL instruction,
YIELD-CONDITIONAL asynchronous control transfer, proxy execution, and
ring-transition serialization -- on a discrete-event machine simulator
with a model OS kernel, plus the ShredLib user-level threading runtime
and the paper's full Section 5 evaluation.

Quick start::

    from repro.core import build_machine
    from repro.workloads import REGISTRY, run_misp, run_1p

    workload = REGISTRY.get("RayTracer")
    base = run_1p(workload)
    misp = run_misp(workload, ams_count=7)
    print("speedup:", base.cycles / misp.cycles)

Systems (MISP, SMP, 1P, multiprogramming, hybrid partitions, plus any
backend you register) are composed through :mod:`repro.systems`::

    from repro.systems import Session

    hybrid = Session("hybrid", "1x4+1x2").run("RayTracer", scale=0.1)
    print("hybrid:", hybrid.cycles)

Whole experiment grids (with shared-run deduplication, parallel
execution, and on-disk caching) go through :mod:`repro.experiments`::

    from repro.experiments import ExperimentSpec, Runner

    exp = ExperimentSpec.grid("demo", ["RayTracer"], scale=0.1)
    for summary in Runner().run_experiment(exp).summaries():
        print(summary.system, summary.cycles)
"""

from repro.errors import ReproError
from repro.params import DEFAULT_PARAMS, PAGE_SIZE, MachineParams

__version__ = "1.1.0"

__all__ = ["ReproError", "DEFAULT_PARAMS", "PAGE_SIZE", "MachineParams",
           "Session", "SYSTEM_REGISTRY", "SystemBackend", "get_system",
           "register_system", "TIMING_REGISTRY", "TimingModel",
           "get_timing", "register_timing", "__version__"]

#: names resolved lazily so ``import repro`` stays dependency-light
_LAZY_SYSTEMS = {"Session", "SYSTEM_REGISTRY", "SystemBackend",
                 "get_system", "register_system"}
_LAZY_TIMING = {"TIMING_REGISTRY", "TimingModel", "get_timing",
                "register_timing"}


def __getattr__(name: str):
    if name in _LAZY_SYSTEMS:
        import repro.systems as systems
        return getattr(systems, name)
    if name in _LAZY_TIMING:
        import repro.timing as timing
        return getattr(timing, name)
    raise AttributeError(f"module 'repro' has no attribute '{name}'")
