"""Event tracing, modelled on the prototype firmware's logging.

Section 4.1 of the paper describes two logging levels provided by the
custom firmware:

* **coarse-grained** -- total counts for the number and cause of ring
  transitions on each sequencer; and
* **fine-grained** -- time-stamped records with the start and end time
  of each event.

:class:`TraceLog` provides both.  The coarse counters are what the
Table 1 reproduction reads; the fine-grained records support the
overhead attribution of Figure 5 and general debugging.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class EventKind(enum.Enum):
    """Categories of architecturally salient events.

    The first six match the columns of the paper's Table 1; the rest
    support finer attribution.
    """

    SYSCALL = "syscall"                  # trap to the OS (Table 1 "SysCall")
    PAGE_FAULT = "page_fault"            # Table 1 "PF"
    TIMER = "timer"                      # Table 1 "Timer"
    INTERRUPT = "interrupt"              # Table 1 "Interrupt" (uncategorized)
    SIGNAL_SENT = "signal_sent"          # SIGNAL instruction executed
    SIGNAL_RECEIVED = "signal_received"  # ingress signal accepted

    PROXY_REQUEST = "proxy_request"      # AMS relayed a fault to its OMS
    PROXY_BEGIN = "proxy_begin"          # OMS began impersonating an AMS
    PROXY_END = "proxy_end"              # OMS finished proxy execution
    RING_ENTER = "ring_enter"            # Ring 3 -> Ring 0 on an OMS/CPU
    RING_EXIT = "ring_exit"              # Ring 0 -> Ring 3
    AMS_SUSPEND = "ams_suspend"          # AMS paused for OMS Ring-0 entry
    AMS_RESUME = "ams_resume"            # AMS resumed after Ring-0 exit
    CONTEXT_SWITCH = "context_switch"    # OS thread switch on an OMS/CPU
    TLB_SHOOTDOWN = "tlb_shootdown"      # IPI-driven TLB invalidation
    SHRED_START = "shred_start"          # a shred began running
    SHRED_END = "shred_end"              # a shred finished
    YIELD_EVENT = "yield_event"          # asynchronous control transfer


@dataclass(frozen=True)
class TraceRecord:
    """One fine-grained, time-stamped log record."""

    start: int
    end: int
    sequencer: int
    kind: EventKind
    detail: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class TraceLog:
    """Coarse counters plus an optional fine-grained record list.

    Fine-grained recording can be disabled (``record_fine=False``) for
    long benchmark runs; the coarse counters are always maintained
    because the evaluation harness depends on them.
    """

    record_fine: bool = True
    _counts: Counter = field(default_factory=Counter)
    _records: list[TraceRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, sequencer: int, kind: EventKind, n: int = 1) -> None:
        """Bump the coarse counter for (sequencer, kind)."""
        self._counts[(sequencer, kind)] += n

    def record(self, start: int, end: int, sequencer: int,
               kind: EventKind, detail: str = "") -> None:
        """Record a fine-grained interval and bump the coarse counter."""
        self.count(sequencer, kind)
        if self.record_fine:
            self._records.append(TraceRecord(start, end, sequencer, kind, detail))

    def instant(self, time: int, sequencer: int, kind: EventKind,
                detail: str = "") -> None:
        """Record a point event (zero-duration interval).

        With ``record_fine`` off this is exactly :meth:`count` plus one
        branch -- cheap enough for the machine's serializing-event
        paths to call unconditionally, which is what makes a timeline
        export possible the moment observation turns fine records on.
        """
        self.count(sequencer, kind)
        if self.record_fine:
            self._records.append(TraceRecord(time, time, sequencer, kind, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total(self, kind: EventKind,
              sequencers: Optional[Iterable[int]] = None) -> int:
        """Total count of ``kind`` across ``sequencers`` (default: all)."""
        if sequencers is None:
            return sum(c for (_, k), c in self._counts.items() if k == kind)
        wanted = set(sequencers)
        return sum(c for (s, k), c in self._counts.items()
                   if k == kind and s in wanted)

    def on_sequencer(self, sequencer: int) -> Counter:
        """Counter of kinds observed on one sequencer."""
        out: Counter = Counter()
        for (s, k), c in self._counts.items():
            if s == sequencer:
                out[k] += c
        return out

    def records(self, kind: Optional[EventKind] = None,
                sequencer: Optional[int] = None) -> Iterator[TraceRecord]:
        """Iterate fine-grained records, optionally filtered."""
        for rec in self._records:
            if kind is not None and rec.kind is not kind:
                continue
            if sequencer is not None and rec.sequencer != sequencer:
                continue
            yield rec

    def time_in(self, kind: EventKind,
                sequencer: Optional[int] = None) -> int:
        """Total cycles spent in fine-grained intervals of ``kind``."""
        return sum(r.duration for r in self.records(kind, sequencer))

    def clear(self) -> None:
        self._counts.clear()
        self._records.clear()

    def summary(self) -> dict[str, int]:
        """Aggregate counts keyed by kind name (all sequencers)."""
        out: dict[str, int] = {}
        for (_, kind), c in sorted(self._counts.items(),
                                   key=lambda kv: kv[0][1].value):
            out[kind.value] = out.get(kind.value, 0) + c
        return out
