"""Discrete-event simulation engine.

The machine models in :mod:`repro.core` and :mod:`repro.smp` are built
on this engine.  It is a classic calendar queue: callbacks are
scheduled at absolute cycle times and executed in time order, with a
monotonically increasing sequence number breaking ties so execution is
fully deterministic.

Heap entries are ``(time, seqno, event)`` tuples rather than the
:class:`Event` objects themselves, so every sift comparison inside
``heapq`` is a C-level tuple compare instead of a Python-level
``Event.__lt__`` call -- the engine's hottest path.

The engine knows nothing about sequencers, kernels, or memory -- those
layers schedule events against it.  It does expose one observation
hook: a *recorder* (see :mod:`repro.sim.captrace`) notified of every
``schedule`` with the identity of the event being executed at that
moment, which is how trace capture reconstructs the run's event
dependency graph without touching the machine's control flow.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created through :meth:`Engine.schedule` and may be
    cancelled with :meth:`Engine.cancel`.  A cancelled event stays in
    the heap but is skipped when popped (lazy deletion).
    """

    __slots__ = ("time", "seqno", "callback", "args", "cancelled",
                 "finished", "engine")

    def __init__(self, time: int, seqno: int,
                 callback: Callable[..., None], args: tuple,
                 engine: Optional["Engine"] = None) -> None:
        self.time = time
        self.seqno = seqno
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.finished = False
        self.engine = engine

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seqno) < (other.time, other.seqno)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} #{self.seqno} {name}{state}>"


class Engine:
    """Deterministic discrete-event simulator with an integer clock."""

    def __init__(self) -> None:
        self._now = 0
        #: heap of (time, seqno, Event) -- tuple keys keep heapq
        #: comparisons in C
        self._heap: list[tuple[int, int, Event]] = []
        self._next_seqno = 0
        self._running = False
        self._executed = 0
        #: cancelled events still sitting in the heap (lazy deletion),
        #: maintained so pending() is O(1) instead of a heap scan
        self._cancelled_queued = 0
        #: trace recorder (repro.sim.captrace.TraceCapture), if any
        self._recorder: Optional[Any] = None
        #: seqno of the event currently executing (-1 outside run())
        self._current_seqno = -1

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for instrumentation)."""
        return self._executed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled (seqnos are dense from 0)."""
        return self._next_seqno

    @property
    def current_seqno(self) -> int:
        """Seqno of the executing event (-1 when not inside a callback)."""
        return self._current_seqno

    def set_recorder(self, recorder: Optional[Any]) -> None:
        """Attach (or with None, detach) a schedule recorder."""
        self._recorder = recorder

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current cycle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seqno = self._next_seqno
        self._next_seqno = seqno + 1
        event = Event(self._now + delay, seqno, callback, args, engine=self)
        heapq.heappush(self._heap, (event.time, seqno, event))
        recorder = self._recorder
        if recorder is not None:
            recorder.on_schedule(seqno, self._current_seqno, self._now, delay)
        return event

    def schedule_at(self, time: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute cycle time."""
        return self.schedule(time - self._now, callback, *args)

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (no-op if it already ran).

        Cancellation is lazy, but when cancelled events outnumber live
        ones the heap is compacted so a cancel-heavy workload cannot
        keep dead events resident (amortized O(1): a rebuild resets
        the count, so the next rebuild needs as many fresh cancels as
        there are live events).
        """
        if event.cancelled or event.finished:
            return
        event.cancelled = True
        engine = event.engine
        if engine is not None:
            engine._cancelled_queued += 1
            if engine._cancelled_queued * 2 > len(engine._heap):
                engine._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events (order preserved
        by the (time, seqno) ordering invariant).  In place, because
        run() holds a local alias to the heap list."""
        self._heap[:] = [entry for entry in self._heap
                         if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_queued = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` callbacks execute.

        Returns the simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        executed_this_run = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                time, seqno, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    self._cancelled_queued -= 1
                    continue
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and executed_this_run >= max_events:
                    break
                pop(heap)
                event.finished = True
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: event at {time}, now {self._now}")
                self._now = time
                self._current_seqno = seqno
                event.callback(*event.args)
                self._executed += 1
                executed_this_run += 1
        finally:
            self._running = False
            self._current_seqno = -1
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued, in O(1)."""
        return len(self._heap) - self._cancelled_queued

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self._now} pending={self.pending()}>"
