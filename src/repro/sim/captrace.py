"""Trace capture and replay: the trace-driven fast path.

The paper's figures are parameter sweeps -- SIGNAL cost, memory cost
-- over the *same* workload executions.  Execution-driven simulation
re-interprets the mini-ISA and re-walks every cache line at every
sweep point, even though only the *timing* parameters changed.  This
module implements the classic execution-driven/trace-driven split:

* :class:`TraceCapture` hangs off the engine's recorder hook and
  records, for every scheduled event, its parent (the event executing
  when it was scheduled), its delay, and -- via annotations the
  machine attaches on the hot paths -- how that delay decomposes into
  :class:`~repro.params.MachineParams` coefficients and memory-
  hierarchy accesses;
* :class:`CapturedTrace` is the resulting plain-data artifact
  (picklable, so worker processes can ship it);
* :class:`ReplayMachine` re-charges a captured trace under new
  parameters: it walks the event-dependency graph once, re-prices
  each delay (``base + sum(param * mult // div) + hierarchy cost``),
  and re-drives the recorded access stream through a freshly built
  :class:`~repro.mem.hierarchy.MemoryHierarchy` -- no interpreter, no
  shredlib, no kernel.

Replay is *exact* when parameters are unchanged (asserted in
``tests/test_replay.py``) and is a faithful trace-driven
approximation for sweeps over :data:`REPLAY_SAFE_FIELDS` -- the
timing-only axes, where the recorded event order is held fixed.
Parameters that change control flow (``timer_quantum``,
``tlb_entries``, scheduling policy, workload scale, ...) invalidate
the trace; :meth:`ReplayMachine.run` refuses them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunSpec
    from repro.experiments.summary import RunSummary
    from repro.sim.engine import Engine

#: MachineParams fields a captured trace may be re-priced across.
#: These affect only *when* recorded events complete, never *which*
#: events occur: costs charged per event (re-priced through recorded
#: coefficients) and cache geometry (re-priced by re-driving the
#: recorded access stream).  Everything else -- quanta and interrupt
#: periods, TLB shape, frame counts, costs baked into generated
#: Compute ops (queue/shred-switch/idle-poll/ISA costs) -- steers
#: control flow, so sweeping it demands a fresh execution-driven run.
#: The scoreboard pipeline knobs (``sb_*``) are likewise excluded:
#: capture itself requires the constant-cost ``fixed`` timing model
#: (under which they are inert), so replaying across them would
#: silently answer a question the trace never asked.
REPLAY_SAFE_FIELDS = frozenset({
    "signal_cost",
    "syscall_service_cost",
    "page_fault_service_cost",
    "timer_service_cost",
    "interrupt_service_cost",
    "context_switch_cost",
    "sequencer_state_save_cost",
    "page_walk_cost",
    "atomic_op_cost",
    "l1_hit_cost",
    "l2_hit_cost",
    "mem_cost",
    "l1_size",
    "l1_assoc",
    "l2_size",
    "l2_assoc",
    "cache_line_size",
})


def replayable_changes(old: MachineParams, new: MachineParams) -> set[str]:
    """Fields changed between two parameter sets, if all are replay-safe.

    Raises :class:`ConfigurationError` when any changed field is not a
    timing-only axis.
    """
    changed = {f.name for f in dataclasses.fields(MachineParams)
               if getattr(old, f.name) != getattr(new, f.name)}
    bad = changed - REPLAY_SAFE_FIELDS
    if bad:
        raise ConfigurationError(
            f"cannot replay across non-timing parameters {sorted(bad)}: "
            "these change the event structure; run execution-driven")
    return changed


class TraceCapture:
    """Recorder attached to an :class:`~repro.sim.engine.Engine`.

    The engine notifies it of every ``schedule`` (building the event
    dependency graph); the machine annotates the event it is about to
    schedule with the parameter coefficients and hierarchy accesses
    that went into its delay, and drops *marks* (process exit, AMS
    suspend/resume, proxy raise/done) used to rebuild the derived
    statistics at replay time.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: seqno -> scheduling event's seqno (-1 = scheduled outside run())
        self.parents: list[int] = []
        #: seqno -> recorded delay in cycles
        self.delays: list[int] = []
        #: schedule-time clock for parentless events
        self.root_now: dict[int, int] = {}
        #: seqno -> ((param_field, mult, div), ...) cost coefficients
        self.coefs: dict[int, tuple] = {}
        #: seqno -> (recorded_hierarchy_cost, ((seq_id, paddr, span,
        #: write), ...)) in intra-event access order
        self.accesses: dict[int, tuple] = {}
        #: seqno -> seq_id whose busy_cycles this event's delay charged
        self.busy_seq: dict[int, int] = {}
        #: seqno -> seq_id the delay is *attributed* to without being
        #: charged to its busy_cycles (ring-transition stages, proxy
        #: egress, context switches); analysis-only -- replay derives
        #: utilization from busy_seq alone
        self.owner_seq: dict[int, int] = {}
        #: (kind, at_seqno, at_now, arg) in chronological order
        self.marks: list[tuple[str, int, int, Any]] = []
        self._next_proxy_id = 0
        # pending annotations, attached to the next scheduled event
        self._pend_coefs: list[tuple[str, int, int]] = []
        self._pend_accesses: list[tuple[int, int, int, bool]] = []
        self._pend_cost = 0
        self._pend_busy: Optional[int] = None
        self._pend_owner: Optional[int] = None

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------
    def on_schedule(self, seqno: int, parent: int, now: int,
                    delay: int) -> None:
        if seqno != len(self.parents):
            raise SimulationError(
                "trace capture attached mid-run: event seqnos must be "
                "dense from 0 (enable capture before staging)")
        self.parents.append(parent)
        self.delays.append(delay)
        if parent < 0:
            self.root_now[seqno] = now
        if self._pend_coefs:
            self.coefs[seqno] = tuple(self._pend_coefs)
            self._pend_coefs = []
        if self._pend_accesses:
            self.accesses[seqno] = (self._pend_cost,
                                    tuple(self._pend_accesses))
            self._pend_accesses = []
            self._pend_cost = 0
        if self._pend_busy is not None:
            self.busy_seq[seqno] = self._pend_busy
            self._pend_busy = None
        if self._pend_owner is not None:
            self.owner_seq[seqno] = self._pend_owner
            self._pend_owner = None

    # ------------------------------------------------------------------
    # Machine-side annotations (always immediately before the one
    # engine.schedule call whose delay they describe)
    # ------------------------------------------------------------------
    def pend_coef(self, key: str, mult: int = 1, div: int = 1) -> None:
        """The next scheduled delay includes ``params.key * mult // div``."""
        self._pend_coefs.append((key, mult, div))

    def pend_access(self, seq_id: int, paddr: int, span: int, write: bool,
                    cost: int) -> None:
        """The next scheduled delay includes a hierarchy access that
        charged ``cost`` cycles at capture time."""
        self._pend_accesses.append((seq_id, paddr, span, write))
        self._pend_cost += cost

    def pend_busy(self, seq_id: int) -> None:
        """The next scheduled delay was charged to ``seq_id``'s
        busy_cycles."""
        self._pend_busy = seq_id

    def pend_owner(self, seq_id: int) -> None:
        """The next scheduled delay belongs to ``seq_id`` for
        *attribution* (critical-path / bottleneck analysis) without
        charging its busy_cycles -- the serialization stages where the
        sequencer is architecturally occupied but not executing an op."""
        self._pend_owner = seq_id

    def mark(self, kind: str, arg: Any = None) -> None:
        """Record a point-in-time observation during the current event."""
        engine = self.engine
        self.marks.append((kind, engine.current_seqno, engine.now, arg))

    def proxy_raised(self) -> int:
        """Mark a proxy request being raised; returns its trace-local id."""
        req_id = self._next_proxy_id
        self._next_proxy_id = req_id + 1
        self.mark("praise", req_id)
        return req_id


@dataclass
class CapturedTrace:
    """The plain-data product of one captured execution-driven run."""

    #: parameters the trace was captured under
    params: MachineParams
    #: hierarchy topology: one tuple of seq_ids per L2 domain
    domains: tuple[tuple[int, ...], ...]
    oms_ids: tuple[int, ...]
    ams_ids: tuple[int, ...]
    #: pid of the application process (its exit defines ``cycles``)
    app_pid: int
    parents: list[int]
    delays: list[int]
    root_now: dict[int, int]
    coefs: dict[int, tuple]
    accesses: dict[int, tuple]
    busy_seq: dict[int, int]
    marks: list[tuple[str, int, int, Any]]
    #: analysis-only sequencer attribution for serialization delays
    #: (see :meth:`TraceCapture.pend_owner`)
    owner_seq: dict[int, int] = field(default_factory=dict)
    #: the execution-driven summary of the captured run, attached by
    #: the experiment layer (replay re-prices it)
    snapshot: Optional["RunSummary"] = field(default=None, repr=False)

    @classmethod
    def from_machine(cls, machine, capture: TraceCapture,
                     app_pid: int) -> "CapturedTrace":
        return cls(
            params=machine.params,
            domains=machine.hierarchy.domains(),
            oms_ids=tuple(machine.oms_ids()),
            ams_ids=tuple(machine.ams_ids()),
            app_pid=app_pid,
            parents=capture.parents,
            delays=capture.delays,
            root_now=capture.root_now,
            coefs=capture.coefs,
            accesses=capture.accesses,
            busy_seq=capture.busy_seq,
            marks=capture.marks,
            owner_seq=capture.owner_seq,
        )

    @property
    def num_events(self) -> int:
        return len(self.parents)

    # ------------------------------------------------------------------
    # JSON portability (committed analysis fixtures, artifact exchange)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable copy of the trace (without the attached
        :class:`RunSummary` snapshot -- analysis needs only the graph).

        Mapping keys become strings and tuples become lists, exactly
        reversed by :meth:`from_dict`; a round trip preserves every
        field :mod:`repro.obs.critpath` reads.
        """
        return {
            "schema": "repro.captrace/1",
            "params": dataclasses.asdict(self.params),
            "domains": [list(d) for d in self.domains],
            "oms_ids": list(self.oms_ids),
            "ams_ids": list(self.ams_ids),
            "app_pid": self.app_pid,
            "parents": list(self.parents),
            "delays": list(self.delays),
            "root_now": {str(k): v for k, v in self.root_now.items()},
            "coefs": {str(k): [list(c) for c in v]
                      for k, v in self.coefs.items()},
            "accesses": {str(k): [cost, [list(a) for a in records]]
                         for k, (cost, records) in self.accesses.items()},
            "busy_seq": {str(k): v for k, v in self.busy_seq.items()},
            "owner_seq": {str(k): v for k, v in self.owner_seq.items()},
            "marks": [list(m) for m in self.marks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapturedTrace":
        """Rebuild a trace from :meth:`to_dict` output (no snapshot, so
        the result analyzes but does not replay)."""
        return cls(
            params=MachineParams(**data["params"]),
            domains=tuple(tuple(d) for d in data["domains"]),
            oms_ids=tuple(data["oms_ids"]),
            ams_ids=tuple(data["ams_ids"]),
            app_pid=data["app_pid"],
            parents=list(data["parents"]),
            delays=list(data["delays"]),
            root_now={int(k): v for k, v in data["root_now"].items()},
            coefs={int(k): tuple(tuple(c) for c in v)
                   for k, v in data["coefs"].items()},
            accesses={int(k): (cost, tuple(tuple(a) for a in records))
                      for k, (cost, records) in data["accesses"].items()},
            busy_seq={int(k): v for k, v in data["busy_seq"].items()},
            owner_seq={int(k): v
                       for k, v in data.get("owner_seq", {}).items()},
            marks=[(str(m[0]), int(m[1]), int(m[2]), m[3])
                   for m in data["marks"]],
        )


#: the MachineParams fields that shape the cache model (as opposed to
#: pricing it); replays sharing a geometry share one re-driven access
#: profile
_GEOMETRY_FIELDS = ("l1_size", "l1_assoc", "l2_size", "l2_assoc",
                    "cache_line_size")

#: radix for the cost-decomposition probe drive (must exceed the lines
#: touched by any single event; a page Touch is 64 lines plus a fetch)
_PROBE_RADIX = 1 << 21


class ReplayMachine:
    """Re-charges a :class:`CapturedTrace` under new parameters.

    One instance replays one trace any number of times.  The recorded
    access stream is re-driven through a fresh
    :class:`~repro.mem.hierarchy.MemoryHierarchy` once per cache
    *geometry* (sizes, associativities, line size), producing a
    per-event (lines, l1-misses, mem-accesses) profile; every replay
    at that geometry -- e.g. each point of a ``mem_cost`` or
    ``signal_cost`` sweep -- then re-prices events with pure
    arithmetic.  The re-drive walks events in schedule order, which is
    also the chronological order every access was recorded in, so the
    cache model sees its original global reference stream.
    """

    def __init__(self, trace: CapturedTrace) -> None:
        if trace.snapshot is None:
            raise ConfigurationError(
                "trace has no execution-driven snapshot attached; "
                "capture through the experiment layer or set "
                "trace.snapshot first")
        self.trace = trace
        #: geometry tuple -> (per-event counts, aggregate counters)
        self._profiles: dict[tuple, tuple[dict, dict]] = {}

    # ------------------------------------------------------------------
    def _access_profile(self, params: MachineParams
                        ) -> tuple[dict[int, tuple[int, int, int]],
                                   dict[str, int]]:
        """The trace's access behaviour under ``params``' geometry.

        Re-drives the recorded access stream with probe costs
        ``(1, R, R^2)`` so each event's total decomposes by radix into
        ``(lines touched, l1 misses, memory accesses)`` -- from which
        any cost assignment is a dot product.  Cached per geometry.
        """
        key = tuple(getattr(params, f) for f in _GEOMETRY_FIELDS)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached
        radix = _PROBE_RADIX
        probe = params.with_changes(l1_hit_cost=1, l2_hit_cost=radix,
                                    mem_cost=radix * radix)
        hierarchy = MemoryHierarchy(probe)
        for domain in self.trace.domains:
            hierarchy.add_domain(domain)
        access_line = hierarchy.access
        access_range = hierarchy.access_range
        per_event: dict[int, tuple[int, int, int]] = {}
        # dict insertion order == seqno order == the chronological
        # order the accesses originally hit the hierarchy
        for seqno, (_old_cost, records) in self.trace.accesses.items():
            c = 0
            for seq_id, paddr, span, write in records:
                if span <= 1:
                    c += access_line(seq_id, paddr, write)
                else:
                    c += access_range(seq_id, paddr, span, write=write)
            per_event[seqno] = (c % radix, (c // radix) % radix,
                                c // (radix * radix))
        profile = (per_event, hierarchy.counters())
        self._profiles[key] = profile
        return profile

    def run(self, params: Optional[MachineParams] = None,
            spec: Optional["RunSpec"] = None) -> "RunSummary":
        """Replay under ``params`` (or ``spec.params``); returns a
        :class:`~repro.experiments.summary.RunSummary` with
        ``timing="replay"``."""
        from repro.experiments.summary import (
            MemorySummary, ProxySummary, UtilizationSummary,
        )
        trace = self.trace
        old = trace.params
        new = spec.params if spec is not None else (params or old)
        replayable_changes(old, new)
        per_event, mem_counters = self._access_profile(new)

        parents = trace.parents
        delays = trace.delays
        root_now = trace.root_now
        coefs_get = trace.coefs.get
        counts_get = per_event.get
        busy_get = trace.busy_seq.get
        l1_cost = new.l1_hit_cost
        l2_cost = new.l2_hit_cost
        mem_cost = new.mem_cost
        #: (key, mult, div) tuple -> summed price delta, cached (the
        #: distinct coefficient shapes per run number in the dozens)
        delta_cache: dict[tuple, int] = {}

        n = len(parents)
        times = [0] * n
        busy: dict[int, int] = {}
        for i in range(n):
            d = delays[i]
            c = coefs_get(i)
            if c is not None:
                delta = delta_cache.get(c)
                if delta is None:
                    delta = sum((getattr(new, key) * mult) // div
                                - (getattr(old, key) * mult) // div
                                for key, mult, div in c)
                    delta_cache[c] = delta
                d += delta
            a = counts_get(i)
            if a is not None:
                lines, l1_misses, mem_refs = a
                d += (lines * l1_cost + l1_misses * l2_cost
                      + mem_refs * mem_cost - trace.accesses[i][0])
            p = parents[i]
            times[i] = (times[p] if p >= 0 else root_now[i]) + d
            b = busy_get(i)
            if b is not None:
                busy[b] = busy.get(b, 0) + d

        cycles, suspended, proxy_latency = self._derive_marks(times)
        if cycles is None:
            cycles = max(times) if times else 0

        snap = trace.snapshot
        mem = MemorySummary(
            **mem_counters,
            tlb_hits=snap.mem.tlb_hits,
            tlb_misses=snap.mem.tlb_misses,
            tlb_flushes=snap.mem.tlb_flushes,
        )
        util = UtilizationSummary(
            oms_busy_cycles=sum(busy.get(s, 0) for s in trace.oms_ids),
            ams_busy_cycles=sum(busy.get(s, 0) for s in trace.ams_ids),
            ams_suspended_cycles=sum(suspended.get(s, 0)
                                     for s in trace.ams_ids),
            ops_executed=snap.utilization.ops_executed,
            num_oms=snap.utilization.num_oms,
            num_ams=snap.utilization.num_ams,
        )
        proxy = ProxySummary(
            requests=snap.proxy.requests,
            page_faults=snap.proxy.page_faults,
            syscalls=snap.proxy.syscalls,
            total_latency=proxy_latency,
            max_queue_depth=snap.proxy.max_queue_depth,
        )
        return dataclasses.replace(
            snap,
            cycles=cycles,
            mem=mem,
            utilization=util,
            proxy=proxy,
            events=dict(snap.events),
            timing="replay",
            scale=spec.scale if spec is not None else snap.scale,
            spec_hash=spec.spec_hash() if spec is not None else "",
        )

    # ------------------------------------------------------------------
    def _derive_marks(self, times: list[int]
                      ) -> tuple[Optional[int], dict[int, int], int]:
        """Recompute mark-derived statistics against replayed times.

        Returns (app-exit cycles, per-AMS suspended cycles, total
        proxy latency).  Suspension mirrors
        :meth:`repro.core.sequencer.Sequencer.suspend`'s depth
        counting; proxy latency pairs each raise with its completion.
        """
        trace = self.trace
        cycles: Optional[int] = None
        depth: dict[int, int] = {}
        since: dict[int, int] = {}
        suspended: dict[int, int] = {}
        raised: dict[int, int] = {}
        proxy_latency = 0
        for kind, at_seqno, at_now, arg in trace.marks:
            t = times[at_seqno] if at_seqno >= 0 else at_now
            if kind == "sus":
                if depth.get(arg, 0) == 0:
                    since[arg] = t
                depth[arg] = depth.get(arg, 0) + 1
            elif kind == "res":
                depth[arg] = depth.get(arg, 0) - 1
                if depth[arg] == 0:
                    suspended[arg] = (suspended.get(arg, 0)
                                      + t - since.pop(arg))
            elif kind == "praise":
                raised[arg] = t
            elif kind == "pdone":
                proxy_latency += t - raised.pop(arg)
            elif kind == "pexit":
                if arg == trace.app_pid:
                    cycles = t
        return cycles, suspended, proxy_latency
