"""Discrete-event simulation substrate (engine, clock, tracing)."""

from repro.sim.engine import Engine, Event
from repro.sim.trace import EventKind, TraceLog, TraceRecord

__all__ = ["Engine", "Event", "EventKind", "TraceLog", "TraceRecord"]
