"""Discrete-event simulation substrate (engine, clock, tracing,
trace capture/replay)."""

from repro.sim.captrace import (
    REPLAY_SAFE_FIELDS, CapturedTrace, ReplayMachine, TraceCapture,
    replayable_changes,
)
from repro.sim.engine import Engine, Event
from repro.sim.trace import EventKind, TraceLog, TraceRecord

__all__ = [
    "Engine", "Event", "EventKind", "TraceLog", "TraceRecord",
    "REPLAY_SAFE_FIELDS", "CapturedTrace", "ReplayMachine",
    "TraceCapture", "replayable_changes",
]
