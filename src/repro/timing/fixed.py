"""The ``fixed`` timing model: constant per-op costs.

This is the pre-timing-subsystem cost model, extracted verbatim from
``Machine._issue`` / ``Machine._cost_access``: every op costs its
functional components added together -- the op's own cycle count (or
the :class:`~repro.params.MachineParams` constant it maps to), page
walks at ``page_walk_cost`` each, whatever the cache hierarchy
charged, and the instruction fetch.  A SIGNAL broadcast costs
``signal_cost`` flat (the paper's Section 5.2 microcode estimate).

It is the default model and the reference the rest of the subsystem is
measured against: ``tests/test_timing.py`` asserts it is cycle-exact
with an unconfigured machine on every backend.  Because its pricing is
constant and occupancy-free, it is also the only built-in model with
:attr:`~repro.timing.base.TimingModel.supports_capture` -- trace
replay re-prices per-event coefficient sums, which is exactly this
model's structure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.timing.base import TimingModel, register_timing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.core.sequencer import Sequencer
    from repro.exec.ops import MachineOp

#: Extra cycles a mini-ISA memory-reference instruction (LD/ST/
#: PUSH/POP/CALL/RET) costs over ``isa_instruction_cost``, covering
#: effective-address generation.  Lives here rather than in the
#: interpreter because it is pricing, not semantics.
ISA_MEM_EXTRA = 2

#: Extra cycles a mini-ISA MUL costs over ``isa_instruction_cost``.
ISA_MUL_EXTRA = 3


@register_timing
class FixedTiming(TimingModel):
    """Constant per-op pricing (the default; capture/replay-safe)."""

    name = "fixed"
    supports_capture = True
    description = ("constant per-op costs straight from MachineParams; "
                   "the default, and the only replay-capable model")

    def bind(self, machine: "Machine") -> None:
        super().bind(machine)
        # params is frozen; hoist the two per-op constants out of the
        # charge hot loop
        self._page_walk_cost = machine.params.page_walk_cost
        self._signal_cost = machine.params.signal_cost

    def charge(self, seq: "Sequencer", op: "MachineOp", base: int,
               walks: int = 0, access: int = 0, fetch: int = 0) -> int:
        if walks:
            return base + walks * self._page_walk_cost + access + fetch
        return base + access + fetch

    def signal_cycles(self, seq: "Sequencer", count: int = 1) -> int:
        return count * self._signal_cost

    # Stall attribution: this model does NOT decompose its charge path
    # live.  Constant pricing means the full compute/memory/page_walk
    # decomposition is recoverable exactly from a captured trace's
    # coefficients (repro.obs.critpath.analyze_trace), so adding
    # per-op accounting to the observed hot path would buy nothing but
    # overhead -- the observability cost gate in
    # benchmarks/test_obs_overhead.py keeps the observed/plain ratio
    # honest.  The base-class attach_stalls is inherited unchanged:
    # the machine's serialization sites (SIGNAL broadcasts, Ring-0
    # services, proxy egress, context switches -- all rare events)
    # note their classes directly, which is exactly the fixed-cost
    # serialization taxonomy the paper's model defines.
