"""Pluggable timing models (``TimingModel`` + ``TIMING_REGISTRY``).

The timing subsystem separates *what the machine does* (functional
execution) from *how long it takes* (pricing), mirroring the system
registry in :mod:`repro.systems`.  Two models ship:

* ``fixed`` -- constant per-op costs from :class:`~repro.params.
  MachineParams` (the default; bit-exact with the pre-subsystem
  machine, and the only model supporting trace capture/replay);
* ``scoreboard`` -- an in-order scoreboarded pipeline per processor
  (RAW/WAW + structural hazards over shared FU pools), under which
  SIGNAL / proxy costs emerge from pipeline drain and occupancy.

Select a model per run with :meth:`Session.timing
<repro.systems.session.Session.timing>` or per spec with
``RunSpec(..., timing_model="scoreboard")``; register your own with
:func:`register_timing` (see ``examples/custom_timing.py``).
"""

from repro.timing.base import (
    TIMING_REGISTRY, TimingModel, TimingRegistry, canonical_timing_name,
    get_timing, register_timing, resolve_timing,
)
from repro.timing.fixed import ISA_MEM_EXTRA, ISA_MUL_EXTRA, FixedTiming
from repro.timing.scoreboard import ScoreboardTiming

__all__ = [
    "TIMING_REGISTRY",
    "TimingModel",
    "TimingRegistry",
    "canonical_timing_name",
    "get_timing",
    "register_timing",
    "resolve_timing",
    "FixedTiming",
    "ScoreboardTiming",
    "ISA_MEM_EXTRA",
    "ISA_MUL_EXTRA",
]
