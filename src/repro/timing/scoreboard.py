"""The ``scoreboard`` timing model: an in-order scoreboarded pipeline.

Instead of constant per-op costs, each MISP processor owns one
scoreboarded in-order pipeline (issue / read-operands / execute /
writeback) that *all* of its sequencers -- the OMS and every AMS --
issue into.  An op's cost is when the pipeline actually retires it:

* **frontend** -- issue + read-operands take ``sb_frontend_depth``
  cycles;
* **RAW** -- read-operands additionally waits until every source
  register the op reads (``op.reads``, attached by the mini-ISA
  interpreter) has been written back by this sequencer's earlier ops;
* **structural** -- execute needs a free functional unit from the
  processor's shared pool (``sb_alu_units`` ALUs, ``sb_mem_units``
  memory units); when all units of the needed class are busy, the op
  waits for the earliest one;
* **execute** -- occupies the unit for the op's functional latency
  (its base cost + page walks + hierarchy charges + fetch);
* **writeback / WAW** -- destination registers (``op.writes``) retire
  through a single writeback port, one op per cycle, in order -- a
  later op reading them stalls until then.

SIGNAL, yield-conditional delivery, and proxy transitions are where
this model earns its keep: a signal broadcast must *drain* the
processor's pipeline (every in-flight op completes) before the
broadcast trains refill it, so ``signal_cycles`` is ``drain +
count * sb_drain_refill`` -- an emergent, occupancy-dependent cost in
place of the paper's flat ``signal_cost`` estimate (Section 5.2 calls
its 5000-cycle figure "conservative" precisely because a real
implementation's cost depends on pipeline state).  A context switch
flushes the pipeline architecturally, so :meth:`end_quantum` resets
the processor's scoreboard.

Because sequencers on one processor contend for the shared unit pool,
MISP configurations are sensitive to ``sb_alu_units`` /
``sb_mem_units`` while single-sequencer processors (SMP cores, 1P) are
not -- the FU-count axis :mod:`repro.analysis.figure_pipeline` sweeps.

Costs depend on pipeline occupancy, so this model does **not** support
trace capture/replay (``supports_capture = False``); the experiment
layer runs it execution-driven only.

Modeled after the classic MIPS scoreboard simulators: per-unit
busy-until bookkeeping, per-register ready times, and in-order
issue with stalls resolved by time comparison -- no event machinery of
its own, the machine's discrete-event clock is the only clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exec.ops import AtomicOp, MemAccess, SignalShred, Touch
from repro.timing.base import TimingModel, register_timing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.core.sequencer import Sequencer
    from repro.exec.ops import MachineOp


class _ProcPipeline:
    """One processor's scoreboard: shared FUs + per-register state."""

    __slots__ = ("alu", "mem", "wb_free", "reg_ready")

    def __init__(self, alu_units: int, mem_units: int) -> None:
        #: busy-until time per ALU / memory unit
        self.alu = [0] * alu_units
        self.mem = [0] * mem_units
        #: when the single writeback port is next free
        self.wb_free = 0
        #: (seq_id, reg) -> cycle its last write retires
        self.reg_ready: dict[tuple[int, int], int] = {}

    def drain_time(self, now: int) -> int:
        """Cycles until every in-flight op has left the pipeline."""
        busiest = max(max(self.alu), max(self.mem), self.wb_free)
        return busiest - now if busiest > now else 0

    def flush(self) -> None:
        """Architectural pipeline flush (context switch)."""
        for i in range(len(self.alu)):
            self.alu[i] = 0
        for i in range(len(self.mem)):
            self.mem[i] = 0
        self.wb_free = 0
        self.reg_ready.clear()


@register_timing
class ScoreboardTiming(TimingModel):
    """In-order scoreboarded pipeline per processor (occupancy-based)."""

    name = "scoreboard"
    supports_capture = False
    description = ("in-order scoreboarded pipeline per processor: shared "
                   "FU pools, RAW/WAW + structural hazards, drain-based "
                   "signal costs; sweeps sb_* MachineParams axes")

    def bind(self, machine: "Machine") -> None:
        super().bind(machine)
        params = machine.params
        self._frontend = params.sb_frontend_depth
        self._refill = params.sb_drain_refill
        self._page_walk_cost = params.page_walk_cost
        self._engine = machine.engine
        self._pipes = [_ProcPipeline(params.sb_alu_units, params.sb_mem_units)
                       for _ in machine.processors]
        #: drain portion of the most recent signal_cycles() result
        #: (consumed by split_signal / the SIGNAL charge right after)
        self._last_drain = 0

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def charge(self, seq: "Sequencer", op: "MachineOp", base: int,
               walks: int = 0, access: int = 0, fetch: int = 0) -> int:
        now = self._engine.now
        pipe = self._pipes[seq.processor.proc_id]
        lat = base + access + fetch
        if walks:
            lat += walks * self._page_walk_cost
        if lat < 1:
            lat = 1

        stalls = self.stalls
        if type(op) is SignalShred:
            # `base` already came from signal_cycles (drain + refill)
            # and accounted for pipeline occupancy; don't queue the
            # broadcast on a functional unit on top of that.
            if stalls is not None:
                sid = seq.seq_id
                stalls.note(sid, "frontend", self._frontend)
                drain = self._last_drain if self._last_drain < lat else 0
                if drain:
                    stalls.note(sid, "drain", drain)
                stalls.note(sid, "signal", lat - drain)
            return self._frontend + lat

        sid = seq.seq_id
        reg_ready = pipe.reg_ready
        # issue + read-operands, stalled by RAW on this stream's regs
        ready = now + self._frontend
        for reg in getattr(op, "reads", ()):
            t = reg_ready.get((sid, reg), 0)
            if t > ready:
                ready = t
        # structural hazard: earliest free unit of the needed class
        units = (pipe.mem if type(op) in (MemAccess, Touch, AtomicOp)
                 else pipe.alu)
        slot = min(range(len(units)), key=units.__getitem__)
        avail = units[slot]
        start = avail if avail > ready else ready
        done = start + lat
        units[slot] = done
        # single writeback port, one retirement per cycle, in order
        wb_wait = pipe.wb_free - done if pipe.wb_free > done else 0
        wb = done + wb_wait + 1
        waw_wait = 0
        writes = getattr(op, "writes", ())
        if writes:
            for reg in writes:
                key = (sid, reg)
                prior = reg_ready.get(key, 0)
                if prior >= wb:       # WAW: retire after the earlier write
                    waw_wait += prior + 1 - wb
                    wb = prior + 1
            for reg in writes:
                reg_ready[(sid, reg)] = wb
        pipe.wb_free = wb
        if stalls is not None:
            # decompose `done - now` exactly: frontend + RAW wait +
            # structural wait + execute (memory / page walks / compute);
            # the retire-port and WAW waits happen after `done` (they
            # surface as later ops' RAW stalls) and are tracked as
            # their own families without inflating this op's cost
            note = stalls.note
            note(sid, "frontend", self._frontend)
            raw = ready - (now + self._frontend)
            if raw > 0:
                note(sid, "raw", raw)
            if avail > ready:
                note(sid, "structural", avail - ready)
            mem = access + fetch
            if mem:
                note(sid, "memory", mem)
            if walks:
                note(sid, "page_walk", walks * self._page_walk_cost)
            compute = lat - mem - (walks * self._page_walk_cost if walks
                                   else 0)
            if compute:
                note(sid, "compute", compute)
            if wb_wait:
                note(sid, "wb_port", wb_wait)
            if waw_wait:
                note(sid, "waw", waw_wait)
        # the sequencer is execution-serialized on `done`; the register
        # writeback at `wb` is what later RAW/WAW stalls see
        return done - now

    def signal_cycles(self, seq: "Sequencer", count: int = 1) -> int:
        if count <= 0:
            self._last_drain = 0
            return 0
        now = self._engine.now
        pipe = self._pipes[seq.processor.proc_id]
        drain = pipe.drain_time(now)
        self._last_drain = drain
        cost = drain + count * self._refill
        # the broadcast owns the drained pipeline until it completes
        done = now + cost
        for units in (pipe.alu, pipe.mem):
            for i in range(len(units)):
                units[i] = done
        if pipe.wb_free < done:
            pipe.wb_free = done
        return cost

    def split_signal(self, cost: int) -> tuple[tuple[str, int], ...]:
        drain = self._last_drain if self._last_drain < cost else 0
        return (("drain", drain), ("signal", cost - drain))

    # ------------------------------------------------------------------
    # Quantum hooks
    # ------------------------------------------------------------------
    def begin_quantum(self, seq: "Sequencer") -> None:
        # a freshly switched-in thread starts with a cold pipeline
        self._pipes[seq.processor.proc_id].flush()

    def end_quantum(self, seq: "Sequencer") -> None:
        self._pipes[seq.processor.proc_id].flush()
