"""The timing-model protocol and registry.

A *timing model* is where cycles come from: how each machine operation,
inter-sequencer signal, and pipeline event is priced.  Functional
execution (the ISA interpreter, ShredLib, the model kernel) decides
*what happens*; the timing model decides *how long it takes*.  The
split mirrors the system-backend registry
(:mod:`repro.systems.base`):

* :class:`TimingModel` -- the protocol: a ``name``, ``bind`` (attach
  to a machine and build per-sequencer/per-processor state),
  ``charge`` (price one op from its functional cost components),
  ``signal_cycles`` (price one inter-sequencer signal broadcast), and
  ``begin_quantum`` / ``end_quantum`` hooks the machine invokes around
  OS context switches;
* :data:`TIMING_REGISTRY` -- name -> model *factory* (a
  :class:`TimingModel` subclass), consulted by
  :class:`~repro.experiments.spec.RunSpec` validation and
  :meth:`~repro.systems.session.Session.timing`, so registering a
  model is sufficient to make it spec-able, sweep-able, and cacheable
  (the model's canonical name is part of every spec hash).

Unlike system backends (stateless singletons), timing models carry
per-run state (pipeline occupancy, register scoreboards), so the
registry stores the *class* and a fresh instance is created per
machine.

Only models that charge constant, occupancy-independent costs may set
:attr:`TimingModel.supports_capture`: trace capture/replay
(:mod:`repro.sim.captrace`) re-prices recorded per-event coefficient
sums, which is meaningless when an op's cost depends on pipeline
state.  The built-in ``fixed`` model is the only capture-safe one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Type, Union

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.core.sequencer import Sequencer
    from repro.exec.ops import MachineOp


#: The canonical stall/serialization taxonomy every timing model and
#: the machine's serialization sites attribute cycles into.  The first
#: group is work (compute/memory/page_walk), the second is the paper's
#: serialization costs (signal broadcasts, kernel services, context
#: switches), the third is the scoreboard pipeline's hazard classes,
#: and the last two are derived occupancy states (an AMS suspended for
#: an OMS Ring-0 entry; a sequencer with nothing to run).
STALL_CLASSES = (
    "compute", "memory", "page_walk",
    "signal", "atomic", "syscall_service", "page_fault_service",
    "timer_service", "interrupt_service", "context_switch", "state_save",
    "frontend", "raw", "waw", "structural", "wb_port", "drain",
    "suspended", "idle",
)

#: MachineParams cost-coefficient field -> stall class.  This is the
#: shared vocabulary between the trace-capture coefficient
#: decomposition (``repro.sim.captrace``) and the live stall accounts,
#: so a captured-trace analysis and an observed-run analysis bucket
#: the same cycle into the same class.
PARAM_CLASS = {
    "signal_cost": "signal",
    "syscall_service_cost": "syscall_service",
    "page_fault_service_cost": "page_fault_service",
    "timer_service_cost": "timer_service",
    "interrupt_service_cost": "interrupt_service",
    "context_switch_cost": "context_switch",
    "sequencer_state_save_cost": "state_save",
    "page_walk_cost": "page_walk",
    "atomic_op_cost": "atomic",
}


class StallAccount:
    """Per-sequencer, per-class cycle attribution for one run.

    A plain ``(seq_id, class) -> cycles`` dict behind the narrowest
    possible hot-path API (:meth:`note` is one dict update); timing
    models and the machine's serialization sites write into it only
    when a run is observed, so un-observed runs never touch one.

    Hot paths that cannot afford even :meth:`note` (the fixed model's
    per-op charge closure) accumulate privately and register a *drain
    source* via :meth:`add_source`; every read API settles the sources
    first, so readers always see the merged totals.
    """

    __slots__ = ("cycles", "_sources")

    def __init__(self) -> None:
        self.cycles: dict[tuple[int, str], int] = {}
        self._sources: list = []

    def note(self, seq_id: int, klass: str, cycles: int) -> None:
        """Charge ``cycles`` on ``seq_id`` to stall class ``klass``."""
        key = (seq_id, klass)
        c = self.cycles
        c[key] = c.get(key, 0) + cycles

    def add_source(self, drain) -> None:
        """Register ``drain(account)``: called before any read to merge
        (and zero) a producer's private accumulation buffers."""
        self._sources.append(drain)

    def settle(self) -> None:
        """Merge every registered source's pending cycles."""
        for drain in self._sources:
            drain(self)

    def per_sequencer(self) -> dict[int, dict[str, int]]:
        """``seq_id -> {class: cycles}`` with deterministic ordering."""
        self.settle()
        out: dict[int, dict[str, int]] = {}
        for (seq_id, klass), cycles in sorted(self.cycles.items()):
            out.setdefault(seq_id, {})[klass] = cycles
        return out

    def by_class(self) -> dict[str, int]:
        """``class -> cycles`` summed over sequencers (sorted keys)."""
        self.settle()
        out: dict[str, int] = {}
        for (_, klass), cycles in self.cycles.items():
            out[klass] = out.get(klass, 0) + cycles
        return dict(sorted(out.items()))

    def items(self) -> list[tuple[tuple[int, str], int]]:
        """Sorted ``((seq_id, class), cycles)`` pairs, settled."""
        self.settle()
        return sorted(self.cycles.items())

    def total(self) -> int:
        self.settle()
        return sum(self.cycles.values())


class TimingModel:
    """One way of pricing a simulated machine's operations.

    Subclasses set the class attributes and implement :meth:`charge`
    (and, for occupancy-based models, :meth:`signal_cycles` and the
    quantum hooks).  The :class:`~repro.core.machine.Machine` binds a
    fresh instance per run and routes every cost through it.
    """

    #: registry key (``RunSpec.timing_model``)
    name: str = ""
    #: whether trace capture/replay (repro.sim.captrace) is valid
    #: under this model (True only for constant per-op pricing)
    supports_capture: bool = False
    #: one-line description for docs and error messages
    description: str = ""
    #: :class:`StallAccount` when the run is observed, else None -- the
    #: class default keeps the un-observed charge path branch-free for
    #: models (like ``fixed``) that account through swapped closures
    stalls: Optional["StallAccount"] = None
    #: set (on the instance) by :meth:`attach_observation` when the
    #: model's charge path already bumps the observer's op/cycle
    #: counters itself, so the machine must not stack its generic
    #: counting wrapper on top
    observation_counts_ops: bool = False

    def canonical_name(self) -> str:
        """The normalized registry name this model prices as."""
        return canonical_timing_name(self.name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, machine: "Machine") -> None:
        """Attach to ``machine`` and build per-sequencer state.

        Called once, after the machine's processors and hierarchy
        exist and before any event executes.  Models must read every
        :class:`~repro.params.MachineParams` field they price from
        here (params are frozen, so hoisted values never go stale).
        """
        self.machine = machine

    def attach_stalls(self, stalls: "StallAccount") -> None:
        """Attach a stall account (observed runs only; after bind).

        Models charge every priced cycle into a :data:`STALL_CLASSES`
        bucket on it.  Never called for un-observed runs, so the
        default charge path stays untouched.
        """
        self.stalls = stalls

    def attach_observation(self, obs) -> None:
        """Attach an :class:`~repro.obs.observe.ObservedRun`.

        The default forwards to :meth:`attach_stalls`; models that fuse
        observation into their charge path (the fixed model's closure
        swap) override this, bump ``obs.ops`` / ``obs.charged_cycles``
        themselves, and set :attr:`observation_counts_ops` so the
        machine skips its generic counting wrapper.
        """
        self.attach_stalls(obs.stalls)

    def split_signal(self, cost: int) -> tuple[tuple[str, int], ...]:
        """Decompose the most recent :meth:`signal_cycles` result into
        ``(stall class, cycles)`` parts for attribution at the machine's
        serialization sites (which schedule the returned delay directly,
        outside :meth:`charge`)."""
        return (("signal", cost),)

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def charge(self, seq: "Sequencer", op: "MachineOp", base: int,
               walks: int = 0, access: int = 0, fetch: int = 0) -> int:
        """Price one machine op; returns the cycles until completion.

        The machine passes the op's functional cost components:

        * ``base`` -- the op's constant issue cost (``op.cycles``, or
          the :class:`~repro.params.MachineParams` constant the fixed
          model maps the op to);
        * ``walks`` -- page walks performed translating its address;
        * ``access`` -- cycles the memory hierarchy charged for its
          data access;
        * ``fetch`` -- cycles the hierarchy charged for its
          instruction fetch.
        """
        raise NotImplementedError

    def signal_cycles(self, seq: "Sequencer", count: int = 1) -> int:
        """Price ``count`` back-to-back inter-sequencer signal
        broadcasts issued by ``seq``'s processor (the ``signal`` term
        of Equations 1-3)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Quantum hooks (OS scheduling boundaries)
    # ------------------------------------------------------------------
    def begin_quantum(self, seq: "Sequencer") -> None:
        """``seq`` (an OMS) was just switched to a new thread."""

    def end_quantum(self, seq: "Sequencer") -> None:
        """``seq`` (an OMS) is being switched out / its team frozen.

        Occupancy models flush the processor's pipeline state here: a
        context switch drains in-flight work architecturally.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} '{self.name}'>"


def canonical_timing_name(name: str) -> str:
    return str(name).strip().lower()


class TimingRegistry:
    """Name -> :class:`TimingModel` subclass, in registration order."""

    def __init__(self) -> None:
        self._models: dict[str, Type[TimingModel]] = {}

    def register(self, model: Type[TimingModel], *,
                 replace: bool = False) -> Type[TimingModel]:
        """Register a model class under its :attr:`~TimingModel.name`.

        Like the system registry, :meth:`RunSpec.spec_hash` encodes
        the model's *name*, not its behavior: give behaviorally
        different models distinct names or the on-disk cache will
        serve stale results.
        """
        if not (isinstance(model, type) and issubclass(model, TimingModel)):
            raise ConfigurationError(
                f"timing models register as TimingModel subclasses "
                f"(they carry per-run state), got {model!r}")
        key = canonical_timing_name(model.name)
        if not key:
            raise ConfigurationError("timing model needs a name")
        if key in self._models and not replace:
            raise ConfigurationError(
                f"timing model '{key}' already registered; pass "
                "replace=True to override")
        self._models[key] = model
        return model

    def unregister(self, name: str) -> Type[TimingModel]:
        try:
            return self._models.pop(canonical_timing_name(name))
        except KeyError:
            raise ConfigurationError(
                f"timing model '{name}' is not registered") from None

    def find(self, name: str) -> Optional[Type[TimingModel]]:
        return self._models.get(canonical_timing_name(name))

    def get(self, name: str) -> Type[TimingModel]:
        model = self.find(name)
        if model is None:
            raise ConfigurationError(
                f"unknown timing model '{name}'; registered models: "
                f"{tuple(self._models)}")
        return model

    def create(self, name: str) -> TimingModel:
        """A fresh (unbound) instance of the named model."""
        return self.get(name)()

    def names(self) -> list[str]:
        return list(self._models)

    def __contains__(self, name: object) -> bool:
        return (isinstance(name, str)
                and canonical_timing_name(name) in self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._models))

    @contextmanager
    def temporary(self, model: Type[TimingModel]):
        """Register ``model`` for the duration of a ``with`` block."""
        self.register(model)
        try:
            yield model
        finally:
            self.unregister(model.name)


#: the process-wide registry, populated by :mod:`repro.timing`
TIMING_REGISTRY = TimingRegistry()


def register_timing(model: Type[TimingModel], *,
                    replace: bool = False) -> Type[TimingModel]:
    """Register a model class in the process-wide :data:`TIMING_REGISTRY`."""
    return TIMING_REGISTRY.register(model, replace=replace)


def get_timing(name: str) -> Type[TimingModel]:
    """Look up a model class by name (ConfigurationError if unknown)."""
    return TIMING_REGISTRY.get(name)


def resolve_timing(timing: Union[str, TimingModel,
                                 Type[TimingModel]]) -> TimingModel:
    """Turn a name, class, or prototype instance into a fresh instance.

    Names resolve through the registry; classes instantiate directly;
    instances are used as prototypes (a per-run copy is created, since
    bound models carry run state).
    """
    if isinstance(timing, str):
        return TIMING_REGISTRY.create(timing)
    if isinstance(timing, type) and issubclass(timing, TimingModel):
        return timing()
    if isinstance(timing, TimingModel):
        import copy
        return copy.deepcopy(timing)
    raise ConfigurationError(
        f"cannot resolve {timing!r} as a timing model; pass a registry "
        "name, a TimingModel subclass, or an instance")
