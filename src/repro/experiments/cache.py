"""On-disk memoization of completed runs, keyed by spec hash.

One JSON file per unique :class:`~repro.experiments.spec.RunSpec`,
named ``<spec_hash>.json`` and containing both the canonical spec (for
audit and invalidation) and the :class:`RunSummary`.  Writes are
atomic (temp file + ``os.replace``) so concurrent writers -- parallel
Runner workers, or two simultaneous invocations sharing a cache
directory -- can only ever race to write identical content.

Timing identity is part of the key: an execution-driven summary lives
in ``<spec_hash>.json``, a trace-driven replay summary (see
:mod:`repro.sim.captrace`) in ``<spec_hash>.replay.json``, and each
entry also records its ``timing`` in the payload.  A replay summary
can therefore never alias -- or be served in place of -- the
execution-driven numbers for the same spec.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.experiments.spec import RunSpec
from repro.experiments.summary import RunSummary

#: bump to invalidate every previously cached summary
#: (2: timing-identity keys -- replay entries split from execute ones;
#:  3: timing_model joined the spec hash and the summary payload)
CACHE_VERSION = 3


class ResultCache:
    """A directory of ``<spec_hash>[.replay].json`` run summaries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: RunSpec, timing: str = "execute") -> Path:
        suffix = ".json" if timing == "execute" else f".{timing}.json"
        return self.root / f"{spec.spec_hash()}{suffix}"

    def get(self, spec: RunSpec,
            timing: str = "execute") -> Optional[RunSummary]:
        """The cached summary for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec, timing)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("cache_version") != CACHE_VERSION:
                return None
            if payload.get("spec_hash") != spec.spec_hash():
                return None
            if payload.get("timing", "execute") != timing:
                return None
            summary = RunSummary.from_dict(payload["summary"])
            if summary.timing != timing:
                return None
            return summary
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable or stale-format entry: treat as a miss
            return None

    def put(self, spec: RunSpec, summary: RunSummary) -> Path:
        path = self.path_for(spec, summary.timing)
        payload = {
            "cache_version": CACHE_VERSION,
            "spec_hash": spec.spec_hash(),
            "timing": summary.timing,
            "spec": spec.to_dict(),
            "summary": summary.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
