"""Backwards-compatible alias of the content-addressed result store.

The on-disk memoization layer moved to
:class:`repro.service.store.ResultStore`, which grew the original
spec-hash cache into a proper content-addressed store (versioning,
LRU/size-bounded eviction, corruption quarantine, temp-file
reclamation, hit/miss metrics).  :class:`ResultCache` remains as the
historical name: an unbounded ``ResultStore`` with the exact same
``path_for`` / ``get`` / ``put`` / ``clear`` surface, so existing
callers and cache directories keep working unchanged.

Layout (unchanged): one JSON file per unique
:class:`~repro.experiments.spec.RunSpec`, named ``<spec_hash>.json``
(replay summaries under ``<spec_hash>.replay.json``), written
atomically so concurrent writers can only race to write identical
content.
"""

from __future__ import annotations

from repro.service.store import STORE_VERSION, ResultStore

#: bump to invalidate every previously cached summary (the store's
#: version; kept under its historical name for existing importers)
CACHE_VERSION = STORE_VERSION


class ResultCache(ResultStore):
    """A directory of ``<spec_hash>[.replay].json`` run summaries.

    Identical to an unbounded :class:`ResultStore`; see
    :mod:`repro.service.store` for the full feature set (sweep,
    eviction bounds, :class:`~repro.service.store.StoreStats`).
    """
