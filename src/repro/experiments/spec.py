"""Declarative run specifications.

A :class:`RunSpec` names one simulation -- *which workload, on which
system, in which machine configuration, at what scale, under which
parameters* -- as plain, hashable data.  Two specs that describe the
same simulation normalize to the same canonical form and therefore the
same :meth:`RunSpec.spec_hash`, which is what lets the
:class:`~repro.experiments.runner.Runner` deduplicate shared runs
(one 1P baseline serves Figure 4, Figure 5, and Table 1) and memoize
completed runs on disk.

An :class:`ExperimentSpec` is an ordered grid of RunSpecs -- the
declarative form of "a figure": Figure 4 is ``workloads x {1p, misp,
smp}``, Figure 7 is ``configs x loads``, and adding a scenario is
declaring one more RunSpec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.core.notation import (
    config_name, ideal_config_for_load, parse_config,
)
from repro.errors import ConfigurationError
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.runtime import QueuePolicy
from repro.workloads.multiprog import MULTIPROG_HORIZON
from repro.workloads.runner import DEFAULT_LIMIT

#: systems a RunSpec can target
SYSTEMS = ("misp", "smp", "1p", "multiprog")

#: sequencer budget of the paper's multiprogramming study (Section 5.4)
FIGURE7_SEQUENCERS = 8

#: default machine configuration per system
DEFAULT_CONFIGS = {"misp": "1x8", "smp": "smp8", "1p": "smp1",
                   "multiprog": "1x8"}

#: bump to invalidate previously hashed specs after semantic changes
SPEC_VERSION = 1


def _canonical_args(args: Any) -> tuple[tuple[str, Any], ...]:
    """Normalize factory kwargs to a sorted, hashable pair tuple."""
    if isinstance(args, Mapping):
        items = args.items()
    else:
        items = tuple(args)
    out = []
    for key, value in sorted(items):
        if not isinstance(key, str):
            raise ConfigurationError(f"workload arg name {key!r} not a string")
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ConfigurationError(
                f"workload arg {key}={value!r} is not a JSON scalar")
        out.append((key, value))
    return tuple(out)


@dataclass(frozen=True)
class RunSpec:
    """One simulation, as content-hashable plain data.

    Fields are normalized on construction so that equal simulations
    compare (and hash) equal:

    * ``system`` / ``policy`` are lowercased and validated;
    * ``config`` is canonicalized through the Figure 6 notation
      (``"1X8"`` -> ``"1x8"``, ``"smp1"`` on a plain CPU collapses
      ``smp`` to ``1p``, multiprogramming's ``"ideal"`` resolves to
      the explicit per-load partition);
    * ``args`` (extra workload-factory kwargs, e.g. RayTracer's
      ``probe_pages``) become a sorted tuple of pairs.
    """

    workload: str
    system: str = "misp"
    config: str = ""
    scale: Optional[float] = None
    #: background single-threaded processes (multiprog only)
    background: int = 0
    #: gang-scheduler queue policy ("fifo" | "lifo")
    policy: Union[str, QueuePolicy] = "fifo"
    params: MachineParams = DEFAULT_PARAMS
    limit: int = DEFAULT_LIMIT
    #: extra workload-factory kwargs, as a mapping or pair tuple
    args: Any = ()

    def __post_init__(self) -> None:
        s = lambda field, value: object.__setattr__(self, field, value)
        system = str(self.system).strip().lower()
        if system not in SYSTEMS:
            raise ConfigurationError(
                f"unknown system '{self.system}'; expected one of {SYSTEMS}")
        policy = (self.policy.value if isinstance(self.policy, QueuePolicy)
                  else str(self.policy).strip().lower())
        QueuePolicy(policy)  # validate
        s("policy", policy)
        if self.scale is not None and self.scale <= 0:
            raise ConfigurationError(f"scale must be positive: {self.scale}")
        if self.background < 0:
            raise ConfigurationError("background must be >= 0")
        if self.background and system != "multiprog":
            raise ConfigurationError(
                "background processes require system='multiprog'")
        if self.limit <= 0:
            raise ConfigurationError(f"limit must be positive: {self.limit}")
        if system == "multiprog" and self.limit == DEFAULT_LIMIT:
            # the untouched generic default means "the multiprog
            # driver's own horizon", so both drivers time out alike
            s("limit", MULTIPROG_HORIZON)
        s("args", _canonical_args(self.args))
        config = (self.config or DEFAULT_CONFIGS[system]).strip().lower()
        system, config = self._canonical_config(system, config)
        s("system", system)
        s("config", config)

    def _canonical_config(self, system: str, config: str) -> tuple[str, str]:
        if system == "multiprog":
            if config == "smp":          # the 8-way SMP baseline series
                return system, config
            if config == "ideal":        # per-load partition (Section 5.4)
                counts = ideal_config_for_load(FIGURE7_SEQUENCERS,
                                               self.background)
            else:
                counts = parse_config(config)
            if not any(counts):
                raise ConfigurationError(
                    f"multiprog partition '{config}' has no MISP "
                    "processor to drive the shredded workload; use "
                    "config='smp' for the SMP multiprogramming baseline")
            return system, config_name(counts)
        if system == "1p":
            return "1p", "smp1"
        counts = parse_config(config)
        if system == "smp":
            if any(counts):
                raise ConfigurationError(
                    f"system='smp' needs plain CPUs, got '{config}'")
            if len(counts) == 1:
                return "1p", "smp1"
            return system, config_name(counts)
        # misp: the single-application runner drives one MISP processor
        if len(counts) != 1:
            raise ConfigurationError(
                f"system='misp' runs on one MISP processor, got '{config}'; "
                "use system='multiprog' for MP partitions")
        return system, config_name(counts)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe canonical form (used for hashing and the cache)."""
        return {
            "workload": self.workload,
            "system": self.system,
            "config": self.config,
            "scale": self.scale,
            "background": self.background,
            "policy": self.policy,
            "limit": self.limit,
            "args": [list(pair) for pair in self.args],
            "params": dataclasses.asdict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        data = dict(data)
        params = MachineParams(**data.pop("params"))
        args = tuple((k, v) for k, v in data.pop("args", []))
        return cls(params=params, args=args, **data)

    def spec_hash(self) -> str:
        """Stable content hash of the canonical spec.

        Computed once per instance (frozen, so the digest cannot go
        stale) -- callers hash freely in dedup loops and lookups.
        """
        cached = self.__dict__.get("_spec_hash")
        if cached is None:
            payload = json.dumps({"version": SPEC_VERSION, **self.to_dict()},
                                 sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_spec_hash", cached)
        return cached

    def describe(self) -> str:
        extra = f"+{self.background}bg" if self.background else ""
        scale = f"@{self.scale:g}" if self.scale is not None else ""
        return f"{self.workload}{scale}/{self.system}:{self.config}{extra}"


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, ordered grid of :class:`RunSpec` members.

    Duplicate members are legal (grids are easier to declare that
    way); the Runner executes each *unique* simulation exactly once.
    """

    name: str
    runs: tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "runs", tuple(self.runs))

    def unique_runs(self) -> tuple[RunSpec, ...]:
        """Members deduplicated by content hash, first occurrence wins."""
        seen: dict[str, RunSpec] = {}
        for spec in self.runs:
            seen.setdefault(spec.spec_hash(), spec)
        return tuple(seen.values())

    def __len__(self) -> int:
        return len(self.runs)

    def __add__(self, other: "ExperimentSpec") -> "ExperimentSpec":
        return ExperimentSpec(f"{self.name}+{other.name}",
                              self.runs + other.runs)

    @classmethod
    def grid(cls, name: str, workloads: Sequence[str],
             systems: Iterable[Union[str, tuple[str, str]]] = ("1p", "misp", "smp"),
             *, scale: Optional[float] = None,
             params: MachineParams = DEFAULT_PARAMS,
             policy: Union[str, QueuePolicy] = "fifo") -> "ExperimentSpec":
        """Cross product ``workloads x systems``.

        Each ``systems`` entry is a system name (run in its default
        configuration) or an explicit ``(system, config)`` pair.
        """
        runs = []
        for workload in workloads:
            for entry in systems:
                system, config = (entry if isinstance(entry, tuple)
                                  else (entry, DEFAULT_CONFIGS[entry]))
                runs.append(RunSpec(workload, system, config, scale=scale,
                                    params=params, policy=policy))
        return cls(name, tuple(runs))
