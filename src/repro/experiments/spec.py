"""Declarative run specifications.

A :class:`RunSpec` names one simulation -- *which workload, on which
system, in which machine configuration, at what scale, under which
parameters* -- as plain, hashable data.  Two specs that describe the
same simulation normalize to the same canonical form and therefore the
same :meth:`RunSpec.spec_hash`, which is what lets the
:class:`~repro.experiments.runner.Runner` deduplicate shared runs
(one 1P baseline serves Figure 4, Figure 5, and Table 1) and memoize
completed runs on disk.

An :class:`ExperimentSpec` is an ordered grid of RunSpecs -- the
declarative form of "a figure": Figure 4 is ``workloads x {1p, misp,
smp}``, Figure 7 is ``configs x loads``, and adding a scenario is
declaring one more RunSpec.

Systems are resolved purely through
:data:`repro.systems.SYSTEM_REGISTRY`: each backend owns its
configuration-notation rules (``canonical_config``) and its default
cycle budget, so registering a backend is all it takes for specs to
validate, canonicalize, and hash against it.  :data:`SYSTEMS` and
:data:`DEFAULT_CONFIGS` are live views over that registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.core.notation import FIGURE7_SEQUENCERS
from repro.errors import ConfigurationError
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.shredlib.runtime import QueuePolicy
from repro.systems import DEFAULT_CONFIGS, SYSTEM_REGISTRY, SYSTEMS
from repro.timing import TIMING_REGISTRY
from repro.workloads.runner import DEFAULT_LIMIT

__all__ = [
    "DEFAULT_CONFIGS", "FIGURE7_SEQUENCERS", "SYSTEMS", "SPEC_VERSION",
    "ExperimentSpec", "RunSpec",
]

#: bump to invalidate previously hashed specs after semantic changes
#: (2: timing-model identity + scoreboard sb_* params joined the hash)
SPEC_VERSION = 2


def _canonical_args(args: Any) -> tuple[tuple[str, Any], ...]:
    """Normalize factory kwargs to a sorted, hashable pair tuple."""
    if isinstance(args, Mapping):
        items = args.items()
    else:
        items = tuple(args)
    out = []
    for key, value in sorted(items):
        if not isinstance(key, str):
            raise ConfigurationError(f"workload arg name {key!r} not a string")
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ConfigurationError(
                f"workload arg {key}={value!r} is not a JSON scalar")
        out.append((key, value))
    return tuple(out)


@dataclass(frozen=True)
class RunSpec:
    """One simulation, as content-hashable plain data.

    Fields are normalized on construction so that equal simulations
    compare (and hash) equal:

    * ``system`` is resolved through the system registry and
      ``policy`` is lowercased and validated;
    * ``config`` is canonicalized by the backend's Figure 6 notation
      rules (``"1X8"`` -> ``"1x8"``, ``"smp1"`` on a plain CPU
      collapses ``smp`` to ``1p``, multiprogramming's ``"ideal"``
      resolves to the explicit per-load partition);
    * ``args`` (extra workload-factory kwargs, e.g. RayTracer's
      ``probe_pages``) become a sorted tuple of pairs.
    """

    workload: str
    system: str = "misp"
    config: str = ""
    scale: Optional[float] = None
    #: background single-threaded processes (multiprogramming systems)
    background: int = 0
    #: gang-scheduler queue policy ("fifo" | "lifo")
    policy: Union[str, QueuePolicy] = "fifo"
    params: MachineParams = DEFAULT_PARAMS
    limit: int = DEFAULT_LIMIT
    #: extra workload-factory kwargs, as a mapping or pair tuple
    args: Any = ()
    #: timing model pricing the run (a TIMING_REGISTRY name); part of
    #: the content hash, so a scoreboard run never aliases a fixed one
    timing_model: str = "fixed"

    def __post_init__(self) -> None:
        s = lambda field, value: object.__setattr__(self, field, value)
        backend = SYSTEM_REGISTRY.get(str(self.system).strip().lower())
        policy = (self.policy.value if isinstance(self.policy, QueuePolicy)
                  else str(self.policy).strip().lower())
        QueuePolicy(policy)  # validate
        s("policy", policy)
        timing = str(self.timing_model).strip().lower()
        TIMING_REGISTRY.get(timing)  # validate against the registry
        s("timing_model", timing)
        if self.scale is not None and self.scale <= 0:
            raise ConfigurationError(f"scale must be positive: {self.scale}")
        if self.background < 0:
            raise ConfigurationError("background must be >= 0")
        if self.background and not backend.supports_background:
            raise ConfigurationError(
                f"background processes are not supported by system "
                f"'{backend.name}'; use a multiprogramming system")
        if self.limit <= 0:
            raise ConfigurationError(f"limit must be positive: {self.limit}")
        if self.limit == DEFAULT_LIMIT and backend.default_limit != DEFAULT_LIMIT:
            # the untouched generic default means "the backend's own
            # horizon", so both drivers time out alike
            s("limit", backend.default_limit)
        s("args", _canonical_args(self.args))
        config = (self.config or backend.default_config).strip().lower()
        system, config = backend.canonical_config(config, self.background)
        s("system", system)
        s("config", config)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe canonical form (used for hashing and the cache)."""
        return {
            "workload": self.workload,
            "system": self.system,
            "config": self.config,
            "scale": self.scale,
            "background": self.background,
            "policy": self.policy,
            "limit": self.limit,
            "args": [list(pair) for pair in self.args],
            "params": dataclasses.asdict(self.params),
            "timing_model": self.timing_model,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        data = dict(data)
        params = MachineParams(**data.pop("params"))
        args = tuple((k, v) for k, v in data.pop("args", []))
        return cls(params=params, args=args, **data)

    def spec_hash(self) -> str:
        """Stable content hash of the canonical spec.

        Computed once per instance (frozen, so the digest cannot go
        stale) -- callers hash freely in dedup loops and lookups.
        """
        cached = self.__dict__.get("_spec_hash")
        if cached is None:
            payload = json.dumps({"version": SPEC_VERSION, **self.to_dict()},
                                 sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_spec_hash", cached)
        return cached

    def describe(self) -> str:
        extra = f"+{self.background}bg" if self.background else ""
        if self.timing_model != "fixed":
            extra += f"~{self.timing_model}"
        scale = f"@{self.scale:g}" if self.scale is not None else ""
        return f"{self.workload}{scale}/{self.system}:{self.config}{extra}"


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, ordered grid of :class:`RunSpec` members.

    Duplicate members are legal (grids are easier to declare that
    way); the Runner executes each *unique* simulation exactly once.
    """

    name: str
    runs: tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "runs", tuple(self.runs))

    def unique_runs(self) -> tuple[RunSpec, ...]:
        """Members deduplicated by content hash, first occurrence wins."""
        seen: dict[str, RunSpec] = {}
        for spec in self.runs:
            seen.setdefault(spec.spec_hash(), spec)
        return tuple(seen.values())

    def __len__(self) -> int:
        return len(self.runs)

    def __add__(self, other: "ExperimentSpec") -> "ExperimentSpec":
        return ExperimentSpec(f"{self.name}+{other.name}",
                              self.runs + other.runs)

    @classmethod
    def grid(cls, name: str, workloads: Sequence[str],
             systems: Iterable[Union[str, tuple[str, str]]] = ("1p", "misp", "smp"),
             *, scale: Optional[float] = None,
             params: MachineParams = DEFAULT_PARAMS,
             policy: Union[str, QueuePolicy] = "fifo",
             timing_model: str = "fixed") -> "ExperimentSpec":
        """Cross product ``workloads x systems``.

        Each ``systems`` entry is a system name (run in its default
        configuration) or an explicit ``(system, config)`` pair.
        """
        runs = []
        for workload in workloads:
            for entry in systems:
                system, config = (entry if isinstance(entry, tuple)
                                  else (entry, DEFAULT_CONFIGS[entry]))
                runs.append(RunSpec(workload, system, config, scale=scale,
                                    params=params, policy=policy,
                                    timing_model=timing_model))
        return cls(name, tuple(runs))
