"""Serializable run results.

:class:`~repro.workloads.runner.RunResult` holds the live
:class:`~repro.core.machine.Machine`, runtime, and OS thread -- ideal
for in-process inspection, but generators and engine callbacks make it
unpicklable, which blocks both multiprocessing and on-disk caching.
:class:`RunSummary` is the serialization split: the plain-data view of
a finished run (cycles, Table-1 event counts, proxy statistics,
utilization totals) that crosses process boundaries and round-trips
through JSON.

``RunSummary`` intentionally mirrors the accessors the analysis layer
uses on ``RunResult`` (``cycles``, ``workload``,
``serializing_events()``), so :func:`repro.analysis.table1.measured_row`
and :func:`repro.analysis.figure5.sensitivity_from_run` accept either.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from repro.sim.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunSpec
    from repro.workloads.multiprog import MultiprogResult
    from repro.workloads.runner import RunResult

#: Table 1's six event columns, in presentation order
EVENT_KEYS = ("oms_syscall", "oms_pf", "oms_timer", "oms_interrupt",
              "ams_syscall", "ams_pf")


@dataclass(frozen=True)
class ProxySummary:
    """Proxy-execution accounting (the firmware-feedback view)."""

    requests: int = 0
    page_faults: int = 0
    syscalls: int = 0
    total_latency: int = 0
    max_queue_depth: int = 0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class MemorySummary:
    """Per-level memory-hierarchy and TLB totals for one run.

    Per level, ``hits + misses`` equals the accesses that reached the
    level: every L1 miss becomes one L2 access, every L2 miss one
    flat-memory access.
    """

    l1_hits: int = 0
    l1_misses: int = 0
    #: L1 lines purged by the invalidate-on-write coherence protocol
    l1_invalidations: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    #: cross-L2 invalidations (needs more than one L2 domain: private
    #: per-core L2s, or shared per-processor L2s on a multi-processor)
    l2_invalidations: int = 0
    #: accesses served by the flat memory level (== l2_misses)
    mem_accesses: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    tlb_flushes: int = 0

    @property
    def accesses(self) -> int:
        """Total hierarchy accesses (data + instruction fetch)."""
        return self.l1_hits + self.l1_misses

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        refs = self.l2_hits + self.l2_misses
        return self.l2_hits / refs if refs else 0.0


@dataclass(frozen=True)
class UtilizationSummary:
    """Aggregate sequencer-utilization totals for one run."""

    oms_busy_cycles: int = 0
    ams_busy_cycles: int = 0
    ams_suspended_cycles: int = 0
    ops_executed: int = 0
    num_oms: int = 0
    num_ams: int = 0

    def ams_availability(self, cycles: int) -> float:
        """Fraction of AMS-cycles not lost to suspension."""
        if not self.num_ams or not cycles:
            return 1.0
        return 1.0 - self.ams_suspended_cycles / (self.num_ams * cycles)


@dataclass(frozen=True)
class RunSummary:
    """Plain-data outcome of one simulation (picklable, JSON-able)."""

    workload: str
    system: str
    config: str
    cycles: int
    scale: Optional[float] = None
    background: int = 0
    #: Table-1 event counts, in the six-column layout
    events: dict[str, int] = field(default_factory=dict)
    # per-instance defaults (a shared singleton default would alias
    # every summary onto one object)
    proxy: ProxySummary = field(default_factory=ProxySummary)
    utilization: UtilizationSummary = field(
        default_factory=UtilizationSummary)
    #: cache-hierarchy and TLB totals
    mem: MemorySummary = field(default_factory=MemorySummary)
    #: shreds still live at completion (0 = every shred joined)
    shreds_unjoined: int = 0
    #: legacy API calls the ShredLib shim translated (Table 2 runs)
    legacy_calls_translated: int = 0
    #: content hash of the RunSpec that produced this summary
    spec_hash: str = ""
    #: how the numbers were produced: "execute" (execution-driven) or
    #: "replay" (trace-driven re-pricing; see repro.sim.captrace)
    timing: str = "execute"
    #: which timing model priced the run (a repro.timing registry name;
    #: distinct from `timing`, which says execute-vs-replay)
    timing_model: str = "fixed"

    # -- RunResult-compatible accessors --------------------------------
    def serializing_events(self) -> dict[str, int]:
        """Counts in the paper's Table 1 layout."""
        return dict(self.events)

    @property
    def total_oms_events(self) -> int:
        return sum(self.events.get(k, 0) for k in EVENT_KEYS
                   if k.startswith("oms_"))

    @property
    def total_ams_events(self) -> int:
        return sum(self.events.get(k, 0) for k in EVENT_KEYS
                   if k.startswith("ams_"))

    # -- JSON round-trip (the on-disk cache format) --------------------
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSummary":
        data = dict(data)
        data["proxy"] = ProxySummary(**data.get("proxy", {}))
        data["utilization"] = UtilizationSummary(**data.get("utilization", {}))
        data["mem"] = MemorySummary(**data.get("mem", {}))
        data["events"] = {str(k): int(v)
                          for k, v in data.get("events", {}).items()}
        return cls(**data)


def _machine_totals(
        machine) -> tuple[ProxySummary, UtilizationSummary, MemorySummary]:
    ps = machine.proxy_stats
    proxy = ProxySummary(ps.requests, ps.page_faults, ps.syscalls,
                         ps.total_latency, ps.max_queue_depth)
    util = UtilizationSummary(
        oms_busy_cycles=sum(s.busy_cycles for s in machine.sequencers
                            if s.is_oms),
        ams_busy_cycles=sum(s.busy_cycles for s in machine.sequencers
                            if not s.is_oms),
        ams_suspended_cycles=sum(s.suspended_cycles
                                 for s in machine.sequencers if not s.is_oms),
        ops_executed=sum(s.ops_executed for s in machine.sequencers),
        num_oms=len(machine.oms_ids()),
        num_ams=len(machine.ams_ids()),
    )
    mem = MemorySummary(
        **machine.hierarchy.counters(),
        tlb_hits=sum(s.tlb.hits for s in machine.sequencers),
        tlb_misses=sum(s.tlb.misses for s in machine.sequencers),
        tlb_flushes=sum(s.tlb.flushes for s in machine.sequencers),
    )
    return proxy, util, mem


def summarize_run(result: "RunResult",
                  spec: Optional["RunSpec"] = None) -> RunSummary:
    """Flatten a live :class:`RunResult` into a :class:`RunSummary`."""
    proxy, util, mem = _machine_totals(result.machine)
    shim = getattr(result.runtime, "legacy_shim", None)
    return RunSummary(
        # label with the spec's registry name (not the built spec's,
        # which args like probe_pages may decorate) so a summary always
        # matches the RunSpec that produced it
        workload=spec.workload if spec else result.workload,
        system=result.system,
        config=result.config,
        cycles=result.cycles,
        scale=spec.scale if spec else None,
        background=getattr(result, "background", 0),
        events=result.serializing_events(),
        proxy=proxy,
        utilization=util,
        mem=mem,
        shreds_unjoined=result.runtime.active,
        legacy_calls_translated=(shim.calls_translated if shim else 0),
        spec_hash=spec.spec_hash() if spec else "",
        timing_model=(spec.timing_model if spec
                      else result.machine.timing.canonical_name()),
    )


def summarize_multiprog(result: Union["MultiprogResult", "RunResult"],
                        spec: Optional["RunSpec"] = None) -> RunSummary:
    """Flatten a multiprogramming run (Figure 7) into a summary.

    Accepts the legacy :class:`MultiprogResult` (whose cycle count is
    ``raytracer_cycles``) or the unified
    :class:`~repro.workloads.runner.RunResult` a multiprog
    :class:`~repro.systems.session.Session` returns.
    """
    machine = result.machine
    cycles = getattr(result, "raytracer_cycles", None)
    if cycles is None:
        cycles = result.cycles
    trace = machine.trace
    oms_ids, ams_ids = machine.oms_ids(), machine.ams_ids()
    events = {
        "oms_syscall": trace.total(EventKind.SYSCALL, oms_ids),
        "oms_pf": trace.total(EventKind.PAGE_FAULT, oms_ids),
        "oms_timer": trace.total(EventKind.TIMER, oms_ids),
        "oms_interrupt": trace.total(EventKind.INTERRUPT, oms_ids),
        "ams_syscall": trace.total(EventKind.SYSCALL, ams_ids),
        "ams_pf": trace.total(EventKind.PAGE_FAULT, ams_ids),
    }
    proxy, util, mem = _machine_totals(machine)
    return RunSummary(
        workload=spec.workload if spec else getattr(result, "workload",
                                                    "RayTracer"),
        system=getattr(result, "system", "multiprog"),
        config=result.config,
        cycles=cycles,
        scale=spec.scale if spec else None,
        background=result.background,
        events=events,
        proxy=proxy,
        utilization=util,
        mem=mem,
        spec_hash=spec.spec_hash() if spec else "",
        timing_model=(spec.timing_model if spec
                      else machine.timing.canonical_name()),
    )
