"""Execute experiment grids: the batch facade over ``repro.service``.

The :class:`Runner` takes :class:`~repro.experiments.spec.RunSpec`
grids and returns :class:`~repro.experiments.summary.RunSummary`
values, guaranteeing that each *unique* simulation executes exactly
once per process (in-memory memo), at most once per machine when an
on-disk store directory is configured, and that independent runs
execute concurrently in worker processes.

Since the layered refactor the Runner owns no mechanism of its own:
it composes the :mod:`repro.service` layers into a resolver chain ::

    memo  ->  store  ->  executor
    (MemoLayer) (ResultStore     (BatchExecutor driven by a
                 via StoreLayer)  Direct/ReplayPlanner)

and maps the chain's outcome onto its historical :class:`RunnerStats`.
The concurrent, streaming face of the same layers is
:class:`repro.service.ExperimentService`.

With ``replay=True`` (or ``REPRO_REPLAY=1``) the planner additionally
exploits the trace-driven fast path (:mod:`repro.sim.captrace`): specs
that differ only in replay-safe timing parameters form a *replay
class*, and each class runs as one execution-driven capture plus cheap
trace replays -- a figure's ``mem_cost``/``signal_cost`` sweep
simulates once instead of once per point.  Replay summaries carry
``timing="replay"`` and are stored under a distinct key, so they never
alias execution-driven numbers.
"""

from __future__ import annotations

import itertools
import os
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ExperimentExecutionError
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.experiments.summary import RunSummary
from repro.obs.metrics import MetricsRegistry, StatsView, get_registry
# execution entry points live in the service layer now; re-exported
# here for backwards compatibility (and for pool workers)
from repro.service.executor import (        # noqa: F401
    BatchExecutor, execute, execute_captured, execute_replay_group,
)
from repro.service.planner import planner_for, replay_class  # noqa: F401
from repro.service.resolver import MemoLayer, ResolverChain, StoreLayer
from repro.service.store import ResultStore, store_from_env


_runner_ids = itertools.count()


class RunnerStats(StatsView):
    """Where each requested run came from.

    A view over ``repro_runner_events_total{runner=...,event=...}`` in
    the metrics registry (see :class:`repro.obs.metrics.StatsView`).
    """

    #: requested -- specs submitted; executed -- execution-driven
    #: simulations (each replay class executes exactly one capture; its
    #: trace-driven members count in ``replayed``, so ``executed +
    #: replayed`` is the number of summaries produced); deduplicated --
    #: duplicate grid members folded onto a shared run; memo_hits --
    #: served from this Runner's in-memory memo; cache_hits -- served
    #: from the on-disk store; captured -- executed runs that also
    #: recorded a replayable trace; replayed -- summaries produced by
    #: trace replay instead of execution; failed -- specs whose
    #: simulation raised (a failed replay class counts every member;
    #: see :class:`~repro.errors.ExperimentExecutionError`)
    FIELDS = ("requested", "executed", "deduplicated", "memo_hits",
              "cache_hits", "captured", "replayed", "failed")

    __slots__ = ("instance",)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        family = (registry if registry is not None
                  else get_registry()).counter(
            "repro_runner_events_total",
            "Runner resolution outcomes", labels=("runner", "event"))
        if instance is None:
            instance = f"runner-{next(_runner_ids)}"
        object.__setattr__(self, "instance", instance)
        super().__init__({field: family.labels(runner=instance, event=field)
                          for field in self.FIELDS})

    def __str__(self) -> str:
        extra = (f" ({self.captured} captured, {self.replayed} replayed)"
                 if self.captured or self.replayed else "")
        if self.failed:
            extra += f" [{self.failed} failed]"
        return (f"{self.requested} requested = "
                f"{self.executed + self.replayed} executed "
                f"+ {self.deduplicated} deduplicated "
                f"+ {self.memo_hits} memoized + {self.cache_hits} cached"
                f"{extra}")


class ExperimentResult:
    """Summaries of one executed :class:`ExperimentSpec`.

    Index with the member RunSpec (``result[spec]``) -- lookup is by
    content hash, so any spec describing the same simulation resolves.
    """

    def __init__(self, experiment: ExperimentSpec,
                 summaries: dict[str, RunSummary]) -> None:
        self.experiment = experiment
        self._by_hash = summaries

    def __getitem__(self, spec: RunSpec) -> RunSummary:
        try:
            return self._by_hash[spec.spec_hash()]
        except KeyError:
            raise KeyError(f"no run for {spec.describe()}") from None

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.spec_hash() in self._by_hash

    def __len__(self) -> int:
        return len(self._by_hash)

    def summaries(self) -> list[RunSummary]:
        """Summaries in experiment order (duplicates included)."""
        return [self[spec] for spec in self.experiment.runs]

    def find(self, **attrs) -> RunSummary:
        """The unique summary whose fields match ``attrs``."""
        matches = [s for s in self._by_hash.values()
                   if all(getattr(s, k) == v for k, v in attrs.items())]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} summaries match {attrs}")
        return matches[0]


class Runner:
    """Deduplicating, caching, parallel experiment executor.

    * duplicate specs within and across calls run once (in-memory memo);
    * with ``cache_dir`` (or an explicit ``store``), completed runs
      persist on disk keyed by spec hash in a content-addressed
      :class:`~repro.service.store.ResultStore`, so re-invocations
      (new processes) are served from the store;
    * independent specs execute in parallel worker processes via
      :class:`concurrent.futures.ProcessPoolExecutor` (``parallel=False``
      or ``max_workers=1`` forces in-process serial execution);
    * with ``replay=True``, specs differing only in replay-safe timing
      parameters share one execution-driven capture and replay the
      rest through :class:`~repro.sim.captrace.ReplayMachine`
      (replayed summaries carry ``timing="replay"``).

    The pool is deliberately per-batch: batches run for seconds to
    minutes, so spawn cost is noise, and a long-lived Runner (the
    process-wide default) never holds idle worker processes between
    experiments.  A failing simulation neither discards the rest of
    its batch (completed runs are memoized and stored first) nor
    shadows other failures: one
    :class:`~repro.errors.ExperimentExecutionError` names every failed
    spec, so a retry only re-runs what failed.
    """

    def __init__(self, cache_dir: Optional[Union[str, os.PathLike]] = None,
                 max_workers: Optional[int] = None,
                 parallel: bool = True,
                 replay: bool = False,
                 store: Optional[ResultStore] = None,
                 registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        if store is None and cache_dir:
            store = ResultStore(cache_dir, registry=registry,
                                instance=instance)
        #: the on-disk layer (``cache`` is the historical alias)
        self.store = self.cache = store
        self.max_workers = max_workers or os.cpu_count() or 1
        self.parallel = parallel and self.max_workers > 1
        self.replay = replay
        self.stats = RunnerStats(registry=registry, instance=instance)
        self._memo = MemoLayer()
        self._executor = BatchExecutor(planner_for(replay),
                                       max_workers=self.max_workers,
                                       parallel=self.parallel)
        layers = [self._memo]
        if store is not None:
            layers.append(StoreLayer(store, replay=replay))
        layers.append(self._executor)
        self._chain = ResolverChain(layers)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunSummary:
        """Run (or recall) a single spec."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Iterable[RunSpec]) -> list[RunSummary]:
        """Run a grid; returns summaries in input order.

        Each unique simulation is resolved once -- memo, then store,
        then execution -- and duplicates share the result.
        """
        specs = list(specs)
        self.stats.requested += len(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_hash(), spec)
        self.stats.deduplicated += len(specs) - len(unique)

        outcome = self._chain.resolve(list(unique.values()))
        self.stats.memo_hits += outcome.hits_by_layer.get("memo", 0)
        self.stats.cache_hits += outcome.hits_by_layer.get("store", 0)
        executed = self._executor.last
        self.stats.executed += executed.executed
        self.stats.captured += executed.captured
        self.stats.replayed += executed.replayed
        self.stats.failed += executed.failed
        if outcome.failures:
            raise ExperimentExecutionError(outcome.failures)
        return [outcome.summaries[spec.spec_hash()] for spec in specs]

    def run_experiment(self, experiment: ExperimentSpec) -> ExperimentResult:
        """Run every member of an experiment grid."""
        self.run_many(experiment.runs)
        by_hash = {spec.spec_hash(): self._memo.get(spec.spec_hash())
                   for spec in experiment.runs}
        return ExperimentResult(experiment, by_hash)


# ----------------------------------------------------------------------
# Process-wide default runner (shared memo across analysis modules)
# ----------------------------------------------------------------------
_default_runner: Optional[Runner] = None


def runner_from_env() -> Runner:
    """A Runner configured from the documented environment knobs:
    ``REPRO_CACHE_DIR`` enables the on-disk store
    (``REPRO_STORE_MAX_ENTRIES`` / ``REPRO_STORE_MAX_BYTES`` bound it),
    ``REPRO_MAX_WORKERS`` bounds parallelism, ``REPRO_SERIAL=1`` forces
    serial in-process execution, ``REPRO_REPLAY=1`` enables the
    capture-once/replay-rest fast path for timing-only sweeps."""
    max_workers = os.environ.get("REPRO_MAX_WORKERS")
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return Runner(
        store=store_from_env(cache_dir) if cache_dir else None,
        max_workers=int(max_workers) if max_workers else None,
        parallel=os.environ.get("REPRO_SERIAL", "") not in ("1", "true"),
        replay=os.environ.get("REPRO_REPLAY", "") in ("1", "true"),
    )


def default_runner() -> Runner:
    """The process-wide shared Runner (built via :func:`runner_from_env`).

    Sharing one memo across the analysis drivers is what lets a single
    1P baseline serve Figure 4, Figure 5, and Table 1 in one process.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = runner_from_env()
    return _default_runner


def set_default_runner(runner: Optional[Runner]) -> None:
    """Replace (or with None, reset) the process-wide default Runner."""
    global _default_runner
    _default_runner = runner
