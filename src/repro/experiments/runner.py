"""Execute experiment grids: dedup, parallelism, and memoization.

The :class:`Runner` takes :class:`~repro.experiments.spec.RunSpec`
grids and returns :class:`~repro.experiments.summary.RunSummary`
values, guaranteeing that each *unique* simulation executes exactly
once per process (in-memory memo), at most once per machine when an
on-disk cache directory is configured, and that independent runs
execute concurrently in worker processes.

:func:`execute` is the single entry point that maps a spec to a
finished summary; it is a module-level function so
``ProcessPoolExecutor`` can ship it to workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import repro.workloads  # noqa: F401  -- populates the workload registry
from repro.experiments.cache import ResultCache
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.experiments.summary import RunSummary
from repro.systems import Session, get_system
from repro.workloads.base import REGISTRY


def execute(spec: RunSpec) -> RunSummary:
    """Run one spec to completion and return its plain-data summary.

    Deterministic: the simulation is a pure function of the spec, so
    equal specs produce equal summaries in any process.  The system is
    resolved purely through :data:`repro.systems.SYSTEM_REGISTRY`, so
    any registered backend -- built-in or custom -- executes the same
    way.  (Backends registered at runtime exist only in the
    registering process; run them through a serial Runner.)
    """
    backend = get_system(spec.system)
    workload = REGISTRY.build(spec.workload, spec.scale, **dict(spec.args))
    run = (Session(backend, spec.config)
           .params(spec.params).policy(spec.policy).limit(spec.limit)
           .background(spec.background).run(workload))
    return backend.summarize(run, spec)


@dataclass
class RunnerStats:
    """Where each requested run came from."""

    requested: int = 0
    #: simulations actually executed
    executed: int = 0
    #: duplicate grid members folded onto a shared run
    deduplicated: int = 0
    #: served from this Runner's in-memory memo
    memo_hits: int = 0
    #: served from the on-disk cache
    cache_hits: int = 0

    def __str__(self) -> str:
        return (f"{self.requested} requested = {self.executed} executed "
                f"+ {self.deduplicated} deduplicated "
                f"+ {self.memo_hits} memoized + {self.cache_hits} cached")


class ExperimentResult:
    """Summaries of one executed :class:`ExperimentSpec`.

    Index with the member RunSpec (``result[spec]``) -- lookup is by
    content hash, so any spec describing the same simulation resolves.
    """

    def __init__(self, experiment: ExperimentSpec,
                 summaries: dict[str, RunSummary]) -> None:
        self.experiment = experiment
        self._by_hash = summaries

    def __getitem__(self, spec: RunSpec) -> RunSummary:
        try:
            return self._by_hash[spec.spec_hash()]
        except KeyError:
            raise KeyError(f"no run for {spec.describe()}") from None

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.spec_hash() in self._by_hash

    def __len__(self) -> int:
        return len(self._by_hash)

    def summaries(self) -> list[RunSummary]:
        """Summaries in experiment order (duplicates included)."""
        return [self[spec] for spec in self.experiment.runs]

    def find(self, **attrs) -> RunSummary:
        """The unique summary whose fields match ``attrs``."""
        matches = [s for s in self._by_hash.values()
                   if all(getattr(s, k) == v for k, v in attrs.items())]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} summaries match {attrs}")
        return matches[0]


class Runner:
    """Deduplicating, caching, parallel experiment executor.

    * duplicate specs within and across calls run once (in-memory memo);
    * with ``cache_dir``, completed runs persist on disk keyed by spec
      hash, so re-invocations (new processes) are served from cache;
    * independent specs execute in parallel worker processes via
      :class:`concurrent.futures.ProcessPoolExecutor` (``parallel=False``
      or ``max_workers=1`` forces in-process serial execution).
    """

    def __init__(self, cache_dir: Optional[Union[str, os.PathLike]] = None,
                 max_workers: Optional[int] = None,
                 parallel: bool = True) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.max_workers = max_workers or os.cpu_count() or 1
        self.parallel = parallel and self.max_workers > 1
        self.stats = RunnerStats()
        self._memo: dict[str, RunSummary] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunSummary:
        """Run (or recall) a single spec."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Iterable[RunSpec]) -> list[RunSummary]:
        """Run a grid; returns summaries in input order.

        Each unique simulation is resolved once -- memo, then disk
        cache, then execution -- and duplicates share the result.
        """
        specs = list(specs)
        self.stats.requested += len(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_hash(), spec)
        self.stats.deduplicated += len(specs) - len(unique)

        to_run: list[RunSpec] = []
        for key, spec in unique.items():
            if key in self._memo:
                self.stats.memo_hits += 1
                continue
            if self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    self._memo[key] = hit
                    self.stats.cache_hits += 1
                    continue
            to_run.append(spec)
        self._execute_batch(to_run)
        return [self._memo[spec.spec_hash()] for spec in specs]

    def run_experiment(self, experiment: ExperimentSpec) -> ExperimentResult:
        """Run every member of an experiment grid."""
        self.run_many(experiment.runs)
        by_hash = {spec.spec_hash(): self._memo[spec.spec_hash()]
                   for spec in experiment.runs}
        return ExperimentResult(experiment, by_hash)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_batch(self, specs: Sequence[RunSpec]) -> None:
        """Execute specs, storing each finished summary as it lands.

        One failing simulation does not discard the rest of the batch:
        completed runs are memoized (and cached) before the first
        failure re-raises, so a retry only re-runs what failed.

        The pool is deliberately per-batch: batches run for seconds to
        minutes, so spawn cost is noise, and a long-lived Runner (the
        process-wide default) never holds idle worker processes
        between experiments.
        """
        if not specs:
            return
        failure: Optional[BaseException] = None
        if self.parallel and len(specs) > 1:
            workers = min(self.max_workers, len(specs))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(execute, spec): spec
                           for spec in specs}
                for future in as_completed(futures):
                    try:
                        self._store(futures[future], future.result())
                    except Exception as exc:
                        failure = failure or exc
        else:
            for spec in specs:
                try:
                    self._store(spec, execute(spec))
                except Exception as exc:
                    failure = failure or exc
        if failure is not None:
            raise failure

    def _store(self, spec: RunSpec, summary: RunSummary) -> None:
        self.stats.executed += 1
        self._memo[spec.spec_hash()] = summary
        if self.cache is not None:
            self.cache.put(spec, summary)


# ----------------------------------------------------------------------
# Process-wide default runner (shared memo across analysis modules)
# ----------------------------------------------------------------------
_default_runner: Optional[Runner] = None


def runner_from_env() -> Runner:
    """A Runner configured from the documented environment knobs:
    ``REPRO_CACHE_DIR`` enables the on-disk cache, ``REPRO_MAX_WORKERS``
    bounds parallelism, ``REPRO_SERIAL=1`` forces serial in-process
    execution."""
    max_workers = os.environ.get("REPRO_MAX_WORKERS")
    return Runner(
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        max_workers=int(max_workers) if max_workers else None,
        parallel=os.environ.get("REPRO_SERIAL", "") not in ("1", "true"),
    )


def default_runner() -> Runner:
    """The process-wide shared Runner (built via :func:`runner_from_env`).

    Sharing one memo across the analysis drivers is what lets a single
    1P baseline serve Figure 4, Figure 5, and Table 1 in one process.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = runner_from_env()
    return _default_runner


def set_default_runner(runner: Optional[Runner]) -> None:
    """Replace (or with None, reset) the process-wide default Runner."""
    global _default_runner
    _default_runner = runner
