"""Execute experiment grids: dedup, parallelism, and memoization.

The :class:`Runner` takes :class:`~repro.experiments.spec.RunSpec`
grids and returns :class:`~repro.experiments.summary.RunSummary`
values, guaranteeing that each *unique* simulation executes exactly
once per process (in-memory memo), at most once per machine when an
on-disk cache directory is configured, and that independent runs
execute concurrently in worker processes.

:func:`execute` is the single entry point that maps a spec to a
finished summary; it is a module-level function so
``ProcessPoolExecutor`` can ship it to workers.

With ``replay=True`` (or ``REPRO_REPLAY=1``) the Runner additionally
exploits the trace-driven fast path (:mod:`repro.sim.captrace`): specs
that differ only in replay-safe timing parameters form a *replay
class*, and each class runs as one execution-driven capture plus cheap
trace replays -- a figure's ``mem_cost``/``signal_cost`` sweep
simulates once instead of once per point.  Replay summaries carry
``timing="replay"`` and are cached under a distinct key, so they never
alias execution-driven numbers.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import repro.workloads  # noqa: F401  -- populates the workload registry
from repro.experiments.cache import ResultCache
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.experiments.summary import RunSummary
from repro.sim.captrace import REPLAY_SAFE_FIELDS, ReplayMachine
from repro.systems import Session, get_system
from repro.timing import get_timing
from repro.workloads.base import REGISTRY


def execute(spec: RunSpec) -> RunSummary:
    """Run one spec to completion and return its plain-data summary.

    Deterministic: the simulation is a pure function of the spec, so
    equal specs produce equal summaries in any process.  The system is
    resolved purely through :data:`repro.systems.SYSTEM_REGISTRY`, so
    any registered backend -- built-in or custom -- executes the same
    way.  (Backends registered at runtime exist only in the
    registering process; run them through a serial Runner.)
    """
    backend = get_system(spec.system)
    workload = REGISTRY.build(spec.workload, spec.scale, **dict(spec.args))
    run = (Session(backend, spec.config)
           .params(spec.params).policy(spec.policy).limit(spec.limit)
           .background(spec.background).timing(spec.timing_model)
           .run(workload))
    return backend.summarize(run, spec)


def execute_captured(spec: RunSpec):
    """Run one spec execution-driven with trace capture.

    Returns ``(summary, trace)`` where ``trace`` is a
    :class:`~repro.sim.captrace.CapturedTrace` with the summary
    attached as its snapshot (everything picklable, so workers can
    ship it back).
    """
    backend = get_system(spec.system)
    workload = REGISTRY.build(spec.workload, spec.scale, **dict(spec.args))
    run = (Session(backend, spec.config)
           .params(spec.params).policy(spec.policy).limit(spec.limit)
           .background(spec.background).timing(spec.timing_model)
           .capture().run(workload))
    summary = backend.summarize(run, spec)
    trace = run.trace
    trace.snapshot = summary
    return summary, trace


def execute_replay_group(specs: Sequence[RunSpec]) -> list[RunSummary]:
    """Run one replay class: capture ``specs[0]``, replay the rest.

    Returns summaries in input order; the first is execution-driven
    (``timing="execute"``), the rest trace-driven re-pricings of it
    (``timing="replay"``).
    """
    summary, trace = execute_captured(specs[0])
    replayer = ReplayMachine(trace)
    return [summary] + [replayer.run(spec=spec) for spec in specs[1:]]


def replay_class(spec: RunSpec) -> Optional[str]:
    """Grouping key for specs replayable from one shared capture.

    Two specs share a class when they differ only in
    :data:`~repro.sim.captrace.REPLAY_SAFE_FIELDS` timing parameters.
    Returns None when the spec's backend cannot capture at all, or
    when its timing model prices ops from occupancy (only the
    constant-cost ``fixed`` model records replayable decompositions).
    """
    if not get_system(spec.system).supports_capture:
        return None
    if not get_timing(spec.timing_model).supports_capture:
        return None
    ident = spec.to_dict()
    ident["params"] = {k: v for k, v in ident["params"].items()
                      if k not in REPLAY_SAFE_FIELDS}
    return json.dumps(ident, sort_keys=True)


@dataclass
class RunnerStats:
    """Where each requested run came from."""

    requested: int = 0
    #: simulations actually executed (execution-driven; captures included)
    executed: int = 0
    #: duplicate grid members folded onto a shared run
    deduplicated: int = 0
    #: served from this Runner's in-memory memo
    memo_hits: int = 0
    #: served from the on-disk cache
    cache_hits: int = 0
    #: executed runs that also recorded a replayable trace
    captured: int = 0
    #: summaries produced by trace replay instead of execution
    replayed: int = 0

    def __str__(self) -> str:
        extra = (f" ({self.captured} captured, {self.replayed} replayed)"
                 if self.captured or self.replayed else "")
        return (f"{self.requested} requested = "
                f"{self.executed + self.replayed} executed "
                f"+ {self.deduplicated} deduplicated "
                f"+ {self.memo_hits} memoized + {self.cache_hits} cached"
                f"{extra}")


class ExperimentResult:
    """Summaries of one executed :class:`ExperimentSpec`.

    Index with the member RunSpec (``result[spec]``) -- lookup is by
    content hash, so any spec describing the same simulation resolves.
    """

    def __init__(self, experiment: ExperimentSpec,
                 summaries: dict[str, RunSummary]) -> None:
        self.experiment = experiment
        self._by_hash = summaries

    def __getitem__(self, spec: RunSpec) -> RunSummary:
        try:
            return self._by_hash[spec.spec_hash()]
        except KeyError:
            raise KeyError(f"no run for {spec.describe()}") from None

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.spec_hash() in self._by_hash

    def __len__(self) -> int:
        return len(self._by_hash)

    def summaries(self) -> list[RunSummary]:
        """Summaries in experiment order (duplicates included)."""
        return [self[spec] for spec in self.experiment.runs]

    def find(self, **attrs) -> RunSummary:
        """The unique summary whose fields match ``attrs``."""
        matches = [s for s in self._by_hash.values()
                   if all(getattr(s, k) == v for k, v in attrs.items())]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} summaries match {attrs}")
        return matches[0]


class Runner:
    """Deduplicating, caching, parallel experiment executor.

    * duplicate specs within and across calls run once (in-memory memo);
    * with ``cache_dir``, completed runs persist on disk keyed by spec
      hash, so re-invocations (new processes) are served from cache;
    * independent specs execute in parallel worker processes via
      :class:`concurrent.futures.ProcessPoolExecutor` (``parallel=False``
      or ``max_workers=1`` forces in-process serial execution);
    * with ``replay=True``, specs differing only in replay-safe timing
      parameters share one execution-driven capture and replay the
      rest through :class:`~repro.sim.captrace.ReplayMachine`
      (replayed summaries carry ``timing="replay"``).
    """

    def __init__(self, cache_dir: Optional[Union[str, os.PathLike]] = None,
                 max_workers: Optional[int] = None,
                 parallel: bool = True,
                 replay: bool = False) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.max_workers = max_workers or os.cpu_count() or 1
        self.parallel = parallel and self.max_workers > 1
        self.replay = replay
        self.stats = RunnerStats()
        self._memo: dict[str, RunSummary] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunSummary:
        """Run (or recall) a single spec."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Iterable[RunSpec]) -> list[RunSummary]:
        """Run a grid; returns summaries in input order.

        Each unique simulation is resolved once -- memo, then disk
        cache, then execution -- and duplicates share the result.
        """
        specs = list(specs)
        self.stats.requested += len(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_hash(), spec)
        self.stats.deduplicated += len(specs) - len(unique)

        to_run: list[RunSpec] = []
        for key, spec in unique.items():
            if key in self._memo:
                self.stats.memo_hits += 1
                continue
            if self.cache is not None:
                # execution-driven entries are exact, so they satisfy
                # either mode; a replay entry only satisfies replay mode
                hit = self.cache.get(spec)
                if hit is None and self.replay:
                    hit = self.cache.get(spec, timing="replay")
                if hit is not None:
                    self._memo[key] = hit
                    self.stats.cache_hits += 1
                    continue
            to_run.append(spec)
        self._execute_batch(to_run)
        return [self._memo[spec.spec_hash()] for spec in specs]

    def run_experiment(self, experiment: ExperimentSpec) -> ExperimentResult:
        """Run every member of an experiment grid."""
        self.run_many(experiment.runs)
        by_hash = {spec.spec_hash(): self._memo[spec.spec_hash()]
                   for spec in experiment.runs}
        return ExperimentResult(experiment, by_hash)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_batch(self, specs: Sequence[RunSpec]) -> None:
        """Execute specs, storing each finished summary as it lands.

        One failing simulation does not discard the rest of the batch:
        completed runs are memoized (and cached) before the first
        failure re-raises, so a retry only re-runs what failed.

        The pool is deliberately per-batch: batches run for seconds to
        minutes, so spawn cost is noise, and a long-lived Runner (the
        process-wide default) never holds idle worker processes
        between experiments.
        """
        if not specs:
            return
        tasks = self._plan_tasks(specs)
        failure: Optional[BaseException] = None
        if self.parallel and len(tasks) > 1:
            workers = min(self.max_workers, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for group in tasks:
                    if len(group) == 1:
                        futures[pool.submit(execute, group[0])] = group
                    else:
                        futures[pool.submit(execute_replay_group,
                                            group)] = group
                for future in as_completed(futures):
                    group = futures[future]
                    try:
                        result = future.result()
                    except Exception as exc:
                        failure = failure or exc
                        continue
                    self._store_group(group, result if len(group) > 1
                                      else [result])
        else:
            for group in tasks:
                try:
                    result = (execute_replay_group(group)
                              if len(group) > 1 else [execute(group[0])])
                except Exception as exc:
                    failure = failure or exc
                    continue
                self._store_group(group, result)
        if failure is not None:
            raise failure

    def _plan_tasks(self, specs: Sequence[RunSpec]) -> list[list[RunSpec]]:
        """Partition specs into pool tasks.

        Without replay, every spec is its own task.  With replay,
        specs in the same replay class become one multi-spec task
        (capture the first, replay the rest); classes of one -- and
        specs whose backend cannot capture -- stay singleton
        execution-driven tasks.
        """
        if not self.replay:
            return [[spec] for spec in specs]
        groups: dict[Optional[str], list[RunSpec]] = {}
        tasks: list[list[RunSpec]] = []
        for spec in specs:
            key = replay_class(spec)
            if key is None:
                tasks.append([spec])
            else:
                groups.setdefault(key, []).append(spec)
        tasks.extend(groups.values())
        return tasks

    def _store_group(self, group: Sequence[RunSpec],
                     summaries: Sequence[RunSummary]) -> None:
        for spec, summary in zip(group, summaries):
            self._memo[spec.spec_hash()] = summary
            if self.cache is not None:
                self.cache.put(spec, summary)
        self.stats.executed += 1      # group[0] always executes
        if len(group) > 1:
            self.stats.captured += 1
            self.stats.replayed += len(group) - 1


# ----------------------------------------------------------------------
# Process-wide default runner (shared memo across analysis modules)
# ----------------------------------------------------------------------
_default_runner: Optional[Runner] = None


def runner_from_env() -> Runner:
    """A Runner configured from the documented environment knobs:
    ``REPRO_CACHE_DIR`` enables the on-disk cache, ``REPRO_MAX_WORKERS``
    bounds parallelism, ``REPRO_SERIAL=1`` forces serial in-process
    execution, ``REPRO_REPLAY=1`` enables the capture-once/replay-rest
    fast path for timing-only sweeps."""
    max_workers = os.environ.get("REPRO_MAX_WORKERS")
    return Runner(
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        max_workers=int(max_workers) if max_workers else None,
        parallel=os.environ.get("REPRO_SERIAL", "") not in ("1", "true"),
        replay=os.environ.get("REPRO_REPLAY", "") in ("1", "true"),
    )


def default_runner() -> Runner:
    """The process-wide shared Runner (built via :func:`runner_from_env`).

    Sharing one memo across the analysis drivers is what lets a single
    1P baseline serve Figure 4, Figure 5, and Table 1 in one process.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = runner_from_env()
    return _default_runner


def set_default_runner(runner: Optional[Runner]) -> None:
    """Replace (or with None, reset) the process-wide default Runner."""
    global _default_runner
    _default_runner = runner
