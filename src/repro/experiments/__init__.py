"""Experiment orchestration: declarative run specs, a deduplicating
parallel Runner, and serializable run summaries.

The subsystem separates *what to simulate* from *how it executes*:

* :class:`RunSpec` -- one simulation (workload x system x config x
  params x scale) as content-hashable plain data;
* :class:`ExperimentSpec` -- a named grid of RunSpecs (a figure);
* :class:`Runner` -- executes grids with shared-run deduplication,
  process-pool parallelism, and an on-disk result cache;
* :class:`RunSummary` -- the plain-data, picklable result that crosses
  process boundaries (the live :class:`~repro.workloads.runner.RunResult`
  stays in-process).

Systems are resolved through :data:`repro.systems.SYSTEM_REGISTRY`:
``SYSTEMS`` and ``DEFAULT_CONFIGS`` are live views over it, and
registering a :class:`~repro.systems.base.SystemBackend` is all it
takes to make a new system spec-able, grid-able, and cacheable.

Quick start::

    from repro.experiments import ExperimentSpec, Runner

    exp = ExperimentSpec.grid("demo", ["RayTracer", "gauss"],
                              systems=("1p", "misp", "smp"), scale=0.1)
    runner = Runner(cache_dir="~/.cache/repro")
    result = runner.run_experiment(exp)
    for summary in result.summaries():
        print(summary.workload, summary.system, summary.cycles)
"""

from repro.experiments.cache import CACHE_VERSION, ResultCache
from repro.experiments.runner import (
    ExperimentResult, Runner, RunnerStats, default_runner, execute,
    execute_captured, execute_replay_group, replay_class,
    runner_from_env, set_default_runner,
)
from repro.experiments.spec import (
    DEFAULT_CONFIGS, FIGURE7_SEQUENCERS, SYSTEMS, ExperimentSpec, RunSpec,
)
from repro.experiments.summary import (
    EVENT_KEYS, MemorySummary, ProxySummary, RunSummary,
    UtilizationSummary, summarize_multiprog, summarize_run,
)

__all__ = [
    "CACHE_VERSION", "ResultCache", "ExperimentResult", "Runner",
    "RunnerStats", "default_runner", "execute", "execute_captured",
    "execute_replay_group", "replay_class", "runner_from_env",
    "set_default_runner",
    "DEFAULT_CONFIGS", "FIGURE7_SEQUENCERS", "SYSTEMS", "ExperimentSpec",
    "RunSpec", "EVENT_KEYS", "MemorySummary", "ProxySummary", "RunSummary",
    "UtilizationSummary", "summarize_multiprog", "summarize_run",
]
