"""Content-addressed result store: the durable layer of the service.

The :class:`ResultStore` grows the old spec-hash disk cache into a
proper content-addressed store.  Entries are keyed by
:meth:`RunSpec.spec_hash` (plus timing identity), one JSON file per
entry, written atomically (temp file + ``os.replace``) so concurrent
writers -- parallel Runner workers, several services sharing one
directory, or two simultaneous invocations -- can only ever race to
write identical content.

On top of the old cache behaviour the store adds:

* **versioning** -- every payload carries :data:`STORE_VERSION`;
  entries written under another version read as misses and are
  overwritten in place on the next put;
* **eviction** -- optional ``max_entries`` / ``max_bytes`` bounds,
  enforced least-recently-used (reads refresh an entry's mtime, so
  recency survives process restarts);
* **integrity** -- unreadable or mis-addressed entries are counted and
  *quarantined* (renamed ``<name>.corrupt``) instead of silently
  swallowed, orphaned ``*.tmp`` files from crashed writers are
  reclaimed on init / :meth:`clear` / :meth:`sweep`, and
  :meth:`sweep` re-validates every entry on demand;
* **metrics** -- hit / miss / corrupt / evict counters exposed as a
  :class:`StoreStats` snapshot, so a serving deployment can report its
  cache hit rate.

Timing identity is part of the key: an execution-driven summary lives
in ``<spec_hash>.json``, a trace-driven replay summary (see
:mod:`repro.sim.captrace`) in ``<spec_hash>.replay.json``, and each
entry also records its ``timing`` in the payload, so a replay summary
can never alias the execution-driven numbers for the same spec.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.obs.metrics import MetricsRegistry, StatsView, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    # imported lazily at runtime: repro.experiments imports this module
    # (ResultCache is a ResultStore), so a top-level import would cycle
    from repro.experiments.spec import RunSpec
    from repro.experiments.summary import RunSummary

#: bump to invalidate every previously stored summary
#: (2: timing-identity keys -- replay entries split from execute ones;
#:  3: timing_model joined the spec hash and the summary payload)
STORE_VERSION = 3

#: live writers hold a ``*.tmp`` file for milliseconds; anything older
#: than this many seconds is an orphan from a crashed writer
TMP_GRACE_SECONDS = 60.0

#: suffix quarantined entries are renamed to (outside every ``*.json``
#: glob, so they never shadow the key again)
QUARANTINE_SUFFIX = ".corrupt"


_store_ids = itertools.count()


class _StoreStatsMixin:
    """Derived rates and formatting shared by live view and snapshot."""

    __slots__ = ()

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.corrupt

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (f"store: {self.hits} hits / {self.misses} misses "
                f"({self.hit_rate * 100:.1f}% hit rate), "
                f"{self.corrupt} corrupt, {self.evictions} evicted, "
                f"{self.puts} puts")


@dataclass(frozen=True)
class StoreStatsSnapshot(_StoreStatsMixin):
    """An independent point-in-time copy of a store's counters."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    evictions: int = 0
    puts: int = 0
    tmp_reclaimed: int = 0


class StoreStats(_StoreStatsMixin, StatsView):
    """Counters of one :class:`ResultStore`'s traffic.

    A view over one labeled family in the metrics registry
    (``repro_store_events_total{store=<instance>,event=...}``):
    attribute reads and ``stats.hits += 1`` mutations hit the registry
    counters directly, so the store's own numbers and the exported
    metrics can never disagree.
    """

    FIELDS = ("hits", "misses", "corrupt", "evictions", "puts",
              "tmp_reclaimed")

    __slots__ = ("instance",)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        family = (registry if registry is not None
                  else get_registry()).counter(
            "repro_store_events_total",
            "ResultStore traffic by outcome", labels=("store", "event"))
        if instance is None:
            instance = f"store-{next(_store_ids)}"
        object.__setattr__(self, "instance", instance)
        super().__init__({field: family.labels(store=instance, event=field)
                          for field in self.FIELDS})

    def snapshot(self) -> StoreStatsSnapshot:
        """An independent copy (the live object keeps counting)."""
        return StoreStatsSnapshot(**self.as_dict())


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one :meth:`ResultStore.sweep` integrity pass."""

    checked: int = 0
    quarantined: int = 0
    tmp_reclaimed: int = 0


class ResultStore:
    """A directory of ``<spec_hash>[.replay].json`` run summaries.

    ``max_entries`` / ``max_bytes`` (optional) bound the store; when a
    put pushes past a bound, least-recently-used entries are evicted
    until it holds again.  Construction reclaims orphaned temp files
    older than :data:`TMP_GRACE_SECONDS`.
    """

    def __init__(self, root: Union[str, Path],
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive: {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive: {max_bytes}")
        self.root = Path(root).expanduser()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: ``instance`` names this store's metric labels (a correlation
        #: id ties it to the run that owns it); default is process-unique
        self.stats = StoreStats(registry=registry, instance=instance)
        self.root.mkdir(parents=True, exist_ok=True)
        self._reclaim_tmp()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, spec: "RunSpec", timing: str = "execute") -> Path:
        suffix = ".json" if timing == "execute" else f".{timing}.json"
        return self.root / f"{spec.spec_hash()}{suffix}"

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, spec: "RunSpec",
            timing: str = "execute") -> Optional["RunSummary"]:
        """The stored summary for ``spec``, or None on miss.

        A present-but-unreadable entry -- truncated JSON, or a payload
        whose recorded hash disagrees with its address -- is counted in
        ``stats.corrupt`` and quarantined (renamed ``*.corrupt``) so it
        cannot shadow the key, then reported as a miss.  An entry from
        another :data:`STORE_VERSION` is a plain miss (stale, not
        corrupt); the next put overwrites it.
        """
        from repro.experiments.summary import RunSummary

        path = self.path_for(spec, timing)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("spec_hash") != spec.spec_hash():
                raise ValueError("entry does not match its address")
            if payload.get("store_version",
                           payload.get("cache_version")) != STORE_VERSION:
                self.stats.misses += 1
                return None
            if payload.get("timing", "execute") != timing:
                raise ValueError("entry timing disagrees with its key")
            summary = RunSummary.from_dict(payload["summary"])
            if summary.timing != timing:
                raise ValueError("summary timing disagrees with its key")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        self.stats.hits += 1
        self._touch(path)
        return summary

    def put(self, spec: "RunSpec", summary: "RunSummary") -> Path:
        path = self.path_for(spec, summary.timing)
        payload = {
            "store_version": STORE_VERSION,
            # legacy field name kept so pre-store readers see a version
            # mismatch (a clean miss) instead of corruption
            "cache_version": STORE_VERSION,
            "spec_hash": spec.spec_hash(),
            "timing": summary.timing,
            "spec": spec.to_dict(),
            "summary": summary.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self._evict_to_bounds(protect=path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def sweep(self) -> SweepReport:
        """Integrity pass: validate every entry, reclaim temp orphans.

        Entries that fail to load, carry no version field at all, or
        disagree with their address are quarantined; version-mismatched
        (stale but well-formed) entries are left for puts to overwrite.
        """
        from repro.experiments.summary import RunSummary

        checked = quarantined = 0
        for path in sorted(self.root.glob("*.json")):
            checked += 1
            stem = path.name.split(".", 1)[0]
            try:
                with path.open("r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                if payload.get("spec_hash") != stem:
                    raise ValueError("entry does not match its address")
                if "store_version" not in payload \
                        and "cache_version" not in payload:
                    raise ValueError("entry carries no version")
                RunSummary.from_dict(payload["summary"])
            except (OSError, ValueError, KeyError, TypeError):
                self._quarantine(path)
                quarantined += 1
        reclaimed = self._reclaim_tmp(max_age=0.0)
        return SweepReport(checked, quarantined, reclaimed)

    def clear(self) -> int:
        """Delete every entry (plus temp orphans and quarantined
        files); returns the number of *entries* removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        self._reclaim_tmp(max_age=0.0)
        for path in self.root.glob(f"*{QUARANTINE_SUFFIX}"):
            path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def total_bytes(self) -> int:
        """Bytes currently held by entries (quarantine/tmp excluded)."""
        total = 0
        for path in self.root.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch(self, path: Path) -> None:
        """Refresh mtime so LRU eviction sees the entry as recent."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _quarantine(self, path: Path) -> None:
        self.stats.corrupt += 1
        try:
            os.replace(path, path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:
            # a concurrent reader quarantined it first; that is fine
            pass

    def _reclaim_tmp(self,
                     max_age: float = TMP_GRACE_SECONDS) -> int:
        """Remove ``*.tmp`` files older than ``max_age`` seconds.

        The grace period protects a live writer in another process
        (its temp file exists for the milliseconds between mkstemp and
        os.replace); a crashed writer's orphan is arbitrarily old.
        """
        now = time.time()
        reclaimed = 0
        for path in self.root.glob("*.tmp"):
            try:
                if now - path.stat().st_mtime >= max_age:
                    path.unlink()
                    reclaimed += 1
            except OSError:
                pass
        self.stats.tmp_reclaimed += reclaimed
        return reclaimed

    def _evict_to_bounds(self, protect: Optional[Path] = None) -> None:
        """Drop least-recently-used entries until bounds hold.

        ``protect`` (the entry just written) is never evicted, so a
        put always leaves its own summary readable.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        entries = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        entries.sort()  # oldest first
        count = len(entries)
        size = sum(e[2] for e in entries)
        for mtime, path, nbytes in entries:
            over = ((self.max_entries is not None
                     and count > self.max_entries)
                    or (self.max_bytes is not None
                        and size > self.max_bytes))
            if not over:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            count -= 1
            size -= nbytes
            self.stats.evictions += 1


def store_from_env(root: Union[str, Path],
                   instance: Optional[str] = None) -> ResultStore:
    """A :class:`ResultStore` at ``root`` honouring the documented
    environment bounds: ``REPRO_STORE_MAX_ENTRIES`` and
    ``REPRO_STORE_MAX_BYTES`` cap the store (least-recently-used
    eviction); unset means unbounded.  ``instance`` labels the store's
    metrics (see :class:`StoreStats`)."""
    max_entries = os.environ.get("REPRO_STORE_MAX_ENTRIES")
    max_bytes = os.environ.get("REPRO_STORE_MAX_BYTES")
    return ResultStore(
        root,
        max_entries=int(max_entries) if max_entries else None,
        max_bytes=int(max_bytes) if max_bytes else None,
        instance=instance,
    )
