"""The experiment service: a job API over the layered resolvers.

:class:`ExperimentService` is the serving-system face of the
experiment layer.  Many concurrent clients ``submit()`` experiment
grids and get back :class:`JobHandle`\\ s; each job resolves through
the shared layers -- in-process memo, content-addressed
:class:`~repro.service.store.ResultStore`, cross-request
:class:`~repro.service.inflight.InflightTable`, and one shared
execution backend -- so

* a figure request repeated by N clients costs one execution;
* two different grids sharing a baseline run share its simulation
  even while both are still in flight;
* finished runs stream back through
  :meth:`JobHandle.as_completed` *as they finish*, not when the whole
  grid does.

Resolution order per job::

    memo  ->  store  ->  inflight table  ->  executor
    (hits)    (hits)     (join a run        (claim + run,
                          already in         resolve joiners)
                          the air)

Everything an executed run produces is backfilled upward (store and
memo), so the next request short-circuits as early as possible.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from functools import partial
from typing import (
    TYPE_CHECKING, Callable, Iterable, Optional, Sequence, Union,
)

from repro.service.executor import ExecutionBackend
from repro.service.inflight import InflightTable
from repro.service.planner import planner_for
from repro.service.resolver import MemoLayer, StoreLayer
from repro.service.store import ResultStore, StoreStats, store_from_env

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult
    from repro.experiments.spec import ExperimentSpec, RunSpec
    from repro.experiments.summary import RunSummary


@dataclass
class ServiceStats:
    """Where the service's runs came from, across all jobs."""

    requested: int = 0
    #: duplicate members within submitted grids
    deduplicated: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    #: specs folded onto an execution another job already had in flight
    inflight_joined: int = 0
    #: execution-driven simulations (replay-group captures included)
    executed: int = 0
    captured: int = 0
    replayed: int = 0
    failed: int = 0
    jobs: int = 0

    def __str__(self) -> str:
        return (f"{self.jobs} jobs / {self.requested} requested = "
                f"{self.executed + self.replayed} executed "
                f"+ {self.deduplicated} deduplicated "
                f"+ {self.memo_hits} memoized + {self.store_hits} stored "
                f"+ {self.inflight_joined} joined in-flight"
                + (f" ({self.failed} failed)" if self.failed else ""))


class JobHandle:
    """A submitted experiment: stream it, or wait for the result.

    One summary is delivered per *unique* spec in the grid; duplicate
    members share their delivery (and the final
    :class:`~repro.experiments.runner.ExperimentResult` resolves them
    all).  :meth:`as_completed` is a single-consumer stream; it may be
    combined freely with a final :meth:`result` call.
    """

    def __init__(self, experiment: "ExperimentSpec",
                 expected: int) -> None:
        self.experiment = experiment
        self.expected = expected
        self._queue: "queue.Queue" = queue.Queue()
        self._consumed = 0
        self._lock = threading.Lock()
        self._delivered = 0
        self._results: dict[str, "RunSummary"] = {}
        self._failures: list[tuple["RunSpec", BaseException]] = []
        self._done = threading.Event()
        if expected == 0:
            self._done.set()

    # -- delivery (service side) ---------------------------------------
    def _deliver(self, key: str, summary: "RunSummary") -> None:
        with self._lock:
            if key in self._results:
                return
            self._results[key] = summary
            self._delivered += 1
            last = self._delivered == self.expected
        self._queue.put(summary)
        if last:
            self._done.set()

    def _deliver_failure(self, spec: "RunSpec",
                         exc: BaseException) -> None:
        with self._lock:
            self._failures.append((spec, exc))
            self._delivered += 1
            last = self._delivered == self.expected
        self._queue.put(None)      # keeps the stream's count moving
        if last:
            self._done.set()

    # -- consumption (client side) -------------------------------------
    def done(self) -> bool:
        """True once every unique spec has resolved or failed."""
        return self._done.is_set()

    @property
    def failures(self) -> list[tuple["RunSpec", BaseException]]:
        with self._lock:
            return list(self._failures)

    def as_completed(self, timeout: Optional[float] = None):
        """Yield each finished :class:`RunSummary` as it lands.

        Completion order, not grid order -- a cache hit streams out
        before a long simulation submitted earlier.  Failed specs are
        skipped here (they surface in :meth:`result` /
        :attr:`failures`).  ``timeout`` bounds the wait for *each*
        summary; on expiry a :class:`TimeoutError` is raised.
        """
        while self._consumed < self.expected:
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no run finished within {timeout}s "
                    f"({self._consumed}/{self.expected} streamed)") from None
            self._consumed += 1
            if item is not None:
                yield item

    def result(self, timeout: Optional[float] = None) -> "ExperimentResult":
        """Block until the whole grid resolved; raise if any run failed."""
        from repro.errors import ExperimentExecutionError
        from repro.experiments.runner import ExperimentResult

        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job incomplete after {timeout}s "
                f"({self._delivered}/{self.expected} resolved)")
        if self._failures:
            raise ExperimentExecutionError(self.failures)
        return ExperimentResult(self.experiment, dict(self._results))


class ExperimentService:
    """Serve experiment grids to many concurrent clients.

    One service owns one memo, one (optional) content-addressed store,
    one in-flight table, and one execution backend; every job submitted
    to it shares all four.  ``parallel=False`` executes in the
    submitting job's worker thread (deterministic, and registry-local
    backends/timing models stay visible); otherwise groups run in a
    persistent shared process pool.
    """

    def __init__(self,
                 store: Optional[Union[ResultStore, str, os.PathLike]] = None,
                 max_workers: Optional[int] = None,
                 parallel: bool = True,
                 replay: bool = False,
                 run_group_fn: Optional[Callable] = None) -> None:
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        self.replay = replay
        self.memo = MemoLayer()
        self.store_layer = (StoreLayer(store, replay=replay)
                            if store is not None else None)
        self.inflight = InflightTable()
        self.planner = planner_for(replay)
        self.backend = ExecutionBackend(max_workers=max_workers,
                                        parallel=parallel,
                                        run_group_fn=run_group_fn)
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, experiment: Union["ExperimentSpec",
                                       Iterable["RunSpec"]]) -> JobHandle:
        """Accept a grid; resolution starts immediately in the
        background.  Returns the job's :class:`JobHandle`."""
        from repro.experiments.spec import ExperimentSpec

        if not isinstance(experiment, ExperimentSpec):
            experiment = ExperimentSpec("adhoc", tuple(experiment))
        unique: dict[str, "RunSpec"] = {}
        for spec in experiment.runs:
            unique.setdefault(spec.spec_hash(), spec)
        job = JobHandle(experiment, expected=len(unique))
        with self._stats_lock:
            self.stats.jobs += 1
            self.stats.requested += len(experiment.runs)
            self.stats.deduplicated += len(experiment.runs) - len(unique)
        worker = threading.Thread(target=self._run_job,
                                  args=(job, unique),
                                  name=f"repro-job-{self.stats.jobs}",
                                  daemon=True)
        worker.start()
        return job

    def run_experiment(self,
                       experiment: Union["ExperimentSpec",
                                         Iterable["RunSpec"]],
                       timeout: Optional[float] = None
                       ) -> "ExperimentResult":
        """Synchronous convenience: ``submit(...).result(...)``."""
        return self.submit(experiment).result(timeout)

    def store_stats(self) -> Optional[StoreStats]:
        """Snapshot of the backing store's hit/miss/evict/corrupt
        counters (None when the service runs store-less)."""
        return self.store.stats.snapshot() if self.store else None

    def close(self) -> None:
        """Shut down the shared worker pool (jobs already submitted
        finish first)."""
        self.backend.close()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Job resolution
    # ------------------------------------------------------------------
    def _run_job(self, job: JobHandle,
                 unique: dict[str, "RunSpec"]) -> None:
        pending = dict(unique)
        try:
            self._resolve_job(job, pending)
        except Exception as exc:          # pragma: no cover - defensive
            # never leave a job hanging: fail whatever has not resolved
            with job._lock:
                resolved = set(job._results)
                failed = {s.spec_hash() for s, _ in job._failures}
            for key, spec in pending.items():
                if key not in resolved and key not in failed:
                    job._deliver_failure(spec, exc)

    def _resolve_job(self, job: JobHandle,
                     unique: dict[str, "RunSpec"]) -> None:
        specs = list(unique.values())

        # 1. in-process memo
        hits, remaining = self.memo.resolve(specs)
        self._count(memo_hits=len(hits))
        for key, summary in hits.items():
            job._deliver(key, summary)

        # 2. content-addressed store (backfills the memo)
        if self.store_layer is not None and remaining:
            hits, remaining = self.store_layer.resolve(remaining)
            self._count(store_hits=len(hits))
            for key, summary in hits.items():
                self.memo.store(unique[key], summary)
                job._deliver(key, summary)

        if not remaining:
            return

        # 3. cross-request in-flight dedup
        owned, joined = self.inflight.claim(
            spec.spec_hash() for spec in remaining)
        self._count(inflight_joined=len(joined))
        for key, future in {**owned, **joined}.items():
            future.add_done_callback(
                partial(self._on_future, job, unique[key]))

        # double-check the memo for owned keys: another job may have
        # resolved (and retired) the run between our memo miss and the
        # claim -- serve it rather than re-executing
        for key in list(owned):
            summary = self.memo.get(key)
            if summary is not None:
                self.inflight.resolve(key, summary)
                del owned[key]

        # 4. execute what this job owns
        if owned:
            self._execute_owned(
                [unique[key] for key in owned])

    def _execute_owned(self, specs: Sequence["RunSpec"]) -> None:
        groups = self.planner.plan(specs)
        if self.backend.parallel:
            futures = {self.backend.submit_group(group): group
                       for group in groups}
            from concurrent.futures import as_completed
            for future in as_completed(futures):
                self._settle_group(futures[future], future)
        else:
            # inline execution: each group resolves -- and streams to
            # every waiting job -- before the next one starts
            for group in groups:
                self._settle_group(group, self.backend.submit_group(group))

    def _settle_group(self, group: Sequence["RunSpec"],
                      future: Future) -> None:
        try:
            summaries = future.result()
        except Exception as exc:
            self._count(failed=len(group))
            for spec in group:
                self.inflight.fail(spec.spec_hash(), exc)
            return
        for spec, summary in zip(group, summaries):
            self.memo.store(spec, summary)
            if self.store_layer is not None:
                self.store_layer.store(spec, summary)
            # resolving the future delivers to this job and every joiner
            self.inflight.resolve(spec.spec_hash(), summary)
        self._count(executed=1,
                    captured=1 if len(group) > 1 else 0,
                    replayed=len(group) - 1)

    def _on_future(self, job: JobHandle, spec: "RunSpec",
                   future: Future) -> None:
        exc = future.exception()
        if exc is not None:
            job._deliver_failure(spec, exc)
        else:
            job._deliver(spec.spec_hash(), future.result())

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name,
                        getattr(self.stats, name) + delta)


def service_from_env(
        store_dir: Optional[Union[str, os.PathLike]] = None
) -> ExperimentService:
    """An :class:`ExperimentService` configured from the documented
    environment knobs (the same family :func:`runner_from_env` reads):
    ``REPRO_CACHE_DIR`` locates the store (overridden by
    ``store_dir``), ``REPRO_STORE_MAX_ENTRIES`` /
    ``REPRO_STORE_MAX_BYTES`` bound it, ``REPRO_MAX_WORKERS`` sizes
    the shared pool, ``REPRO_SERIAL=1`` forces inline execution, and
    ``REPRO_REPLAY=1`` enables the capture-once/replay-rest fast
    path."""
    root = store_dir or os.environ.get("REPRO_CACHE_DIR") or None
    max_workers = os.environ.get("REPRO_MAX_WORKERS")
    return ExperimentService(
        store=store_from_env(root) if root else None,
        max_workers=int(max_workers) if max_workers else None,
        parallel=os.environ.get("REPRO_SERIAL", "") not in ("1", "true"),
        replay=os.environ.get("REPRO_REPLAY", "") in ("1", "true"),
    )
