"""The experiment service: a job API over the layered resolvers.

:class:`ExperimentService` is the serving-system face of the
experiment layer.  Many concurrent clients ``submit()`` experiment
grids and get back :class:`JobHandle`\\ s; each job resolves through
the shared layers -- in-process memo, content-addressed
:class:`~repro.service.store.ResultStore`, cross-request
:class:`~repro.service.inflight.InflightTable`, and one shared
execution backend -- so

* a figure request repeated by N clients costs one execution;
* two different grids sharing a baseline run share its simulation
  even while both are still in flight;
* finished runs stream back through
  :meth:`JobHandle.as_completed` *as they finish*, not when the whole
  grid does.

Resolution order per job::

    memo  ->  store  ->  inflight table  ->  executor
    (hits)    (hits)     (join a run        (claim + run,
                          already in         resolve joiners)
                          the air)

Everything an executed run produces is backfilled upward (store and
memo), so the next request short-circuits as early as possible.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import queue
import threading
from concurrent.futures import Future
from functools import partial
from typing import (
    TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Sequence, Union,
)

from repro.obs.metrics import (
    MetricsRegistry, StatsView, get_registry, new_run_id,
)
from repro.obs.spans import SpanTracer
from repro.service.executor import ExecutionBackend
from repro.service.inflight import InflightTable
from repro.service.planner import planner_for
from repro.service.resolver import MemoLayer, StoreLayer
from repro.service.store import (
    ResultStore, StoreStatsSnapshot, store_from_env,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult
    from repro.experiments.spec import ExperimentSpec, RunSpec
    from repro.experiments.summary import RunSummary

_service_ids = itertools.count()


class ServiceStats(StatsView):
    """Where the service's runs came from, across all jobs.

    A view over ``repro_service_events_total{service=...,event=...}``
    in the metrics registry (see :class:`repro.obs.metrics.StatsView`).
    """

    #: requested -- grid members submitted; deduplicated -- duplicate
    #: members within submitted grids; inflight_joined -- specs folded
    #: onto an execution another job already had in flight; executed --
    #: execution-driven simulations (replay-group captures included)
    FIELDS = ("requested", "deduplicated", "memo_hits", "store_hits",
              "inflight_joined", "executed", "captured", "replayed",
              "failed", "jobs")

    __slots__ = ("instance",)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        family = (registry if registry is not None
                  else get_registry()).counter(
            "repro_service_events_total",
            "ExperimentService resolution outcomes",
            labels=("service", "event"))
        if instance is None:
            instance = f"service-{next(_service_ids)}"
        object.__setattr__(self, "instance", instance)
        super().__init__({field: family.labels(service=instance, event=field)
                          for field in self.FIELDS})

    def __str__(self) -> str:
        return (f"{self.jobs} jobs / {self.requested} requested = "
                f"{self.executed + self.replayed} executed "
                f"+ {self.deduplicated} deduplicated "
                f"+ {self.memo_hits} memoized + {self.store_hits} stored "
                f"+ {self.inflight_joined} joined in-flight"
                + (f" ({self.failed} failed)" if self.failed else ""))


class JobHandle:
    """A submitted experiment: stream it, or wait for the result.

    One summary is delivered per *unique* spec in the grid; duplicate
    members share their delivery (and the final
    :class:`~repro.experiments.runner.ExperimentResult` resolves them
    all).  :meth:`as_completed` is a single-consumer stream; it may be
    combined freely with a final :meth:`result` call.
    """

    def __init__(self, experiment: "ExperimentSpec",
                 expected: int, job_id: Optional[str] = None) -> None:
        self.experiment = experiment
        self.expected = expected
        #: correlation id tagging this job's spans and metrics
        self.job_id = job_id or new_run_id("job")
        self._queue: "queue.Queue" = queue.Queue()
        self._consumed = 0
        self._lock = threading.Lock()
        self._delivered = 0
        self._results: dict[str, "RunSummary"] = {}
        self._failures: list[tuple["RunSpec", BaseException]] = []
        #: wall seconds per resolution phase (memo/store/plan/...)
        self._phase_seconds: dict[str, float] = {}
        self._done = threading.Event()
        if expected == 0:
            self._done.set()

    def _note_phase(self, name: str, seconds: float) -> None:
        with self._lock:
            self._phase_seconds[name] = (
                self._phase_seconds.get(name, 0.0) + seconds)

    # -- delivery (service side) ---------------------------------------
    def _deliver(self, key: str, summary: "RunSummary") -> None:
        with self._lock:
            if key in self._results:
                return
            self._results[key] = summary
            self._delivered += 1
            last = self._delivered == self.expected
        self._queue.put(summary)
        if last:
            self._done.set()

    def _deliver_failure(self, spec: "RunSpec",
                         exc: BaseException) -> None:
        with self._lock:
            self._failures.append((spec, exc))
            self._delivered += 1
            last = self._delivered == self.expected
        self._queue.put(None)      # keeps the stream's count moving
        if last:
            self._done.set()

    # -- consumption (client side) -------------------------------------
    def done(self) -> bool:
        """True once every unique spec has resolved or failed."""
        return self._done.is_set()

    @property
    def failures(self) -> list[tuple["RunSpec", BaseException]]:
        with self._lock:
            return list(self._failures)

    def as_completed(self, timeout: Optional[float] = None):
        """Yield each finished :class:`RunSummary` as it lands.

        Completion order, not grid order -- a cache hit streams out
        before a long simulation submitted earlier.  Failed specs are
        skipped here (they surface in :meth:`result` /
        :attr:`failures`).  ``timeout`` bounds the wait for *each*
        summary; on expiry a :class:`TimeoutError` is raised.
        """
        while self._consumed < self.expected:
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no run finished within {timeout}s "
                    f"({self._consumed}/{self.expected} streamed)") from None
            self._consumed += 1
            if item is not None:
                yield item

    def metrics(self) -> dict:
        """Observability snapshot of this job: correlation id, delivery
        progress, and wall-time attribution per resolution phase.

        ``phases`` maps each pipeline phase the service ran for this
        job (``submit``/``memo``/``store``/``plan``/``execute``/
        ``backfill``) to wall seconds spent in it.
        """
        with self._lock:
            return {
                "job_id": self.job_id,
                "experiment": self.experiment.name,
                "expected": self.expected,
                "delivered": self._delivered,
                "failed": len(self._failures),
                "done": self._done.is_set(),
                "phases": dict(self._phase_seconds),
            }

    def critpath(self) -> dict:
        """Phase-level bottleneck attribution for this job.

        The service-side analogue of the simulator's critical-path
        analysis (:mod:`repro.obs.critpath`): ranks the resolution
        phases the job's wall time went to and names the bottleneck,
        so "why was this job slow" is answered by the same taxonomy
        move -- attribute, rank, point -- one layer up.  Phases
        overlap only trivially here (resolution is sequential per
        job), so their seconds sum to approximately the job's total.
        """
        with self._lock:
            phases = dict(self._phase_seconds)
        total = sum(phases.values())
        ranked = [
            {"phase": name,
             "seconds": round(seconds, 6),
             "fraction": round(seconds / total, 4) if total else 0.0}
            for name, seconds in sorted(phases.items(),
                                        key=lambda kv: (-kv[1], kv[0]))
        ]
        return {
            "job_id": self.job_id,
            "experiment": self.experiment.name,
            "total_seconds": round(total, 6),
            "phases": ranked,
            "bottleneck": ranked[0]["phase"] if ranked else None,
        }

    def result(self, timeout: Optional[float] = None) -> "ExperimentResult":
        """Block until the whole grid resolved; raise if any run failed."""
        from repro.errors import ExperimentExecutionError
        from repro.experiments.runner import ExperimentResult

        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job incomplete after {timeout}s "
                f"({self._delivered}/{self.expected} resolved)")
        if self._failures:
            raise ExperimentExecutionError(self.failures)
        return ExperimentResult(self.experiment, dict(self._results))


class ExperimentService:
    """Serve experiment grids to many concurrent clients.

    One service owns one memo, one (optional) content-addressed store,
    one in-flight table, and one execution backend; every job submitted
    to it shares all four.  ``parallel=False`` executes in the
    submitting job's worker thread (deterministic, and registry-local
    backends/timing models stay visible); otherwise groups run in a
    persistent shared process pool.
    """

    def __init__(self,
                 store: Optional[Union[ResultStore, str, os.PathLike]] = None,
                 max_workers: Optional[int] = None,
                 parallel: bool = True,
                 replay: bool = False,
                 run_group_fn: Optional[Callable] = None,
                 registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        if instance is None:
            instance = f"service-{next(_service_ids)}"
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store, registry=registry,
                                instance=instance)
        self.store: Optional[ResultStore] = store
        self.replay = replay
        self.memo = MemoLayer()
        self.store_layer = (StoreLayer(store, replay=replay)
                            if store is not None else None)
        self.inflight = InflightTable(registry=registry, instance=instance)
        self.planner = planner_for(replay)
        self.backend = ExecutionBackend(max_workers=max_workers,
                                        parallel=parallel,
                                        run_group_fn=run_group_fn)
        #: span tracer attributing wall time to pipeline phases; share
        #: one tracer across services to aggregate a whole deployment
        self.tracer = tracer or SpanTracer()
        self.stats = ServiceStats(registry=registry, instance=instance)
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, experiment: Union["ExperimentSpec",
                                       Iterable["RunSpec"]]) -> JobHandle:
        """Accept a grid; resolution starts immediately in the
        background.  Returns the job's :class:`JobHandle`."""
        from repro.experiments.spec import ExperimentSpec

        if not isinstance(experiment, ExperimentSpec):
            experiment = ExperimentSpec("adhoc", tuple(experiment))
        unique: dict[str, "RunSpec"] = {}
        for spec in experiment.runs:
            unique.setdefault(spec.spec_hash(), spec)
        job = JobHandle(experiment, expected=len(unique))
        with self._phase(job, "submit"):
            with self._stats_lock:
                self.stats.jobs += 1
                self.stats.requested += len(experiment.runs)
                self.stats.deduplicated += len(experiment.runs) - len(unique)
            worker = threading.Thread(target=self._run_job,
                                      args=(job, unique),
                                      name=f"repro-{job.job_id}",
                                      daemon=True)
            worker.start()
        return job

    def run_experiment(self,
                       experiment: Union["ExperimentSpec",
                                         Iterable["RunSpec"]],
                       timeout: Optional[float] = None
                       ) -> "ExperimentResult":
        """Synchronous convenience: ``submit(...).result(...)``."""
        return self.submit(experiment).result(timeout)

    def store_stats(self) -> Optional[StoreStatsSnapshot]:
        """Snapshot of the backing store's hit/miss/evict/corrupt
        counters (None when the service runs store-less)."""
        return self.store.stats.snapshot() if self.store else None

    def close(self) -> None:
        """Shut down the shared worker pool (jobs already submitted
        finish first)."""
        self.backend.close()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Job resolution
    # ------------------------------------------------------------------
    def _run_job(self, job: JobHandle,
                 unique: dict[str, "RunSpec"]) -> None:
        pending = dict(unique)
        try:
            self._resolve_job(job, pending)
        except Exception as exc:          # pragma: no cover - defensive
            # never leave a job hanging: fail whatever has not resolved
            with job._lock:
                resolved = set(job._results)
                failed = {s.spec_hash() for s, _ in job._failures}
            for key, spec in pending.items():
                if key not in resolved and key not in failed:
                    job._deliver_failure(spec, exc)

    @contextlib.contextmanager
    def _phase(self, job: JobHandle, name: str) -> Iterator[None]:
        """Span one pipeline phase for ``job`` (correlation = job id)
        and fold its wall time into the job's phase attribution."""
        with self.tracer.span(name, correlation=job.job_id,
                              experiment=job.experiment.name) as sp:
            yield
        job._note_phase(name, sp.duration)

    def _resolve_job(self, job: JobHandle,
                     unique: dict[str, "RunSpec"]) -> None:
        specs = list(unique.values())

        # 1. in-process memo
        with self._phase(job, "memo"):
            hits, remaining = self.memo.resolve(specs)
            self._count(memo_hits=len(hits))
            for key, summary in hits.items():
                job._deliver(key, summary)

        # 2. content-addressed store (backfills the memo)
        if self.store_layer is not None and remaining:
            with self._phase(job, "store"):
                hits, remaining = self.store_layer.resolve(remaining)
                self._count(store_hits=len(hits))
                for key, summary in hits.items():
                    self.memo.store(unique[key], summary)
                    job._deliver(key, summary)

        if not remaining:
            return

        # 3. cross-request in-flight dedup
        owned, joined = self.inflight.claim(
            spec.spec_hash() for spec in remaining)
        self._count(inflight_joined=len(joined))
        for key, future in {**owned, **joined}.items():
            future.add_done_callback(
                partial(self._on_future, job, unique[key]))

        # double-check the memo for owned keys: another job may have
        # resolved (and retired) the run between our memo miss and the
        # claim -- serve it rather than re-executing
        for key in list(owned):
            summary = self.memo.get(key)
            if summary is not None:
                self.inflight.resolve(key, summary)
                del owned[key]

        # 4. execute what this job owns
        if owned:
            self._execute_owned(job, [unique[key] for key in owned])

    def _execute_owned(self, job: JobHandle,
                       specs: Sequence["RunSpec"]) -> None:
        with self._phase(job, "plan"):
            groups = self.planner.plan(specs)
        with self._phase(job, "execute"):
            if self.backend.parallel:
                futures = {self.backend.submit_group(group): group
                           for group in groups}
                from concurrent.futures import as_completed
                for future in as_completed(futures):
                    self._settle_group(job, futures[future], future)
            else:
                # inline execution: each group resolves -- and streams
                # to every waiting job -- before the next one starts
                for group in groups:
                    self._settle_group(job, group,
                                       self.backend.submit_group(group))

    def _settle_group(self, job: JobHandle, group: Sequence["RunSpec"],
                      future: Future) -> None:
        try:
            summaries = future.result()
        except Exception as exc:
            self._count(failed=len(group))
            for spec in group:
                self.inflight.fail(spec.spec_hash(), exc)
            return
        with self._phase(job, "backfill"):
            for spec, summary in zip(group, summaries):
                self.memo.store(spec, summary)
                if self.store_layer is not None:
                    self.store_layer.store(spec, summary)
                # resolving the future delivers to this job and every
                # joiner
                self.inflight.resolve(spec.spec_hash(), summary)
        self._count(executed=1,
                    captured=1 if len(group) > 1 else 0,
                    replayed=len(group) - 1)

    def _on_future(self, job: JobHandle, spec: "RunSpec",
                   future: Future) -> None:
        exc = future.exception()
        if exc is not None:
            job._deliver_failure(spec, exc)
        else:
            job._deliver(spec.spec_hash(), future.result())

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name,
                        getattr(self.stats, name) + delta)


def service_from_env(
        store_dir: Optional[Union[str, os.PathLike]] = None
) -> ExperimentService:
    """An :class:`ExperimentService` configured from the documented
    environment knobs (the same family :func:`runner_from_env` reads):
    ``REPRO_CACHE_DIR`` locates the store (overridden by
    ``store_dir``), ``REPRO_STORE_MAX_ENTRIES`` /
    ``REPRO_STORE_MAX_BYTES`` bound it, ``REPRO_MAX_WORKERS`` sizes
    the shared pool, ``REPRO_SERIAL=1`` forces inline execution, and
    ``REPRO_REPLAY=1`` enables the capture-once/replay-rest fast
    path."""
    root = store_dir or os.environ.get("REPRO_CACHE_DIR") or None
    max_workers = os.environ.get("REPRO_MAX_WORKERS")
    return ExperimentService(
        store=store_from_env(root) if root else None,
        max_workers=int(max_workers) if max_workers else None,
        parallel=os.environ.get("REPRO_SERIAL", "") not in ("1", "true"),
        replay=os.environ.get("REPRO_REPLAY", "") in ("1", "true"),
    )
