"""The resolver chain: memo -> store -> executor, one interface.

Every layer of the service answers the same question -- *which of
these specs can you satisfy?* -- through one uniform method::

    resolve(specs) -> (hits, misses)

where ``hits`` maps spec hashes to finished
:class:`~repro.experiments.summary.RunSummary` values and ``misses``
is the specs the layer could not serve, in input order.  Layers are
therefore freely composable: the :class:`ResolverChain` threads the
miss list of each layer into the next, and backfills results produced
by lower layers into every layer above them (an executed run lands in
the store *and* the memo; a store hit lands in the memo), so the next
request short-circuits as early as possible.

Concrete layers:

* :class:`MemoLayer` -- the in-process memo dict (thread-safe, shared
  by every job of an :class:`~repro.service.service.ExperimentService`);
* :class:`StoreLayer` -- adapts a
  :class:`~repro.service.store.ResultStore` (in replay mode, an exact
  execution-driven entry satisfies either key, while a replay entry
  only satisfies replay mode);
* the executor layer (:class:`~repro.service.executor.BatchExecutor`)
  is terminal: it *runs* whatever reaches it, so its misses are
  exactly the specs whose simulations failed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunSpec
    from repro.experiments.summary import RunSummary
    from repro.service.store import ResultStore


class ResolverLayer(Protocol):
    """One rung of the resolution ladder."""

    name: str

    def resolve(self, specs: Sequence["RunSpec"]
                ) -> tuple[dict[str, "RunSummary"], list["RunSpec"]]:
        """Split ``specs`` into served hits and passed-on misses."""
        ...

    def store(self, spec: "RunSpec", summary: "RunSummary") -> None:
        """Backfill a summary produced by a lower layer."""
        ...


class MemoLayer:
    """In-process memoization: the fastest, narrowest layer."""

    name = "memo"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._memo: dict[str, "RunSummary"] = {}

    def resolve(self, specs: Sequence["RunSpec"]
                ) -> tuple[dict[str, "RunSummary"], list["RunSpec"]]:
        hits: dict[str, "RunSummary"] = {}
        misses: list["RunSpec"] = []
        with self._lock:
            for spec in specs:
                key = spec.spec_hash()
                summary = self._memo.get(key)
                if summary is not None:
                    hits[key] = summary
                else:
                    misses.append(spec)
        return hits, misses

    def store(self, spec: "RunSpec", summary: "RunSummary") -> None:
        with self._lock:
            self._memo[spec.spec_hash()] = summary

    def get(self, key: str) -> Optional["RunSummary"]:
        with self._lock:
            return self._memo.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memo)


class StoreLayer:
    """Adapts a content-addressed :class:`ResultStore` to the chain.

    With ``replay=True`` a lookup falls back to the replay-timing key:
    execution-driven entries are exact, so they satisfy either mode,
    while a replay entry only ever satisfies replay mode.
    """

    name = "store"

    def __init__(self, store: "ResultStore", replay: bool = False) -> None:
        self.backing = store
        self.replay = replay

    def resolve(self, specs: Sequence["RunSpec"]
                ) -> tuple[dict[str, "RunSummary"], list["RunSpec"]]:
        hits: dict[str, "RunSummary"] = {}
        misses: list["RunSpec"] = []
        for spec in specs:
            summary = self.backing.get(spec)
            if summary is None and self.replay:
                summary = self.backing.get(spec, timing="replay")
            if summary is not None:
                hits[spec.spec_hash()] = summary
            else:
                misses.append(spec)
        return hits, misses

    def store(self, spec: "RunSpec", summary: "RunSummary") -> None:
        self.backing.put(spec, summary)


@dataclass
class ChainResult:
    """Everything one :meth:`ResolverChain.resolve` pass produced."""

    #: spec hash -> summary for every spec that resolved
    summaries: dict[str, "RunSummary"]
    #: layer name -> number of specs that layer served
    hits_by_layer: dict[str, int] = field(default_factory=dict)
    #: (spec, exception) for every spec whose execution failed
    failures: list[tuple["RunSpec", BaseException]] = field(
        default_factory=list)


class ResolverChain:
    """Threads specs down the layer stack and backfills results up.

    The last layer is terminal (an executor); results it produces are
    written back into every layer above it, and a store hit is written
    back into the memo, so each layer warms the ones before it.
    """

    def __init__(self, layers: Sequence[ResolverLayer]) -> None:
        if not layers:
            raise ValueError("a resolver chain needs at least one layer")
        self.layers = list(layers)

    def resolve(self, specs: Sequence["RunSpec"]) -> ChainResult:
        by_hash = {spec.spec_hash(): spec for spec in specs}
        remaining: list["RunSpec"] = list(by_hash.values())
        summaries: dict[str, "RunSummary"] = {}
        produced: list[dict[str, "RunSummary"]] = []
        hits_by_layer: dict[str, int] = {}
        for layer in self.layers:
            # always invoked (even on an empty miss list) so stateful
            # layers -- the executor's per-batch outcome -- stay fresh
            hits, remaining = layer.resolve(remaining)
            produced.append(hits)
            summaries.update(hits)
            hits_by_layer[layer.name] = len(hits)
        # backfill: each layer learns everything resolved below it
        for index, layer in enumerate(self.layers):
            for lower_hits in produced[index + 1:]:
                for key, summary in lower_hits.items():
                    layer.store(by_hash[key], summary)
        failures = list(getattr(self.layers[-1], "failures", ()))
        return ChainResult(summaries, hits_by_layer, failures)
