"""Cross-request in-flight deduplication.

The :class:`InflightTable` maps a spec hash to the
:class:`concurrent.futures.Future` of its *currently executing* run.
When several concurrent requests (two :class:`ExperimentService` jobs,
or any two callers sharing one table) need the same simulation, the
first to :meth:`claim` the hash owns the execution; everyone else
*joins* the existing future and receives the summary the moment the
owner resolves it.  This is what turns "dedup within one grid" into
"dedup across every request currently in the air": N clients asking
for the same figure cost one execution, not N.

The table is purely in-memory and thread-safe.  Entries exist only
while a run is in flight -- resolution (or failure) removes the entry,
after which the memo / store layers serve the result.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable


@dataclass
class InflightStats:
    """How much concurrent-request deduplication the table achieved."""

    #: claims that started a new execution (this caller owns the run)
    owned: int = 0
    #: claims folded onto an execution already in the air
    joined: int = 0

    def __str__(self) -> str:
        return (f"inflight: {self.owned} owned, "
                f"{self.joined} joined onto in-flight runs")


class InflightTable:
    """Shared futures for runs currently executing, keyed by spec hash."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}
        self.stats = InflightStats()

    def claim(self, keys: Iterable[str]
              ) -> tuple[dict[str, Future], dict[str, Future]]:
        """Atomically claim ``keys``; returns ``(owned, joined)``.

        ``owned`` maps each key this caller must now execute to the
        fresh future it must later :meth:`resolve` or :meth:`fail`;
        ``joined`` maps keys already in flight to the existing future
        to wait on.  Atomic over the whole key set, so two concurrent
        claims can never both own the same key.
        """
        owned: dict[str, Future] = {}
        joined: dict[str, Future] = {}
        with self._lock:
            for key in keys:
                existing = self._futures.get(key)
                if existing is not None:
                    joined[key] = existing
                    self.stats.joined += 1
                else:
                    future: Future = Future()
                    self._futures[key] = future
                    owned[key] = future
                    self.stats.owned += 1
        return owned, joined

    def resolve(self, key: str, summary) -> None:
        """Fulfil the in-flight future for ``key`` and retire it."""
        with self._lock:
            future = self._futures.pop(key, None)
        if future is not None:
            future.set_result(summary)

    def fail(self, key: str, exc: BaseException) -> None:
        """Fail the in-flight future for ``key`` and retire it."""
        with self._lock:
            future = self._futures.pop(key, None)
        if future is not None:
            future.set_exception(exc)

    def __len__(self) -> int:
        with self._lock:
            return len(self._futures)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._futures
