"""Cross-request in-flight deduplication.

The :class:`InflightTable` maps a spec hash to the
:class:`concurrent.futures.Future` of its *currently executing* run.
When several concurrent requests (two :class:`ExperimentService` jobs,
or any two callers sharing one table) need the same simulation, the
first to :meth:`claim` the hash owns the execution; everyone else
*joins* the existing future and receives the summary the moment the
owner resolves it.  This is what turns "dedup within one grid" into
"dedup across every request currently in the air": N clients asking
for the same figure cost one execution, not N.

The table is purely in-memory and thread-safe.  Entries exist only
while a run is in flight -- resolution (or failure) removes the entry,
after which the memo / store layers serve the result.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future
from typing import Iterable, Optional

from repro.obs.metrics import MetricsRegistry, StatsView, get_registry

_table_ids = itertools.count()


class InflightStats(StatsView):
    """How much concurrent-request deduplication the table achieved.

    A view over ``repro_inflight_claims_total{table=...,outcome=...}``
    in the metrics registry (see :class:`repro.obs.metrics.StatsView`).
    """

    #: owned -- claims that started a new execution (caller owns the
    #: run); joined -- claims folded onto an execution already in the air
    FIELDS = ("owned", "joined")

    __slots__ = ("instance",)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        family = (registry if registry is not None
                  else get_registry()).counter(
            "repro_inflight_claims_total",
            "InflightTable claims by outcome", labels=("table", "outcome"))
        if instance is None:
            instance = f"inflight-{next(_table_ids)}"
        object.__setattr__(self, "instance", instance)
        super().__init__({field: family.labels(table=instance, outcome=field)
                          for field in self.FIELDS})

    def __str__(self) -> str:
        return (f"inflight: {self.owned} owned, "
                f"{self.joined} joined onto in-flight runs")


class InflightTable:
    """Shared futures for runs currently executing, keyed by spec hash."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}
        self.stats = InflightStats(registry=registry, instance=instance)

    def claim(self, keys: Iterable[str]
              ) -> tuple[dict[str, Future], dict[str, Future]]:
        """Atomically claim ``keys``; returns ``(owned, joined)``.

        ``owned`` maps each key this caller must now execute to the
        fresh future it must later :meth:`resolve` or :meth:`fail`;
        ``joined`` maps keys already in flight to the existing future
        to wait on.  Atomic over the whole key set, so two concurrent
        claims can never both own the same key.
        """
        owned: dict[str, Future] = {}
        joined: dict[str, Future] = {}
        with self._lock:
            for key in keys:
                existing = self._futures.get(key)
                if existing is not None:
                    joined[key] = existing
                    self.stats.joined += 1
                else:
                    future: Future = Future()
                    self._futures[key] = future
                    owned[key] = future
                    self.stats.owned += 1
        return owned, joined

    def resolve(self, key: str, summary) -> None:
        """Fulfil the in-flight future for ``key`` and retire it."""
        with self._lock:
            future = self._futures.pop(key, None)
        if future is not None:
            future.set_result(summary)

    def fail(self, key: str, exc: BaseException) -> None:
        """Fail the in-flight future for ``key`` and retire it."""
        with self._lock:
            future = self._futures.pop(key, None)
        if future is not None:
            future.set_exception(exc)

    def __len__(self) -> int:
        with self._lock:
            return len(self._futures)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._futures
