"""The execution layer: policy-free simulation running.

:func:`execute` is the single entry point that maps a spec to a
finished summary; it is a module-level function so
``ProcessPoolExecutor`` can ship it to workers.  The layer never
decides *what* to run together -- a
:class:`~repro.service.planner.ExecutionPlanner` hands it task groups
(singletons, or capture-plus-replay classes) and it runs them.

Two executors share those entry points:

* :class:`BatchExecutor` -- the terminal layer of a
  :class:`~repro.service.resolver.ResolverChain`; runs one batch to
  completion with a per-batch process pool (batches run for seconds to
  minutes, so spawn cost is noise, and a long-lived Runner never holds
  idle worker processes between experiments).  All failures are
  collected -- one failing simulation neither discards the rest of the
  batch nor shadows the other failures.
* :class:`ExecutionBackend` -- the shared, future-based pool an
  :class:`~repro.service.service.ExperimentService` keeps alive across
  jobs, so many concurrent clients draw from one set of workers.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    Future, ProcessPoolExecutor, as_completed,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import repro.workloads  # noqa: F401  -- populates the workload registry
from repro.service.planner import ExecutionPlanner
from repro.sim.captrace import ReplayMachine
from repro.systems import Session, get_system
from repro.workloads.base import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunSpec
    from repro.experiments.summary import RunSummary


def execute(spec: "RunSpec") -> "RunSummary":
    """Run one spec to completion and return its plain-data summary.

    Deterministic: the simulation is a pure function of the spec, so
    equal specs produce equal summaries in any process.  The system is
    resolved purely through :data:`repro.systems.SYSTEM_REGISTRY`, so
    any registered backend -- built-in or custom -- executes the same
    way.  (Backends registered at runtime exist only in the
    registering process; run them through a serial Runner.)
    """
    backend = get_system(spec.system)
    workload = REGISTRY.build(spec.workload, spec.scale, **dict(spec.args))
    run = (Session(backend, spec.config)
           .params(spec.params).policy(spec.policy).limit(spec.limit)
           .background(spec.background).timing(spec.timing_model)
           .run(workload))
    return backend.summarize(run, spec)


def execute_captured(spec: "RunSpec"):
    """Run one spec execution-driven with trace capture.

    Returns ``(summary, trace)`` where ``trace`` is a
    :class:`~repro.sim.captrace.CapturedTrace` with the summary
    attached as its snapshot (everything picklable, so workers can
    ship it back).
    """
    backend = get_system(spec.system)
    workload = REGISTRY.build(spec.workload, spec.scale, **dict(spec.args))
    run = (Session(backend, spec.config)
           .params(spec.params).policy(spec.policy).limit(spec.limit)
           .background(spec.background).timing(spec.timing_model)
           .capture().run(workload))
    summary = backend.summarize(run, spec)
    trace = run.trace
    trace.snapshot = summary
    return summary, trace


def execute_replay_group(specs: Sequence["RunSpec"]) -> list["RunSummary"]:
    """Run one replay class: capture ``specs[0]``, replay the rest.

    Returns summaries in input order; the first is execution-driven
    (``timing="execute"``), the rest trace-driven re-pricings of it
    (``timing="replay"``).
    """
    summary, trace = execute_captured(specs[0])
    replayer = ReplayMachine(trace)
    return [summary] + [replayer.run(spec=spec) for spec in specs[1:]]


def run_group(group: Sequence["RunSpec"]) -> list["RunSummary"]:
    """Run one planned task group (singleton or replay class)."""
    if len(group) > 1:
        return execute_replay_group(group)
    return [execute(group[0])]


@dataclass
class ExecutionOutcome:
    """Counters from one executor pass."""

    #: execution-driven simulations (each replay group executes exactly
    #: one capture; its replayed members count in ``replayed``)
    executed: int = 0
    #: executed runs that also recorded a replayable trace
    captured: int = 0
    #: summaries produced by trace replay instead of execution
    replayed: int = 0
    #: specs whose simulation raised (a failed replay group counts
    #: every member)
    failed: int = 0
    failures: list[tuple["RunSpec", BaseException]] = field(
        default_factory=list)


class BatchExecutor:
    """Terminal resolver layer: plan a batch, run it, keep everything.

    ``resolve(specs)`` returns the summaries of every spec that ran to
    completion as hits and the failed specs as misses; the exceptions
    themselves land in :attr:`failures` (and :attr:`last`), so the
    caller can surface *all* of them instead of just the first.
    """

    name = "executor"

    def __init__(self, planner: ExecutionPlanner,
                 max_workers: Optional[int] = None,
                 parallel: bool = True,
                 run_group_fn: Optional[Callable] = None) -> None:
        self.planner = planner
        self.max_workers = max_workers or os.cpu_count() or 1
        self.parallel = parallel and self.max_workers > 1
        self._run_group = run_group_fn or run_group
        self.failures: list[tuple["RunSpec", BaseException]] = []
        self.last = ExecutionOutcome()

    def resolve(self, specs: Sequence["RunSpec"]
                ) -> tuple[dict[str, "RunSummary"], list["RunSpec"]]:
        outcome = ExecutionOutcome()
        hits: dict[str, "RunSummary"] = {}
        if specs:
            tasks = self.planner.plan(specs)
            if self.parallel and len(tasks) > 1:
                self._resolve_parallel(tasks, hits, outcome)
            else:
                for group in tasks:
                    self._finish(group, hits, outcome)
        self.last = outcome
        self.failures = outcome.failures
        misses = [spec for spec, _ in outcome.failures]
        return hits, misses

    def store(self, spec: "RunSpec", summary: "RunSummary") -> None:
        """Terminal layer: nothing below to backfill."""

    # ------------------------------------------------------------------
    def _resolve_parallel(self, tasks, hits, outcome) -> None:
        workers = min(self.max_workers, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(self._run_group, group): group
                       for group in tasks}
            for future in as_completed(futures):
                self._finish(futures[future], hits, outcome,
                             lambda f=future: f.result())

    def _finish(self, group, hits, outcome,
                result_fn: Optional[Callable] = None) -> None:
        try:
            summaries = (result_fn() if result_fn
                         else self._run_group(group))
        except Exception as exc:
            outcome.failed += len(group)
            outcome.failures.extend((spec, exc) for spec in group)
            return
        for spec, summary in zip(group, summaries):
            hits[spec.spec_hash()] = summary
        outcome.executed += 1      # group[0] always executes
        if len(group) > 1:
            outcome.captured += 1
            outcome.replayed += len(group) - 1


class ExecutionBackend:
    """A shared worker pool turning planned groups into futures.

    Unlike :class:`BatchExecutor`'s per-batch pool, this pool persists
    across jobs: an :class:`ExperimentService` serves every client
    from one set of workers.  With ``parallel=False`` groups run
    inline on the calling thread (deterministic, picklability-free),
    returning already-completed futures.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 parallel: bool = True,
                 run_group_fn: Optional[Callable] = None) -> None:
        self.max_workers = max_workers or os.cpu_count() or 1
        self.parallel = parallel and self.max_workers > 1
        self._run_group = run_group_fn or run_group
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def submit_group(self, group: Sequence["RunSpec"]
                     ) -> "Future[list[RunSummary]]":
        if self.parallel:
            return self._ensure_pool().submit(self._run_group, group)
        future: Future = Future()
        try:
            future.set_result(self._run_group(group))
        except Exception as exc:
            future.set_exception(exc)
        return future

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers)
            return self._pool

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
