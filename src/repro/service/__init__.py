"""The layered experiment service.

``repro.service`` decomposes the experiment layer into composable
serving-system parts; :class:`repro.experiments.Runner` is a thin
facade over them, and :class:`ExperimentService` is their concurrent
job API:

* :class:`ResultStore` -- content-addressed durable layer: entries
  keyed by spec hash, store versioning, LRU size-bounded eviction,
  integrity sweep with quarantine, and hit/miss/corrupt/evict
  metrics (:class:`StoreStats`);
* :class:`MemoLayer` / :class:`StoreLayer` / :class:`BatchExecutor` --
  the resolver chain (:class:`ResolverChain`), every layer answering
  the uniform ``resolve(specs) -> hits, misses`` interface;
* :class:`InflightTable` -- cross-request deduplication: identical
  spec hashes in concurrent jobs share one in-flight future;
* :class:`DirectPlanner` / :class:`ReplayPlanner` -- execution
  planning (replay-class grouping), kept out of the executor so the
  execution layer stays policy-free;
* :class:`ExperimentService` -- ``submit(ExperimentSpec) ->``
  :class:`JobHandle`, streaming partial summaries via
  ``as_completed()`` while serving many concurrent clients over one
  shared executor and one store.
"""

from repro.service.executor import (
    BatchExecutor, ExecutionBackend, ExecutionOutcome, execute,
    execute_captured, execute_replay_group, run_group,
)
from repro.service.inflight import InflightStats, InflightTable
from repro.service.planner import (
    DirectPlanner, ExecutionPlanner, ReplayPlanner, planner_for,
    replay_class,
)
from repro.service.resolver import (
    ChainResult, MemoLayer, ResolverChain, ResolverLayer, StoreLayer,
)
from repro.service.service import (
    ExperimentService, JobHandle, ServiceStats, service_from_env,
)
from repro.service.store import (
    STORE_VERSION, ResultStore, StoreStats, StoreStatsSnapshot,
    SweepReport, store_from_env,
)

__all__ = [
    "BatchExecutor", "ExecutionBackend", "ExecutionOutcome", "execute",
    "execute_captured", "execute_replay_group", "run_group",
    "InflightStats", "InflightTable",
    "DirectPlanner", "ExecutionPlanner", "ReplayPlanner", "planner_for",
    "replay_class",
    "ChainResult", "MemoLayer", "ResolverChain", "ResolverLayer",
    "StoreLayer",
    "ExperimentService", "JobHandle", "ServiceStats", "service_from_env",
    "STORE_VERSION", "ResultStore", "StoreStats", "StoreStatsSnapshot",
    "SweepReport", "store_from_env",
]
