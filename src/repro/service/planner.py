"""Execution planning: how a batch of specs becomes pool tasks.

Planning is *policy*; running tasks is *mechanism*.  Keeping the two
apart is what lets the executor layer stay dumb: a planner partitions
unique specs into task groups, and the executor runs each group
without knowing (or caring) why the groups look the way they do.

* :class:`DirectPlanner` -- every spec is its own singleton task
  (execution-driven, maximally parallel);
* :class:`ReplayPlanner` -- specs differing only in replay-safe timing
  parameters (see :data:`repro.sim.captrace.REPLAY_SAFE_FIELDS`) form
  one *replay class* per group: the first member executes with trace
  capture, the rest are cheap trace replays.  Specs whose backend or
  timing model cannot capture stay singleton execution-driven tasks.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional, Protocol, Sequence

from repro.sim.captrace import REPLAY_SAFE_FIELDS
from repro.systems import get_system
from repro.timing import get_timing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunSpec


def replay_class(spec: "RunSpec") -> Optional[str]:
    """Grouping key for specs replayable from one shared capture.

    Two specs share a class when they differ only in
    :data:`~repro.sim.captrace.REPLAY_SAFE_FIELDS` timing parameters.
    Returns None when the spec's backend cannot capture at all, or
    when its timing model prices ops from occupancy (only the
    constant-cost ``fixed`` model records replayable decompositions).
    """
    if not get_system(spec.system).supports_capture:
        return None
    if not get_timing(spec.timing_model).supports_capture:
        return None
    ident = spec.to_dict()
    ident["params"] = {k: v for k, v in ident["params"].items()
                      if k not in REPLAY_SAFE_FIELDS}
    return json.dumps(ident, sort_keys=True)


class ExecutionPlanner(Protocol):
    """Partitions a batch of unique specs into executor task groups."""

    def plan(self, specs: Sequence["RunSpec"]) -> list[list["RunSpec"]]:
        ...


class DirectPlanner:
    """Every spec is one execution-driven task."""

    def plan(self, specs: Sequence["RunSpec"]) -> list[list["RunSpec"]]:
        return [[spec] for spec in specs]


class ReplayPlanner:
    """Group replay-compatible specs onto one shared capture.

    Specs in the same replay class become one multi-spec task (capture
    the first, replay the rest); classes of one -- and specs whose
    backend or timing model cannot capture -- stay singleton
    execution-driven tasks.
    """

    def plan(self, specs: Sequence["RunSpec"]) -> list[list["RunSpec"]]:
        groups: dict[str, list["RunSpec"]] = {}
        tasks: list[list["RunSpec"]] = []
        for spec in specs:
            key = replay_class(spec)
            if key is None:
                tasks.append([spec])
            else:
                groups.setdefault(key, []).append(spec)
        tasks.extend(groups.values())
        return tasks


def planner_for(replay: bool) -> ExecutionPlanner:
    """The planner matching a runner/service's replay mode."""
    return ReplayPlanner() if replay else DirectPlanner()
