"""Processes and OS threads.

The model OS has the usual two-level structure: a :class:`Process` owns
an address space, and one or more :class:`OSThread` objects are the
kernel-schedulable entities.  On a MISP machine a thread may
additionally be *multi-shredded*: its user-level runtime drives the
application-managed sequencers of whichever MISP processor the thread
is currently scheduled on (Section 2.6 of the paper).  The kernel does
not know about individual shreds -- its only extra duty is the
aggregate AMS state save area used on context switches (Section 2.2),
represented here by :attr:`OSThread.ams_save_area`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.mem.addrspace import AddressSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.stream import InstructionStream


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class OSThread:
    """One kernel-schedulable thread."""

    def __init__(self, tid: int, process: "Process", name: str,
                 stream: "InstructionStream",
                 pinned_cpu: Optional[int] = None) -> None:
        self.tid = tid
        self.process = process
        self.name = name
        self.stream = stream
        #: Hard CPU affinity; ``None`` lets the scheduler place freely.
        self.pinned_cpu = pinned_cpu
        self.state = ThreadState.NEW
        #: CPU the thread is currently on (running or last ran on).
        self.cpu: Optional[int] = None
        #: True once the user-level runtime has started shreds on AMSs;
        #: tells the context-switch path to save/restore AMS state.
        self.is_shredded = False
        #: Frozen AMS shred state captured at switch-out: list of
        #: (ams-slot-index, opaque continuation) pairs.
        self.ams_save_area: list[tuple[int, Any]] = []
        # -- statistics ---------------------------------------------------
        self.cpu_cycles = 0
        self.start_time: Optional[int] = None
        self.exit_time: Optional[int] = None
        self.context_switches = 0

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<OSThread {self.tid} '{self.name}' {self.state.value}"
                f" cpu={self.cpu}>")


class Process:
    """One OS process: an address space plus threads."""

    def __init__(self, pid: int, name: str, address_space: AddressSpace) -> None:
        self.pid = pid
        self.name = name
        self.address_space = address_space
        self.threads: list[OSThread] = []
        self.exited = False
        self.exit_time: Optional[int] = None

    def live_threads(self) -> Iterator[OSThread]:
        return (t for t in self.threads if t.state is not ThreadState.EXITED)

    @property
    def done(self) -> bool:
        return all(t.state is ThreadState.EXITED for t in self.threads)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.pid} '{self.name}' threads={len(self.threads)}>"
