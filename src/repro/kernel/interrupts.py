"""Interrupt definitions for the model machine.

Three sources exist, mirroring the Table 1 event taxonomy:

* **Timer** -- periodic per-CPU timer interrupts driving the quantum
  scheduler (the "Timer" column);
* **Device** -- uncategorized device interrupts steered to CPU 0 (the
  "Interrupt" column);
* **IPI** -- inter-processor interrupts, the privileged dual of MISP's
  user-level SIGNAL (Section 2.4).  The kernel uses IPIs for cross-CPU
  reschedule kicks and the TLB-shootdown protocol (Section 2.6), which
  MISP supports without OS changes.

Delivery mechanics (pending flags, ring transitions, AMS serialization)
live in the machine layer; this module defines the vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class InterruptKind(enum.Enum):
    TIMER = "timer"
    DEVICE = "device"
    IPI_RESCHEDULE = "ipi_reschedule"
    IPI_TLB_SHOOTDOWN = "ipi_tlb_shootdown"


@dataclass(frozen=True)
class Interrupt:
    """One pending interrupt at a CPU."""

    kind: InterruptKind
    #: opaque payload (e.g. the vpn list for a TLB shootdown)
    payload: Any = None

    @property
    def is_ipi(self) -> bool:
        return self.kind in (InterruptKind.IPI_RESCHEDULE,
                             InterruptKind.IPI_TLB_SHOOTDOWN)


@dataclass(frozen=True)
class ShootdownRequest:
    """A TLB-shootdown broadcast: invalidate ``vpns`` for ``pid``.

    ``vpns`` of ``None`` means a full flush (CR3 reload).
    """

    pid: int
    vpns: Optional[tuple[int, ...]] = None
