"""Model OS kernel: processes, threads, scheduling, faults, syscalls."""

from repro.kernel.interrupts import Interrupt, InterruptKind, ShootdownRequest
from repro.kernel.kernel import Kernel
from repro.kernel.process import OSThread, Process, ThreadState
from repro.kernel.scheduler import Scheduler
from repro.kernel.syscalls import SyscallSpec, SyscallTable

__all__ = [
    "Interrupt", "InterruptKind", "ShootdownRequest", "Kernel",
    "OSThread", "Process", "ThreadState", "Scheduler", "SyscallSpec",
    "SyscallTable",
]
