"""The kernel thread scheduler (policy only).

A round-robin, per-CPU-run-queue scheduler in the style of the NT
scheduler the paper's prototype ran under.  Placement is least-loaded
with lowest-CPU-id tie breaking, and -- crucially for the Figure 7
reproduction -- the scheduler is **shred-oblivious**: it treats every
OS-visible CPU (every OMS) identically and has no idea that
descheduling a multi-shredded thread idles that MISP processor's AMSs.
That obliviousness is exactly the effect Section 5.4 measures.

Mechanism (context-switch costs, AMS suspension) lives in the machine
layer; this class only answers "which thread should CPU ``c`` run?".
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.kernel.process import OSThread, ThreadState


class Scheduler:
    """Round-robin scheduler over per-CPU ready queues."""

    def __init__(self, num_cpus: int) -> None:
        if num_cpus <= 0:
            raise ConfigurationError("scheduler needs at least one CPU")
        self.num_cpus = num_cpus
        self._queues: list[deque[OSThread]] = [deque() for _ in range(num_cpus)]
        self._current: list[Optional[OSThread]] = [None] * num_cpus

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _load(self, cpu: int) -> int:
        """Runnable threads on a CPU (its queue plus a running thread)."""
        return len(self._queues[cpu]) + (1 if self._current[cpu] else 0)

    def place(self, thread: OSThread) -> int:
        """Choose a CPU for a new or newly unblocked thread."""
        if thread.pinned_cpu is not None:
            if not 0 <= thread.pinned_cpu < self.num_cpus:
                raise ConfigurationError(
                    f"thread pinned to nonexistent CPU {thread.pinned_cpu}")
            return thread.pinned_cpu
        return min(range(self.num_cpus), key=lambda c: (self._load(c), c))

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def enqueue(self, thread: OSThread, cpu: Optional[int] = None) -> int:
        """Make a thread ready on ``cpu`` (or a freshly chosen one)."""
        if cpu is None:
            cpu = self.place(thread)
        thread.state = ThreadState.READY
        thread.cpu = cpu
        self._queues[cpu].append(thread)
        return cpu

    def current(self, cpu: int) -> Optional[OSThread]:
        return self._current[cpu]

    def has_ready(self, cpu: int) -> bool:
        return bool(self._queues[cpu])

    def pick_next(self, cpu: int) -> Optional[OSThread]:
        """Dispatch the next ready thread on ``cpu`` (or ``None``).

        The caller is responsible for having dealt with the previously
        running thread (requeue / block / exit) first.
        """
        if self._current[cpu] is not None:
            raise ConfigurationError(
                f"CPU {cpu} still has a current thread; preempt it first")
        if not self._queues[cpu]:
            return None
        thread = self._queues[cpu].popleft()
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu
        self._current[cpu] = thread
        return thread

    def preempt(self, cpu: int, requeue: bool = True) -> Optional[OSThread]:
        """Take the running thread off ``cpu``; requeue it if asked."""
        thread = self._current[cpu]
        self._current[cpu] = None
        if thread is not None and requeue:
            thread.state = ThreadState.READY
            self._queues[cpu].append(thread)
        return thread

    def remove(self, thread: OSThread) -> None:
        """Forget a thread entirely (exit or block)."""
        for cpu in range(self.num_cpus):
            if self._current[cpu] is thread:
                self._current[cpu] = None
                return
            try:
                self._queues[cpu].remove(thread)
                return
            except ValueError:
                continue

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def should_preempt(self, cpu: int) -> bool:
        """Quantum expiry policy: preempt iff someone else is waiting."""
        return self._current[cpu] is not None and bool(self._queues[cpu])

    def runnable_count(self) -> int:
        return sum(self._load(c) for c in range(self.num_cpus))

    def loads(self) -> list[int]:
        return [self._load(c) for c in range(self.num_cpus)]
