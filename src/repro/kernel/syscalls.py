"""System-call registry for the model kernel.

Service costs are expressed in cycles and default to
``params.syscall_service_cost``; individual calls may override.  The
registry exists so workloads can speak in named services ("write",
"sched_yield") while the kernel stays a pure cost/effect model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SyscallSpec:
    """Static description of one system call."""

    name: str
    #: service cost in cycles; None -> kernel default
    cost: Optional[int] = None
    #: whether the call may trigger a reschedule on return
    reschedules: bool = False
    #: whether the calling OS thread blocks after service; the block
    #: duration comes from the op's ``arg``.  Only meaningful on an
    #: OMS/CPU thread: a blocked multi-shredded thread freezes its
    #: whole shred team (the Open Dynamics Engine effect of Table 2).
    blocks: bool = False


#: System calls known out of the box.  Costs are left at the kernel
#: default unless a call is notably heavier or lighter.
_BUILTIN = [
    SyscallSpec("write", cost=None),
    SyscallSpec("read", cost=None),
    SyscallSpec("open", cost=None),
    SyscallSpec("close", cost=None),
    SyscallSpec("sbrk", cost=None),
    SyscallSpec("mmap", cost=None),
    SyscallSpec("gettime", cost=1200),
    SyscallSpec("sched_yield", cost=1500, reschedules=True),
    SyscallSpec("nanosleep", cost=2000, reschedules=True, blocks=True),
    SyscallSpec("wait_input", cost=2500, reschedules=True, blocks=True),
    SyscallSpec("io", cost=None),          # generic I/O used by proxies
    SyscallSpec("thread_exit", cost=2500),
]


class SyscallTable:
    """Mutable registry of :class:`SyscallSpec`."""

    def __init__(self) -> None:
        self._specs: dict[str, SyscallSpec] = {s.name: s for s in _BUILTIN}

    def register(self, spec: SyscallSpec) -> None:
        if spec.name in self._specs:
            raise ConfigurationError(f"syscall '{spec.name}' already registered")
        self._specs[spec.name] = spec

    def lookup(self, name: str) -> SyscallSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(f"unknown syscall '{name}'") from None

    def known(self) -> list[str]:
        return sorted(self._specs)
