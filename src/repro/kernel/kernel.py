"""The model OS kernel.

This is the Ring-0 side of the simulated machine: process and thread
lifecycle, demand-paging service, syscall service, and scheduling
policy.  It is deliberately *passive* -- the machine layer
(:mod:`repro.core.machine`) drives all timing, ring transitions, AMS
suspension, and proxy execution; the kernel supplies state transitions
and service costs.  This split mirrors the paper's prototype, where
the firmware (our machine layer) interposed on architectural events
and the unmodified OS serviced them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.kernel.process import OSThread, Process, ThreadState
from repro.kernel.scheduler import Scheduler
from repro.kernel.syscalls import SyscallSpec, SyscallTable
from repro.mem.addrspace import AddressSpace
from repro.mem.physical import PhysicalMemory
from repro.params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.stream import InstructionStream


class Kernel:
    """Process/thread management plus fault and syscall service."""

    def __init__(self, params: MachineParams, num_cpus: int) -> None:
        self.params = params
        self.physical = PhysicalMemory(params.physical_frames)
        self.scheduler = Scheduler(num_cpus)
        self.syscalls = SyscallTable()
        self.processes: list[Process] = []
        self._next_pid = 1
        self._next_tid = 1
        # -- statistics ----------------------------------------------------
        self.page_faults_serviced = 0
        self.syscalls_serviced = 0

    # ------------------------------------------------------------------
    # Process / thread lifecycle
    # ------------------------------------------------------------------
    def create_process(self, name: str) -> Process:
        space = AddressSpace(self.physical, name=name)
        process = Process(self._next_pid, name, space)
        self._next_pid += 1
        self.processes.append(process)
        return process

    def create_thread(self, process: Process, name: str,
                      stream: "InstructionStream",
                      pinned_cpu: Optional[int] = None) -> OSThread:
        """Create a thread; it is NOT ready until :meth:`start_thread`."""
        if process.exited:
            raise ConfigurationError(
                f"cannot add thread to exited process '{process.name}'")
        thread = OSThread(self._next_tid, process, name, stream, pinned_cpu)
        self._next_tid += 1
        process.threads.append(thread)
        return thread

    def start_thread(self, thread: OSThread) -> int:
        """Admit a NEW thread to the scheduler; returns its CPU."""
        if thread.state is not ThreadState.NEW:
            raise ConfigurationError(f"{thread} already started")
        return self.scheduler.enqueue(thread)

    def exit_thread(self, thread: OSThread, now: int) -> None:
        """Mark a thread exited and retire its process if it was last."""
        thread.state = ThreadState.EXITED
        thread.exit_time = now
        self.scheduler.remove(thread)
        process = thread.process
        if process.done and not process.exited:
            process.exited = True
            process.exit_time = now
            process.address_space.release()

    # ------------------------------------------------------------------
    # Service routines (costs consumed by the machine layer)
    # ------------------------------------------------------------------
    def service_page_fault(self, space: AddressSpace, vpn: int) -> int:
        """Make ``vpn`` resident; returns the service cost in cycles.

        Concurrent faults on the same page are benign: the loser of the
        race finds the page resident and pays a shortened re-validation
        cost.
        """
        if space.is_resident(vpn):
            return self.params.page_fault_service_cost // 4
        space.handle_fault(vpn)
        self.page_faults_serviced += 1
        return self.params.page_fault_service_cost

    def service_syscall(self, kind: str, cost_override: Optional[int] = None
                        ) -> tuple[int, SyscallSpec]:
        """Return (service cost, spec) for one system call."""
        spec = self.syscalls.lookup(kind)
        self.syscalls_serviced += 1
        if cost_override is not None:
            return cost_override, spec
        if spec.cost is not None:
            return spec.cost, spec
        return self.params.syscall_service_cost, spec

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return all(p.done for p in self.processes)

    def live_thread_count(self) -> int:
        return sum(1 for p in self.processes for t in p.live_threads())
