"""The SMP baseline machine (Section 5's comparison system)."""

from repro.smp.machine import build_smp_machine

__all__ = ["build_smp_machine"]
