"""The SMP baseline system.

The paper compares every MISP result against "a similarly configured
SMP machine" (Section 5): the same number of cores, all OS-visible,
with threads scheduled by the kernel.  In this model an SMP system is
simply a machine whose processors all have zero AMSs -- every MISP
mechanism (AMS serialization, proxy execution, SIGNAL) is then
structurally unreachable, and every core services its own faults,
syscalls, and timer interrupts locally.

SMP machines are complete at construction: because an SMP application
spawns its worker team through the OS, :func:`build_smp_machine`
registers the ``thread_create`` syscall up front (callers used to
patch it in afterwards).
"""

from __future__ import annotations

from typing import Optional

from repro.core.machine import Machine
from repro.errors import ConfigurationError
from repro.kernel.syscalls import SyscallSpec
from repro.mem.hierarchy import HierarchyFactory, private_l2_per_sequencer
from repro.params import DEFAULT_PARAMS, MachineParams


def ensure_thread_create(machine: Machine) -> Machine:
    """Register the thread_create syscall if this kernel lacks it."""
    try:
        machine.kernel.syscalls.lookup("thread_create")
    except ConfigurationError:
        machine.kernel.syscalls.register(SyscallSpec("thread_create"))
    return machine


def build_smp_machine(num_cpus: int,
                      params: MachineParams = DEFAULT_PARAMS,
                      record_fine_trace: bool = False,
                      hierarchy: Optional[HierarchyFactory] = None) -> Machine:
    """Build an SMP machine with ``num_cpus`` OS-visible cores.

    SMP cores get *private* L2s by default -- cross-core sharing pays
    coherence invalidations instead, the cost the paper's shreds avoid
    by sharing one processor's hierarchy.
    """
    return ensure_thread_create(
        Machine([0] * num_cpus, params=params,
                record_fine_trace=record_fine_trace,
                hierarchy=hierarchy or private_l2_per_sequencer))
