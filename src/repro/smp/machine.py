"""The SMP baseline system.

The paper compares every MISP result against "a similarly configured
SMP machine" (Section 5): the same number of cores, all OS-visible,
with threads scheduled by the kernel.  In this model an SMP system is
simply a machine whose processors all have zero AMSs -- every MISP
mechanism (AMS serialization, proxy execution, SIGNAL) is then
structurally unreachable, and every core services its own faults,
syscalls, and timer interrupts locally.
"""

from __future__ import annotations

from repro.core.machine import Machine
from repro.params import DEFAULT_PARAMS, MachineParams


def build_smp_machine(num_cpus: int,
                      params: MachineParams = DEFAULT_PARAMS,
                      record_fine_trace: bool = False) -> Machine:
    """Build an SMP machine with ``num_cpus`` OS-visible cores."""
    return Machine([0] * num_cpus, params=params,
                   record_fine_trace=record_fine_trace)
