"""Physical memory: frame allocator plus word-addressable storage.

Storage is sparse (a dict keyed by word address) because the mini-ISA
programs touch few locations, while the direct-execution workloads
never read simulated memory contents at all -- they only exercise the
translation and paging machinery.  Frames are recycled through a free
list so long multi-process runs do not leak.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.params import PAGE_SIZE


class PhysicalMemory:
    """A pool of page frames with optional word storage.

    Frame numbers are dense integers in ``[0, num_frames)``.  Word
    storage is 4-byte-granular and zero-initialized (demand-zero
    semantics, which is also what makes first touches *compulsory*
    page faults in the paper's sense).
    """

    WORD = 4

    def __init__(self, num_frames: int) -> None:
        if num_frames <= 0:
            raise MemoryError_("physical memory needs at least one frame")
        self.num_frames = num_frames
        self._next_fresh = 0
        self._free: list[int] = []
        self._words: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Frame allocation
    # ------------------------------------------------------------------
    @property
    def frames_allocated(self) -> int:
        return self._next_fresh - len(self._free)

    @property
    def frames_free(self) -> int:
        return self.num_frames - self.frames_allocated

    def alloc_frame(self) -> int:
        """Allocate a zeroed frame; raises when physical memory is full."""
        if self._free:
            return self._free.pop()
        if self._next_fresh >= self.num_frames:
            raise MemoryError_(
                f"out of physical memory ({self.num_frames} frames in use)")
        frame = self._next_fresh
        self._next_fresh += 1
        return frame

    def free_frame(self, frame: int) -> None:
        """Return a frame to the pool and clear its contents."""
        if not 0 <= frame < self._next_fresh:
            raise MemoryError_(f"freeing frame {frame} that was never allocated")
        base = frame * PAGE_SIZE
        for offset in range(0, PAGE_SIZE, self.WORD):
            self._words.pop(base + offset, None)
        self._free.append(frame)

    # ------------------------------------------------------------------
    # Word storage (used by the mini-ISA interpreter)
    # ------------------------------------------------------------------
    def read_word(self, paddr: int) -> int:
        """Read the 32-bit word at a physical address (zero default)."""
        self._check_paddr(paddr)
        return self._words.get(paddr & ~(self.WORD - 1), 0)

    def write_word(self, paddr: int, value: int) -> None:
        """Write a 32-bit word (wraps modulo 2**32)."""
        self._check_paddr(paddr)
        self._words[paddr & ~(self.WORD - 1)] = value & 0xFFFFFFFF

    def _check_paddr(self, paddr: int) -> None:
        if not 0 <= paddr < self.num_frames * PAGE_SIZE:
            raise MemoryError_(f"physical address {paddr:#x} out of range")
