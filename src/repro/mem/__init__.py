"""Memory substrate: physical frames, page tables, TLBs, address spaces."""

from repro.mem.addrspace import AddressSpace, Region
from repro.mem.pagetable import PTE, PageTable, page_offset, vpn_of
from repro.mem.physical import PhysicalMemory
from repro.mem.tlb import TLB

__all__ = [
    "AddressSpace", "Region", "PTE", "PageTable", "page_offset",
    "vpn_of", "PhysicalMemory", "TLB",
]
