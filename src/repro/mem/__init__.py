"""Memory substrate: physical frames, page tables, TLBs, address
spaces, and the cache hierarchy."""

from repro.mem.addrspace import AddressSpace, Region
from repro.mem.hierarchy import (
    Cache, HierarchyFactory, MemoryHierarchy, private_l2_per_sequencer,
    shared_l2_global, shared_l2_per_processor,
)
from repro.mem.pagetable import PTE, PageTable, page_offset, vpn_of
from repro.mem.physical import PhysicalMemory
from repro.mem.tlb import TLB

__all__ = [
    "AddressSpace", "Region", "PTE", "PageTable", "page_offset",
    "vpn_of", "PhysicalMemory", "TLB", "Cache", "HierarchyFactory",
    "MemoryHierarchy", "private_l2_per_sequencer", "shared_l2_global",
    "shared_l2_per_processor",
]
