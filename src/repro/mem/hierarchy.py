"""The shared memory hierarchy: per-sequencer L1s, L2 domains, coherence.

The paper's cost argument for MISP (Section 2.1) is that sequencers
are cheap precisely because they *share* one processor's memory
hierarchy, where SMP worker threads pay coherence traffic across
private caches.  This module makes that difference measurable:

* :class:`Cache` -- an LRU set-associative cache model (hit/miss/
  invalidation/eviction counters, no data storage; the simulator's
  word store stays in :class:`~repro.mem.physical.PhysicalMemory`);
* :class:`MemoryHierarchy` -- the per-machine composition: one
  private L1 per sequencer, L2 *domains* (each domain one L2 shared
  by a set of sequencers), and a flat memory level behind them, with
  a directory-based invalidate-on-write protocol between caches;
* topology factories -- :func:`shared_l2_per_processor` (the MISP
  shape: every sequencer of a processor behind one L2),
  :func:`private_l2_per_sequencer` (the SMP shape: every core its own
  L2), and :func:`shared_l2_global` (one L2 for the whole machine).

System backends declare their topology in ``build_machine`` (see
:mod:`repro.systems.backends`), so ``misp`` runs shreds behind one
shared L2 while ``smp`` gives every core a private one -- under the
same coherence protocol, which is what makes sharing-vs-coherence an
observable difference between backends rather than an assumption.

Addresses are *physical*: the machine translates through the touching
sequencer's TLB first (``Machine._cost_access``) and then charges the
hierarchy.  Instruction fetches use synthetic
physical addresses above the frame store, handed out per program
image by :meth:`MemoryHierarchy.code_segment`.

This is the simulator's hottest code: a page ``Touch`` streams 64
lines through :meth:`MemoryHierarchy.access_range` and every
instruction fetch probes the L1.  Cache sets are flat Python lists
(LRU at index 0, MRU last) -- membership, promotion, and eviction on
a 4/8-entry list are single C-level list operations -- and
``access_range`` computes the line range once and charges the span
analytically from batched per-level hit counts, preserving exact LRU
semantics (asserted in ``tests/test_hierarchy.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.params import PAGE_SIZE, MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.processor import MISPProcessor

#: a topology factory: (processors, params) -> MemoryHierarchy
HierarchyFactory = Callable[[Sequence["MISPProcessor"], MachineParams],
                            "MemoryHierarchy"]


class Cache:
    """An LRU set-associative cache (tags only, no data).

    Lines are identified by *line number* (``paddr // line_size``);
    the hierarchy does the division once per access.  ``access`` does
    not allocate -- the hierarchy installs lines explicitly with
    ``fill`` so it can keep its coherence directory in sync.

    Sets are flat lists ordered LRU-first: exact LRU, array-backed.
    """

    __slots__ = ("name", "assoc", "num_sets", "_sets",
                 "hits", "misses", "invalidations", "evictions")

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_size: int) -> None:
        if assoc <= 0:
            raise ConfigurationError(f"{name}: associativity must be >= 1")
        if line_size <= 0:
            raise ConfigurationError(f"{name}: line size must be >= 1")
        lines = max(assoc, size_bytes // line_size)
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, lines // assoc)
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def access(self, line: int) -> bool:
        """Look a line up, updating LRU order; True on a hit."""
        entries = self._sets[line % self.num_sets]
        if line in entries:
            if entries[-1] != line:
                entries.remove(line)
                entries.append(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line: int) -> Optional[int]:
        """Install a line, returning the evicted line number (if any)."""
        entries = self._sets[line % self.num_sets]
        if line in entries:
            if entries[-1] != line:
                entries.remove(line)
                entries.append(line)
            return None
        evicted = None
        if len(entries) >= self.assoc:
            evicted = entries.pop(0)
            self.evictions += 1
        entries.append(line)
        return evicted

    def invalidate(self, line: int) -> bool:
        """Drop a line (coherence); True if it was present."""
        entries = self._sets[line % self.num_sets]
        if line not in entries:
            return False
        entries.remove(line)
        self.invalidations += 1
        return True

    def __contains__(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cache {self.name} {self.num_sets}x{self.assoc} "
                f"h={self.hits} m={self.misses}>")


class MemoryHierarchy:
    """Per-machine cache composition with invalidate-on-write coherence.

    Built from *domains*: ``add_domain(seq_ids)`` creates one L2 and a
    private L1 for each sequencer in the domain.  An access walks
    L1 -> domain L2 -> memory, charging
    ``l1_hit_cost`` / ``l2_hit_cost`` / ``mem_cost`` cumulatively, and
    a write invalidates every *other* cache holding the line (a
    directory keeps writes O(sharers), not O(caches)).
    """

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.line_size = params.cache_line_size
        self._l1s: dict[int, Cache] = {}
        self._l2_of: dict[int, Cache] = {}
        self.l2s: list[Cache] = []
        #: coherence directory: line -> caches currently holding it
        #: (an insertion-ordered dict-as-set, for determinism)
        self._sharers: dict[int, dict[Cache, None]] = {}
        #: accesses that went all the way to the flat memory level
        self.mem_accesses = 0
        # synthetic code-segment allocator (instruction fetch): bases
        # start above the physical frame store so code never aliases
        # data frames
        self._code_bases: dict[int, int] = {}
        self._next_code_addr = params.physical_frames * PAGE_SIZE

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_domain(self, seq_ids: Iterable[int]) -> Cache:
        """Create one L2 shared by ``seq_ids`` (plus their private L1s)."""
        params = self.params
        l2 = Cache(f"L2#{len(self.l2s)}", params.l2_size, params.l2_assoc,
                   self.line_size)
        self.l2s.append(l2)
        for seq_id in seq_ids:
            if seq_id in self._l1s:
                raise ConfigurationError(
                    f"sequencer {seq_id} already attached to a hierarchy "
                    "domain")
            self._l1s[seq_id] = Cache(f"L1#{seq_id}", params.l1_size,
                                      params.l1_assoc, self.line_size)
            self._l2_of[seq_id] = l2
        return l2

    def domains(self) -> tuple[tuple[int, ...], ...]:
        """Topology as plain data: one tuple of seq_ids per L2 domain.

        Feeds :class:`repro.sim.captrace.ReplayMachine`, which rebuilds
        an identical hierarchy under new parameters.
        """
        return tuple(
            tuple(seq_id for seq_id, cache in self._l2_of.items()
                  if cache is l2)
            for l2 in self.l2s)

    def l1(self, seq_id: int) -> Cache:
        try:
            return self._l1s[seq_id]
        except KeyError:
            raise ConfigurationError(
                f"sequencer {seq_id} is attached to no hierarchy "
                "domain") from None

    def l2(self, seq_id: int) -> Cache:
        return self._l2_of[seq_id]

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def access(self, seq_id: int, paddr: int, write: bool = False) -> int:
        """One memory access by ``seq_id``; returns the cycles to charge."""
        return self.access_line(seq_id, paddr // self.line_size, write)

    def access_line(self, seq_id: int, line: int, write: bool = False) -> int:
        """One access by pre-computed line number (the scalar hot path)."""
        params = self.params
        l1 = self._l1s.get(seq_id)
        if l1 is None:
            raise ConfigurationError(
                f"sequencer {seq_id} is attached to no hierarchy domain")
        l2 = self._l2_of[seq_id]
        cycles = params.l1_hit_cost
        if not l1.access(line):
            cycles += params.l2_hit_cost
            if not l2.access(line):
                cycles += params.mem_cost
                self.mem_accesses += 1
                self._install(l2, line)
            self._install(l1, line)
        if write:
            self._invalidate_sharers(line, l1, l2)
        return cycles

    def access_range(self, seq_id: int, paddr: int, num_bytes: int,
                     write: bool = False) -> int:
        """Stream ``num_bytes`` from ``paddr`` as a batch of lines.

        This is what a page :class:`~repro.exec.ops.Touch` charges:
        the loop body referencing every line of the page, so cache
        capacity, reuse, and the miss penalty all scale with the data
        actually moved rather than with page count.

        The line range is computed once (one division per call, not
        per line), the per-line L1/L2 probes are inlined, and the
        span's cycle charge is assembled analytically from the
        per-level hit counts -- identical counters and total cost to
        the scalar walk, without the per-line call overhead.
        """
        line_size = self.line_size
        first = paddr // line_size
        last = (paddr + max(1, num_bytes) - 1) // line_size
        if first == last:
            return self.access_line(seq_id, first, write)
        l1 = self._l1s.get(seq_id)
        if l1 is None:
            raise ConfigurationError(
                f"sequencer {seq_id} is attached to no hierarchy domain")
        l2 = self._l2_of[seq_id]
        l1_sets, l1_num_sets = l1._sets, l1.num_sets
        l2_sets, l2_num_sets = l2._sets, l2.num_sets
        install = self._install
        invalidate_sharers = self._invalidate_sharers if write else None
        n_l1_hits = 0
        n_l2_hits = 0
        n_mem = 0
        for line in range(first, last + 1):
            entries = l1_sets[line % l1_num_sets]
            if line in entries:
                if entries[-1] != line:
                    entries.remove(line)
                    entries.append(line)
                n_l1_hits += 1
            else:
                entries = l2_sets[line % l2_num_sets]
                if line in entries:
                    if entries[-1] != line:
                        entries.remove(line)
                        entries.append(line)
                    n_l2_hits += 1
                else:
                    n_mem += 1
                    install(l2, line)
                install(l1, line)
            if invalidate_sharers is not None:
                invalidate_sharers(line, l1, l2)
        n_lines = last - first + 1
        n_l1_misses = n_lines - n_l1_hits
        l1.hits += n_l1_hits
        l1.misses += n_l1_misses
        l2.hits += n_l2_hits
        l2.misses += n_mem
        self.mem_accesses += n_mem
        # cumulative charge: every line pays L1, every L1 miss adds the
        # L2 probe, every L2 miss adds the memory penalty
        params = self.params
        return (n_lines * params.l1_hit_cost
                + n_l1_misses * params.l2_hit_cost
                + n_mem * params.mem_cost)

    def _install(self, cache: Cache, line: int) -> None:
        evicted = cache.fill(line)
        if evicted is not None:
            holders = self._sharers.get(evicted)
            if holders is not None:
                holders.pop(cache, None)
                if not holders:
                    del self._sharers[evicted]
        self._sharers.setdefault(line, {})[cache] = None

    def _invalidate_sharers(self, line: int, l1: Cache, l2: Cache) -> None:
        """Invalidate-on-write: purge the line from every other cache."""
        holders = self._sharers.get(line)
        if holders is None:
            return
        for cache in [c for c in holders if c is not l1 and c is not l2]:
            cache.invalidate(line)
            del holders[cache]

    # ------------------------------------------------------------------
    # Instruction fetch (synthetic code segments)
    # ------------------------------------------------------------------
    def code_segment(self, key: int, num_words: int) -> int:
        """Base physical address for a program image, stable per key."""
        base = self._code_bases.get(key)
        if base is None:
            base = self._next_code_addr
            self._code_bases[key] = base
            size = max(1, num_words) * 4
            pages = -(-size // PAGE_SIZE)  # ceil
            self._next_code_addr += pages * PAGE_SIZE
        return base

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Aggregate per-level totals (the RunSummary view)."""
        l1s = self._l1s.values()
        return {
            "l1_hits": sum(c.hits for c in l1s),
            "l1_misses": sum(c.misses for c in l1s),
            "l1_invalidations": sum(c.invalidations for c in l1s),
            "l2_hits": sum(c.hits for c in self.l2s),
            "l2_misses": sum(c.misses for c in self.l2s),
            "l2_invalidations": sum(c.invalidations for c in self.l2s),
            "mem_accesses": self.mem_accesses,
        }

    def cache_counters(self) -> dict[str, dict[str, int]]:
        """Per-cache counters keyed by cache name (the metrics view).

        L1 names carry their sequencer id (``L1#<seq_id>``), L2s their
        creation index, so an observed run can attribute traffic to
        individual caches, not just levels.
        """
        out: dict[str, dict[str, int]] = {}
        for cache in list(self._l1s.values()) + self.l2s:
            out[cache.name] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "invalidations": cache.invalidations,
                "evictions": cache.evictions,
            }
        return out

    def describe(self) -> str:
        """Topology string, e.g. ``"L1x8 / L2x1 (8 shared)"``."""
        sharing = {}
        for l2 in self.l2s:
            n = sum(1 for c in self._l2_of.values() if c is l2)
            sharing[n] = sharing.get(n, 0) + 1
        shape = "+".join(f"{count}x{n}-way" if n > 1 else f"{count}private"
                         for n, count in sorted(sharing.items()))
        return f"L1x{len(self._l1s)} / L2x{len(self.l2s)} ({shape})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryHierarchy {self.describe()}>"


# ----------------------------------------------------------------------
# Topology factories (what system backends declare in build_machine)
# ----------------------------------------------------------------------
def shared_l2_per_processor(processors: Sequence["MISPProcessor"],
                            params: MachineParams) -> MemoryHierarchy:
    """The MISP shape: all sequencers of a processor share one L2.

    A plain CPU (zero AMSs) degenerates to a private L2, so this is
    also coherent-by-construction for mixed ``1x4+4`` partitions.
    """
    hierarchy = MemoryHierarchy(params)
    for proc in processors:
        hierarchy.add_domain(s.seq_id for s in proc.sequencers())
    return hierarchy


def private_l2_per_sequencer(processors: Sequence["MISPProcessor"],
                             params: MachineParams) -> MemoryHierarchy:
    """The SMP shape: every sequencer its own L2 (coherence pays for
    sharing instead)."""
    hierarchy = MemoryHierarchy(params)
    for proc in processors:
        for seq in proc.sequencers():
            hierarchy.add_domain([seq.seq_id])
    return hierarchy


def shared_l2_global(processors: Sequence["MISPProcessor"],
                     params: MachineParams) -> MemoryHierarchy:
    """One machine-wide L2 behind every sequencer (an idealized what-if)."""
    hierarchy = MemoryHierarchy(params)
    hierarchy.add_domain(s.seq_id for p in processors
                         for s in p.sequencers())
    return hierarchy
