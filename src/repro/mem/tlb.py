"""Per-sequencer translation lookaside buffers.

Each sequencer owns one TLB.  In IA-32 (and in this model) a write to
CR3 purges the writing sequencer's TLB; cross-sequencer invalidation
requires the TLB-shootdown IPI protocol, which the model kernel in
:mod:`repro.kernel.interrupts` implements.  Section 2.3 of the paper
relies on exactly these semantics: after a CR3 synchronization each
sequencer's hardware page walker refills its own TLB independently.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class TLB:
    """A finite, LRU-replaced cache of vpn -> frame translations."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.capacity = entries
        self._map: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the cached frame for ``vpn``, updating LRU order."""
        frame = self._map.get(vpn)
        if frame is None:
            self.misses += 1
            return None
        self._map.move_to_end(vpn)
        self.hits += 1
        return frame

    def peek(self, vpn: int) -> Optional[int]:
        """Translation without LRU or statistics side effects.

        Used by the commit phase of a two-phase access (issue already
        counted the lookup); architecturally it is the same reference.
        """
        return self._map.get(vpn)

    def insert(self, vpn: int, frame: int) -> None:
        """Install a translation, evicting the LRU entry when full."""
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self._map[vpn] = frame
            return
        if len(self._map) >= self.capacity:
            self._map.popitem(last=False)
        self._map[vpn] = frame

    def invalidate(self, vpn: int) -> bool:
        """Drop one translation (the INVLPG / shootdown path)."""
        return self._map.pop(vpn, None) is not None

    def flush(self) -> None:
        """Purge all translations (the CR3-write path)."""
        self._map.clear()
        self.flushes += 1

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._map
