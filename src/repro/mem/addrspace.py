"""Virtual address spaces with demand paging.

An :class:`AddressSpace` is the per-process virtual memory abstraction:
a page table, a simple region allocator, and demand-paging state.  The
kernel's page-fault handler calls :meth:`AddressSpace.handle_fault` to
make a page resident; whether that fault was raised by an OMS or
relayed from an AMS via proxy execution is the machine layer's concern.

Pages are demand-zero: a region reserves virtual pages but allocates no
frames, so the first touch of each page takes exactly one *compulsory*
page fault.  This mirrors the behaviour the paper observes in Section
5.3 ("compulsory page faults cause the majority of proxy execution
events ... once the working set is resident, the AMSs make no further
proxy requests").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MemoryError_
from repro.mem.pagetable import PTE, PageTable, vpn_of
from repro.mem.physical import PhysicalMemory
from repro.params import PAGE_SIZE, VADDR_BITS


@dataclass(frozen=True)
class Region:
    """A contiguous range of virtual pages reserved in an address space."""

    name: str
    start_vpn: int
    num_pages: int

    @property
    def base_vaddr(self) -> int:
        return self.start_vpn * PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    def vpn(self, page_index: int) -> int:
        """Virtual page number of the page_index-th page of the region."""
        if not 0 <= page_index < self.num_pages:
            raise MemoryError_(
                f"page {page_index} outside region '{self.name}' "
                f"({self.num_pages} pages)")
        return self.start_vpn + page_index

    def vaddr(self, byte_offset: int) -> int:
        """Virtual address of a byte offset into the region."""
        if not 0 <= byte_offset < self.size_bytes:
            raise MemoryError_(
                f"offset {byte_offset} outside region '{self.name}'")
        return self.base_vaddr + byte_offset


class AddressSpace:
    """One process's virtual address space."""

    #: First vpn handed out by the region allocator (skip page 0 so null
    #: dereferences are always faults that no region can satisfy).
    _FIRST_VPN = 16

    def __init__(self, physical: PhysicalMemory, name: str = "") -> None:
        self.name = name
        self.physical = physical
        self.page_table = PageTable()
        self._next_vpn = self._FIRST_VPN
        self._regions: dict[str, Region] = {}
        #: Count of demand faults satisfied (compulsory faults).
        self.faults_serviced = 0

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------
    def reserve(self, name: str, num_pages: int) -> Region:
        """Reserve a fresh demand-zero region of ``num_pages`` pages."""
        if num_pages <= 0:
            raise MemoryError_("a region needs at least one page")
        if name in self._regions:
            raise MemoryError_(f"region '{name}' already exists")
        if self._next_vpn + num_pages > (1 << VADDR_BITS) // PAGE_SIZE:
            raise MemoryError_("virtual address space exhausted")
        region = Region(name, self._next_vpn, num_pages)
        self._next_vpn += num_pages
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(f"no region named '{name}'") from None

    def regions(self) -> list[Region]:
        return list(self._regions.values())

    # ------------------------------------------------------------------
    # Translation and demand paging
    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> Optional[int]:
        """Translate to a physical address, or ``None`` on a fault."""
        pte = self.page_table.lookup(vpn_of(vaddr))
        if pte is None:
            return None
        return pte.frame * PAGE_SIZE + vaddr % PAGE_SIZE

    def is_resident(self, vpn: int) -> bool:
        return vpn in self.page_table

    def _owning_region(self, vpn: int) -> Optional[Region]:
        for region in self._regions.values():
            if region.start_vpn <= vpn < region.start_vpn + region.num_pages:
                return region
        return None

    def handle_fault(self, vpn: int) -> PTE:
        """Service a demand fault: allocate a zero frame and map it.

        Raises :class:`MemoryError_` if the page belongs to no region
        (a wild access) or is already resident (a spurious fault --
        which can legitimately happen when two sequencers fault on the
        same page concurrently; callers should check
        :meth:`is_resident` under the kernel's mutual exclusion first).
        """
        if self.is_resident(vpn):
            raise MemoryError_(f"spurious fault: vpn {vpn:#x} already resident")
        if self._owning_region(vpn) is None:
            raise MemoryError_(f"wild access: vpn {vpn:#x} is in no region")
        frame = self.physical.alloc_frame()
        pte = self.page_table.map(vpn, frame)
        self.faults_serviced += 1
        return pte

    def resident_pages(self) -> int:
        return len(self.page_table)

    def release(self) -> None:
        """Free every frame this address space holds (process exit)."""
        for vpn, pte in list(self.page_table.entries()):
            self.physical.free_frame(pte.frame)
            self.page_table.unmap(vpn)
