"""Per-address-space page tables.

The paper's sharing model (Section 2.3) hinges on one fact: every
sequencer in a MISP processor translates through the *same* page-table
base (the Ring-0 control register CR3), so keeping CR3 synchronized
across sequencers gives all shreds one virtual address space.  The
:class:`PageTable` here is that shared structure; the per-sequencer
caches of it live in :mod:`repro.mem.tlb`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import MemoryError_
from repro.params import PAGE_SIZE, VADDR_BITS


def vpn_of(vaddr: int) -> int:
    """Virtual page number containing a virtual address."""
    if not 0 <= vaddr < (1 << VADDR_BITS):
        raise MemoryError_(f"virtual address {vaddr:#x} out of range")
    return vaddr // PAGE_SIZE


def page_offset(vaddr: int) -> int:
    """Byte offset of a virtual address within its page."""
    return vaddr % PAGE_SIZE


@dataclass
class PTE:
    """One page-table entry."""

    frame: int
    writable: bool = True
    accessed: bool = False
    dirty: bool = False


class PageTable:
    """Mapping from virtual page numbers to :class:`PTE`.

    Identified by a small integer ``base`` standing in for the physical
    address that would be loaded into CR3.
    """

    _next_base = 1

    def __init__(self) -> None:
        self.base = PageTable._next_base
        PageTable._next_base += 1
        self._entries: dict[int, PTE] = {}

    def lookup(self, vpn: int) -> Optional[PTE]:
        """Return the PTE for a page, or ``None`` if not present."""
        return self._entries.get(vpn)

    def map(self, vpn: int, frame: int, writable: bool = True) -> PTE:
        """Install a translation; remapping an existing page is an error."""
        if vpn in self._entries:
            raise MemoryError_(f"vpn {vpn:#x} is already mapped")
        pte = PTE(frame=frame, writable=writable)
        self._entries[vpn] = pte
        return pte

    def unmap(self, vpn: int) -> PTE:
        """Remove a translation, returning the old PTE."""
        try:
            return self._entries.pop(vpn)
        except KeyError:
            raise MemoryError_(f"vpn {vpn:#x} is not mapped") from None

    def protect(self, vpn: int, writable: bool) -> None:
        """Change the writability of an existing mapping."""
        pte = self.lookup(vpn)
        if pte is None:
            raise MemoryError_(f"vpn {vpn:#x} is not mapped")
        pte.writable = writable

    def entries(self) -> Iterator[tuple[int, PTE]]:
        yield from self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
