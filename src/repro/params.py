"""Machine and cost-model parameters.

All timing constants used by the simulator live here, in one frozen
dataclass, so that every experiment states its assumptions explicitly
and sweeps (e.g. the Figure 5 signal-cost sensitivity study) are a
matter of ``dataclasses.replace``.

The defaults follow Section 5.2 of the paper:

* ``signal_cost = 5000`` cycles -- the paper's "conservative estimate of
  a microcode-based implementation of the inter-sequencer signaling
  mechanism".
* The overhead equations (Section 5.1) are implemented in
  :mod:`repro.core.overhead` and are driven by these constants.

Service costs for the model OS kernel (page-fault service, syscall
service, timer handler, context switch) are scaled values chosen so
that scaled-down workload runs produce event populations in the same
relative proportions as the paper's Table 1.  Absolute cycle counts are
not comparable to the authors' 3.0 GHz Windows Server 2003 testbed and
are not meant to be.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Architectural page size in bytes (IA-32 small page).
PAGE_SIZE = 4096

#: Bits in a virtual address (IA-32 without PAE).
VADDR_BITS = 32

#: Default per-sequencer TLB capacity, in entries.
DEFAULT_TLB_ENTRIES = 64


@dataclass(frozen=True)
class MachineParams:
    """Every timing and sizing constant of the simulated machine.

    Instances are immutable; derive variants with
    :meth:`MachineParams.with_changes`.
    """

    # ------------------------------------------------------------------
    # MISP inter-sequencer signaling (Section 5.1 / 5.2)
    # ------------------------------------------------------------------
    #: Cost, in cycles, of one inter-sequencer signal (``signal`` in the
    #: paper's Equations 1-3).  5000 is the paper's conservative
    #: microcode estimate; 500/1000 model aggressive hardware; 0 models
    #: the ideal hardware baseline of Figure 5.
    signal_cost: int = 5000

    # ------------------------------------------------------------------
    # Kernel service costs (the ``priv`` term of Equation 1)
    # ------------------------------------------------------------------
    #: Cycles the kernel spends servicing one system call.
    syscall_service_cost: int = 4000
    #: Cycles the kernel spends servicing one page fault (allocate a
    #: demand-zero frame, update the page table).
    page_fault_service_cost: int = 9000
    #: Cycles the kernel spends in the timer-interrupt handler when no
    #: reschedule happens.
    timer_service_cost: int = 1500
    #: Cycles the kernel spends servicing an uncategorized device
    #: interrupt.
    interrupt_service_cost: int = 2500
    #: Additional cycles for an OS thread context switch (register file
    #: save/restore, run-queue manipulation).  For a thread with shreds,
    #: the aggregate AMS state save/restore happens concurrently across
    #: AMSs (Section 2.2), so it is charged once, not per AMS.
    context_switch_cost: int = 12000
    #: Cycles to save (or restore) one sequencer's architectural state
    #: to (from) the aggregate save area.  Charged once per switch since
    #: all AMSs save/restore in parallel (Section 5.1).
    sequencer_state_save_cost: int = 3000

    # ------------------------------------------------------------------
    # OS scheduling
    # ------------------------------------------------------------------
    #: Timer quantum in cycles.  Each OS-visible CPU (OMS or SMP core)
    #: takes a timer interrupt at this period.
    timer_quantum: int = 2_000_000
    #: Period, in cycles, of uncategorized device interrupts delivered
    #: to CPU 0 (models the paper's "Interrupt" column, roughly one per
    #: ~10 timer ticks on the interrupt-steered CPU).
    device_interrupt_period: int = 22_000_000

    # ------------------------------------------------------------------
    # Memory system
    # ------------------------------------------------------------------
    #: Physical memory size in 4 KiB frames (default 256 MiB).
    physical_frames: int = 65536
    #: Per-sequencer TLB entries.
    tlb_entries: int = DEFAULT_TLB_ENTRIES
    #: Cycles for a hardware page walk on a TLB miss that hits a
    #: present PTE (no fault, handled by the sequencer's page walker).
    page_walk_cost: int = 60

    # ------------------------------------------------------------------
    # Memory hierarchy (repro.mem.hierarchy)
    # ------------------------------------------------------------------
    #: Per-sequencer L1 cache size in bytes.
    l1_size: int = 32 * 1024
    #: L1 associativity (ways).
    l1_assoc: int = 4
    #: L2 cache size in bytes (one L2 per topology domain: shared by a
    #: MISP processor's sequencers, private per SMP core).
    l2_size: int = 512 * 1024
    #: L2 associativity (ways).
    l2_assoc: int = 8
    #: Cache line size in bytes (all levels).
    cache_line_size: int = 64
    #: Cycles for an access that hits in the L1 (charged on every
    #: hierarchy access as the pipeline's load-to-use latency).
    l1_hit_cost: int = 1
    #: Additional cycles when the access misses L1 and hits the L2.
    l2_hit_cost: int = 8
    #: Additional cycles when the access misses both caches and goes
    #: to the flat memory level (the figure_mem sweep axis).
    mem_cost: int = 60

    # ------------------------------------------------------------------
    # User-level runtime micro-costs (ShredLib)
    # ------------------------------------------------------------------
    #: Cycles for one atomic read-modify-write (lock cmpxchg).
    atomic_op_cost: int = 40
    #: Cycles for a work-queue push or pop once the lock is held.
    queue_op_cost: int = 80
    #: Cycles for the user-level shred context switch performed by the
    #: gang scheduler (swap EIP/ESP and callee-saved registers).
    shred_switch_cost: int = 200
    #: Cycles an idle gang scheduler waits between polls of an empty
    #: work queue (a PAUSE-loop batch; bounds wakeup latency).
    idle_poll_cost: int = 25_000

    # ------------------------------------------------------------------
    # Mini-ISA execution
    # ------------------------------------------------------------------
    #: Base cost, in cycles, of one mini-ISA instruction.
    isa_instruction_cost: int = 1

    # ------------------------------------------------------------------
    # Scoreboard pipeline (the ``scoreboard`` timing model;
    # ignored under ``fixed``)
    # ------------------------------------------------------------------
    #: ALU functional units shared by all sequencers of one processor.
    sb_alu_units: int = 2
    #: Memory (load/store/atomic) units shared per processor.
    sb_mem_units: int = 2
    #: Cycles through the in-order frontend (issue + read-operands).
    sb_frontend_depth: int = 4
    #: Cycles to refill the pipeline after one signal-broadcast drain
    #: (the per-signal term of the emergent SIGNAL cost).
    sb_drain_refill: int = 8

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, int) and value < 0:
                raise ValueError(f"{field.name} must be non-negative, got {value}")
        if self.timer_quantum == 0:
            raise ValueError("timer_quantum must be positive")
        if self.physical_frames == 0:
            raise ValueError("physical_frames must be positive")
        for field_name in ("l1_assoc", "l2_assoc", "cache_line_size",
                           "sb_alu_units", "sb_mem_units"):
            if getattr(self, field_name) == 0:
                raise ValueError(f"{field_name} must be positive")

    def with_changes(self, **changes: int) -> "MachineParams":
        """Return a copy with the given fields replaced.

        Unknown field names raise :class:`ValueError` -- a typo'd
        sweep axis must fail loudly, not silently leave the default.
        """
        unknown = [name for name in changes if name not in _FIELD_NAMES]
        if unknown:
            raise ValueError(
                f"unknown MachineParams field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(_FIELD_NAMES)}")
        return dataclasses.replace(self, **changes)


#: All MachineParams field names, for with_changes validation.
_FIELD_NAMES = frozenset(
    field.name for field in dataclasses.fields(MachineParams))


#: Shared default parameter set (signal = 5000 cycles, as in the paper).
DEFAULT_PARAMS = MachineParams()
