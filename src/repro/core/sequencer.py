"""The sequencer: MISP's new architectural resource (Section 2.1).

A sequencer is "a hardware thread context capable of fetching and
executing one stream of instructions".  It may be **OS-managed** (an
OMS -- supports all privilege rings, visible to the OS as a logical
CPU) or **application-managed** (an AMS -- Ring 3 only, invisible to
the OS, driven by user code through SIGNAL).

This class holds per-sequencer architectural state: the attached
instruction stream, the privilege ring, the private TLB, suspension
bookkeeping, and statistics.  All *behaviour* (dispatch, faults,
signals) is orchestrated by :class:`repro.core.machine.Machine`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.errors import ProtectionError
from repro.mem.tlb import TLB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.processor import MISPProcessor
    from repro.exec.stream import InstructionStream
    from repro.kernel.process import OSThread, Process


class SequencerRole(enum.Enum):
    """OS-managed vs application-managed (Section 2.2)."""

    OMS = "oms"
    AMS = "ams"


class Sequencer:
    """One hardware thread context."""

    def __init__(self, seq_id: int, role: SequencerRole,
                 tlb_entries: int) -> None:
        #: globally unique id (index into ``machine.sequencers``)
        self.seq_id = seq_id
        self.role = role
        #: logical Sequencer ID within the owning MISP processor, the
        #: SID operand of the SIGNAL instruction (0 = the OMS).
        self.sid: int = -1
        self.processor: Optional["MISPProcessor"] = None
        self.tlb = TLB(tlb_entries)
        #: current privilege ring; AMSs are architecturally pinned to 3.
        self._ring = 3
        #: the instruction stream being fetched, if any
        self.stream: Optional["InstructionStream"] = None
        #: OS thread currently dispatched here (OMS only)
        self.thread: Optional["OSThread"] = None
        #: process whose address space this sequencer translates
        #: through (its effective CR3); kept synchronized with the OMS
        #: for all AMSs of a processor (Section 2.3)
        self.process_ref: Optional["Process"] = None
        #: an op-completion or service event is in flight
        self.busy = False
        #: nested suspension count (ring-transition serialization and
        #: context-switch freezes stack; the sequencer runs at 0)
        self.suspend_depth = 0
        #: AMS is stalled awaiting proxy-execution service
        self.proxy_wait = False
        # -- statistics ----------------------------------------------------
        self.ops_executed = 0
        self.busy_cycles = 0
        self.suspended_cycles = 0
        self._suspended_since: Optional[int] = None

    # ------------------------------------------------------------------
    # Privilege
    # ------------------------------------------------------------------
    @property
    def ring(self) -> int:
        return self._ring

    def enter_ring0(self) -> None:
        if self.role is SequencerRole.AMS:
            raise ProtectionError(
                f"sequencer {self.seq_id} is an AMS; AMSs execute only "
                "Ring 3 (Section 2.2) -- Ring-0 work requires proxy execution")
        self._ring = 0

    def exit_ring0(self) -> None:
        self._ring = 3

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------
    @property
    def is_oms(self) -> bool:
        return self.role is SequencerRole.OMS

    @property
    def has_work(self) -> bool:
        return self.stream is not None and not self.stream.finished

    @property
    def runnable(self) -> bool:
        """May fetch its next operation right now."""
        return (self.has_work and not self.busy
                and self.suspend_depth == 0 and not self.proxy_wait
                and self._ring == 3)

    def suspend(self, now: int) -> None:
        """Push one level of suspension (idempotent nesting)."""
        if self.suspend_depth == 0:
            self._suspended_since = now
        self.suspend_depth += 1

    def resume(self, now: int) -> bool:
        """Pop one suspension level; True if the sequencer woke up."""
        if self.suspend_depth == 0:
            raise ProtectionError(
                f"sequencer {self.seq_id}: resume without matching suspend")
        self.suspend_depth -= 1
        if self.suspend_depth == 0:
            if self._suspended_since is not None:
                self.suspended_cycles += now - self._suspended_since
                self._suspended_since = None
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Seq {self.seq_id} {self.role.value} sid={self.sid} "
                f"ring={self._ring} depth={self.suspend_depth}"
                f"{' busy' if self.busy else ''}>")
