"""MISP multiprocessor construction (Section 2.6, Figure 6).

The partition notation itself (``"4x2"``, ``"1x4+4"``, ``"smp8"``,
...) lives in :mod:`repro.core.notation`; this module builds live
machines from it.  The notation helpers are re-exported here for
backward compatibility.

:func:`build_machine` is the single machine factory the system
backends (:mod:`repro.systems.backends`) build on: all-plain-CPU
partitions are routed through
:func:`repro.smp.machine.build_smp_machine` so that every SMP-shaped
machine is complete (``thread_create`` registered) at construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.machine import Machine
from repro.core.notation import (
    FIGURE6_CONFIGS, FIGURE7_CONFIGS, FIGURE7_SEQUENCERS, config_name,
    ideal_config_for_load, parse_config, total_sequencers,
)
from repro.mem.hierarchy import HierarchyFactory
from repro.params import DEFAULT_PARAMS, MachineParams

__all__ = [
    "FIGURE6_CONFIGS", "FIGURE7_CONFIGS", "FIGURE7_SEQUENCERS",
    "build_machine", "config_name", "ideal_config_for_load",
    "parse_config", "total_sequencers",
]


def build_machine(config: str | Sequence[int],
                  params: MachineParams = DEFAULT_PARAMS,
                  record_fine_trace: bool = False,
                  hierarchy: Optional[HierarchyFactory] = None) -> Machine:
    """Build a machine from a name or an AMS-count tuple.

    ``hierarchy`` selects the cache topology (default: one L2 shared
    per processor); all-plain-CPU partitions are routed through
    :func:`~repro.smp.machine.build_smp_machine`, whose default is a
    private L2 per core.
    """
    counts = parse_config(config) if isinstance(config, str) else tuple(config)
    if counts and not any(counts):
        from repro.smp.machine import build_smp_machine
        return build_smp_machine(len(counts), params=params,
                                 record_fine_trace=record_fine_trace,
                                 hierarchy=hierarchy)
    return Machine(counts, params=params,
                   record_fine_trace=record_fine_trace,
                   hierarchy=hierarchy)
