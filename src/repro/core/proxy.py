"""Proxy execution (Section 2.5).

When an AMS encounters a condition needing Ring-0 service -- a page
fault or a system call -- it cannot trap into the OS itself.  The
architecture relays a user-level fault to the OMS, which suspends its
current work, *impersonates* the faulting AMS, re-executes the
faulting operation so the OS services it, and then restores both
contexts.  The mechanism guarantees forward progress for any shred on
any sequencer, giving software the illusion of functional symmetry.

This module defines the request objects and the bookkeeping engine;
the timed choreography (Equations 2 and 3 of Section 5.1) is executed
by :class:`repro.core.machine.Machine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sequencer import Sequencer
    from repro.exec.ops import MachineOp


class ProxyKind(enum.Enum):
    """Triggering conditions that lead to proxy execution."""

    PAGE_FAULT = "page_fault"
    SYSCALL = "syscall"


@dataclass
class ProxyRequest:
    """One fault-type exception relayed from an AMS to its OMS."""

    ams: "Sequencer"
    kind: ProxyKind
    #: the operation that faulted (retried or completed after service)
    op: "MachineOp"
    #: faulting virtual page number (PAGE_FAULT only)
    vpn: Optional[int] = None
    #: syscall name (SYSCALL only)
    service: Optional[str] = None
    #: explicit service-cost override from the op
    cost_override: Optional[int] = None
    #: cycle the AMS raised the fault (for latency accounting)
    raised_at: int = 0
    #: value delivered back to the shred for a serviced syscall
    result: Any = None
    serviced: bool = False

    def describe(self) -> str:
        if self.kind is ProxyKind.PAGE_FAULT:
            return f"PF vpn={self.vpn:#x} from AMS sid={self.ams.sid}"
        return f"syscall '{self.service}' from AMS sid={self.ams.sid}"


@dataclass
class ProxyStats:
    """Per-machine accounting of proxy activity (firmware feedback).

    Section 4.1: "The firmware also provides feedback to the
    application developer on the number of proxy execution events and
    their causes."
    """

    requests: int = 0
    page_faults: int = 0
    syscalls: int = 0
    total_latency: int = 0
    max_queue_depth: int = 0

    def note_request(self, request: ProxyRequest, queue_depth: int) -> None:
        self.requests += 1
        if request.kind is ProxyKind.PAGE_FAULT:
            self.page_faults += 1
        else:
            self.syscalls += 1
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def note_complete(self, request: ProxyRequest, now: int) -> None:
        self.total_latency += now - request.raised_at

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0
