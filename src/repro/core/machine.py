"""The MISP machine model: timed choreography of every architectural flow.

One :class:`Machine` simulates a complete system: one or more
:class:`~repro.core.processor.MISPProcessor` (each one OS-visible CPU,
Figure 2), the model kernel, physical memory, and the discrete-event
engine.  The same class covers every configuration in the paper:

* MISP uniprocessor (Figure 1): ``ams_per_processor=[7]``;
* MISP MP (Figure 6): e.g. ``[1, 1, 1, 1]`` for 4x2, ``[3, 0, 0, 0, 0]``
  for 1x4+4;
* the SMP baseline: ``[0] * 8`` (every processor a plain CPU).

The machine *dynamically* charges the overheads that Section 5.1
models analytically:

* every OMS Ring 3 -> Ring 0 transition pays Equation 1
  (``2*signal + priv``) and suspends the processor's active AMSs;
* every AMS fault/syscall pays the proxy choreography of Equations 2
  and 3 through an explicit relayed-request state machine;
* the user-level ``SIGNAL`` instruction costs ``signal`` cycles and
  delivers a shred continuation to an idle sequencer.

The kernel scheduler is shred-oblivious: when it preempts a
multi-shredded thread, the machine freezes that thread's AMS streams
into the thread's aggregate save area (Section 2.2) and the AMSs idle
-- the effect Figure 7 measures.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.core.notation import config_name
from repro.core.processor import MISPProcessor
from repro.core.proxy import ProxyKind, ProxyRequest, ProxyStats
from repro.core.sequencer import Sequencer, SequencerRole
from repro.errors import ConfigurationError, SimulationError
from repro.exec.ops import (
    AtomicOp, Compute, MachineOp, MemAccess, SignalShred, SyscallOp, Touch,
)
from repro.exec.stream import DirectStream, InstructionStream
from repro.kernel.kernel import Kernel
from repro.kernel.process import OSThread, Process, ThreadState
from repro.mem.hierarchy import HierarchyFactory, shared_l2_per_processor
from repro.mem.pagetable import vpn_of
from repro.params import DEFAULT_PARAMS, PAGE_SIZE, MachineParams
from repro.sim.engine import Engine
from repro.sim.trace import EventKind, TraceLog
from repro.timing.base import PARAM_CLASS, TimingModel
from repro.timing.fixed import FixedTiming

#: stall class for a privileged service's ``priv`` term when its cost
#: is pinned by the workload (empty priv_coefs) and so carries no
#: MachineParams coefficient to classify through PARAM_CLASS
_KIND_CLASS = {
    EventKind.PAGE_FAULT: "page_fault_service",
    EventKind.SYSCALL: "syscall_service",
    EventKind.TIMER: "timer_service",
    EventKind.INTERRUPT: "interrupt_service",
    EventKind.PROXY_BEGIN: "syscall_service",
}


class Machine:
    """A full simulated system (processors + kernel + memory + clock)."""

    def __init__(self, ams_per_processor: Sequence[int],
                 params: MachineParams = DEFAULT_PARAMS,
                 record_fine_trace: bool = False,
                 hierarchy: Optional[HierarchyFactory] = None,
                 timing: Optional[TimingModel] = None) -> None:
        if not ams_per_processor:
            raise ConfigurationError("need at least one processor")
        if any(n < 0 for n in ams_per_processor):
            raise ConfigurationError("AMS counts must be non-negative")
        self.params = params
        self.engine = Engine()
        self.trace = TraceLog(record_fine=record_fine_trace)
        self.proxy_stats = ProxyStats()
        #: trace capture (repro.sim.captrace.TraceCapture), if enabled
        self._cap: Optional[Any] = None
        #: observation state (repro.obs.observe.ObservedRun), if enabled
        self._obs: Optional[Any] = None

        # -- build sequencers and processors ------------------------------
        self.sequencers: list[Sequencer] = []
        self.processors: list[MISPProcessor] = []
        for proc_id, n_ams in enumerate(ams_per_processor):
            oms = self._new_sequencer(SequencerRole.OMS)
            amss = [self._new_sequencer(SequencerRole.AMS) for _ in range(n_ams)]
            self.processors.append(MISPProcessor(proc_id, oms, amss))

        #: cache hierarchy; system backends declare the topology in
        #: build_machine (default: one L2 shared per processor)
        self.hierarchy = (hierarchy or shared_l2_per_processor)(
            self.processors, params)

        self.kernel = Kernel(params, num_cpus=len(self.processors))
        #: per-processor queue of pending OMS work items:
        #: ("timer",), ("device",), or ("proxy", ProxyRequest)
        self._pending: list[deque[tuple]] = [deque() for _ in self.processors]
        self._timers_started = False
        self._stopped = False

        #: the timing model pricing every op (repro.timing); the
        #: default `fixed` model reproduces the constant per-op costs
        self.timing: TimingModel = timing if timing is not None else FixedTiming()
        self._bind_timing()

    def _bind_timing(self) -> None:
        self.timing.bind(self)
        if self._obs is not None:
            # observed runs attribute priced cycles into the run's
            # stall account; attach after bind (models hoist params
            # there) and before the charge hoists below (models may
            # attach by shadowing charge with a closure)
            self.timing.attach_observation(self._obs)
        # hot-path hoists: one bound-method lookup per op, not an
        # attribute chain (these rebind on set_timing)
        charge = self.timing.charge
        signal_cycles = self.timing.signal_cycles
        if self._obs is not None:
            # observed runs count ops/cycles through a closure; when
            # observation is off the raw bound methods are installed
            # and the charge path is untouched (models whose observed
            # charge path already counts skip the generic wrapper)
            if not self.timing.observation_counts_ops:
                charge = self._obs.wrap_charge(charge)
            signal_cycles = self._obs.wrap_signal(signal_cycles)
        self._charge = charge
        self._signal_cycles = signal_cycles

    def set_timing(self, timing: TimingModel) -> None:
        """Swap in a timing model (before any events are scheduled).

        Backend ``build_machine`` signatures stay timing-agnostic: the
        Session attaches the resolved model here right after build.
        """
        if self.engine.events_executed or self.engine.pending():
            raise SimulationError(
                "set_timing() must run before any events are scheduled")
        self.timing = timing
        self._bind_timing()

    def _new_sequencer(self, role: SequencerRole) -> Sequencer:
        seq = Sequencer(len(self.sequencers), role, self.params.tlb_entries)
        self.sequencers.append(seq)
        return seq

    def enable_capture(self) -> Any:
        """Attach a :class:`~repro.sim.captrace.TraceCapture` recorder.

        Must be called before any events are scheduled (the trace's
        event graph needs seqnos dense from 0).  Returns the capture,
        from which :class:`~repro.sim.captrace.CapturedTrace` is built
        after the run.
        """
        from repro.sim.captrace import TraceCapture
        if not self.timing.supports_capture:
            raise ConfigurationError(
                f"trace capture requires a constant-cost timing model; "
                f"the active '{self.timing.canonical_name()}' model prices "
                "ops from pipeline occupancy, so a captured cost "
                "decomposition would not replay -- run execution-driven, "
                "or switch to .timing('fixed')")
        if self.engine.events_executed or self.engine.pending():
            raise SimulationError(
                "enable_capture() must run before any events are scheduled")
        if self._cap is None:
            self._cap = TraceCapture(self.engine)
            self.engine.set_recorder(self._cap)
        return self._cap

    def enable_observation(self, obs: Any) -> Any:
        """Attach an :class:`~repro.obs.observe.ObservedRun`.

        Must run before any events are scheduled (the charge-path
        wrapper has to see every op).  Turns on fine-grained trace
        recording so the run can be exported as a timeline; when never
        called, no wrapper, no fine records, and no registry writes
        exist -- observation is strictly zero-cost when disabled.
        """
        if self.engine.events_executed or self.engine.pending():
            raise SimulationError(
                "enable_observation() must run before any events are "
                "scheduled")
        self._obs = obs
        self.trace.record_fine = True
        obs.bind_machine(self)
        self._bind_timing()   # reinstall hot-path hoists, now wrapped
        return obs

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def num_cpus(self) -> int:
        return len(self.processors)

    @property
    def now(self) -> int:
        return self.engine.now

    def cpu(self, index: int) -> Sequencer:
        return self.processors[index].oms

    def oms_ids(self) -> list[int]:
        return [p.oms.seq_id for p in self.processors]

    def ams_ids(self) -> list[int]:
        return [a.seq_id for p in self.processors for a in p.amss]

    def describe(self) -> str:
        """Configuration string in the paper's Figure 6 notation."""
        return config_name([len(p.amss) for p in self.processors])

    # ------------------------------------------------------------------
    # Process / thread API
    # ------------------------------------------------------------------
    def spawn_process(self, name: str) -> Process:
        return self.kernel.create_process(name)

    def spawn_thread(self, process: Process, name: str, body: Any,
                     pinned_cpu: Optional[int] = None,
                     start: bool = True) -> OSThread:
        """Create (and by default start) an OS thread.

        ``body`` may be an :class:`InstructionStream` or a generator of
        machine ops (which is wrapped in a :class:`DirectStream`).
        """
        stream = (body if isinstance(body, InstructionStream)
                  else DirectStream(body, label=name))
        thread = self.kernel.create_thread(process, name, stream, pinned_cpu)
        if start:
            cpu = self.kernel.start_thread(thread)
            self._kick_cpu(cpu)
        return thread

    def _kick_cpu(self, cpu: int) -> None:
        """If the CPU is idle, let it pick up ready work."""
        oms = self.processors[cpu].oms
        if oms.thread is None and not oms.busy:
            self._context_switch(cpu)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start_timers(self) -> None:
        """Arm per-CPU timers and the device-interrupt source."""
        if self._timers_started:
            return
        self._timers_started = True
        quantum = self.params.timer_quantum
        for cpu in range(self.num_cpus):
            # stagger CPUs so ticks are not artificially synchronized
            offset = (cpu * quantum) // max(self.num_cpus, 1)
            self.engine.schedule(quantum + offset, self._timer_tick, cpu)
        if self.params.device_interrupt_period > 0:
            self.engine.schedule(self.params.device_interrupt_period,
                                 self._device_tick)

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run the machine; returns the stop time."""
        self.start_timers()
        return self.engine.run(until=until, max_events=max_events)

    def run_to_completion(self, limit: int = 100_000_000_000) -> int:
        """Run until every process exits; raises on timeout."""
        self.run(until=limit)
        if not self.kernel.all_done:
            raise SimulationError(
                f"machine did not finish within {limit} cycles "
                f"({self.kernel.live_thread_count()} threads live)")
        return self.now

    def stop(self) -> None:
        """Stop issuing periodic interrupts (lets the engine drain)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Periodic interrupts
    # ------------------------------------------------------------------
    def _timer_tick(self, cpu: int) -> None:
        if self._stopped or self.kernel.all_done:
            return
        self._pending[cpu].append(("timer",))
        self._advance(self.processors[cpu].oms)
        self.engine.schedule(self.params.timer_quantum, self._timer_tick, cpu)

    def _device_tick(self) -> None:
        if self._stopped or self.kernel.all_done:
            return
        self._pending[0].append(("device",))
        self._advance(self.processors[0].oms)
        self.engine.schedule(self.params.device_interrupt_period,
                             self._device_tick)

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------
    def _advance(self, seq: Sequencer) -> None:
        """Let a sequencer make progress if it can."""
        if seq.busy or seq.suspend_depth > 0 or seq.proxy_wait:
            return
        if seq.is_oms and seq.ring == 3 and self._pending[seq.processor.proc_id]:
            self._take_pending(seq)
            return
        if seq.stream is None:
            if seq.is_oms and seq.thread is None:
                # idle CPU: pull ready work
                if self.kernel.scheduler.has_ready(seq.processor.proc_id):
                    self._context_switch(seq.processor.proc_id)
            return
        op = seq.stream.next_op()
        if op is None:
            self._stream_finished(seq)
            return
        self._issue(seq, seq.stream, op)

    def _issue(self, seq: Sequencer, stream: InstructionStream,
               op: MachineOp) -> None:
        """Decompose an op's functional cost, price it through the
        timing model, and schedule its completion."""
        params = self.params
        cap = self._cap
        stream.sequencer = seq  # bind for commit-time translation
        base: int
        walks = 0
        access = 0
        action: Optional[tuple] = None
        if isinstance(op, Compute):
            base = op.cycles
        elif isinstance(op, AtomicOp):
            base = op.cycles or params.atomic_op_cost
            if cap is not None and not op.cycles:
                cap.pend_coef("atomic_op_cost")
            if op.vaddr is not None:   # a lock word in shared memory
                walks, access, action = self._classify_access(
                    seq, op.vaddr, True)
        elif isinstance(op, Touch):
            base = op.cycles
            walks, access, action = self._classify_access(
                seq, op.region.vpn(op.page_index) * PAGE_SIZE, op.write,
                span=PAGE_SIZE)
        elif isinstance(op, MemAccess):
            base = op.cycles
            walks, access, action = self._classify_access(
                seq, op.vaddr, op.write)
        elif isinstance(op, SyscallOp):
            base, action = 0, ("syscall", op)
        elif isinstance(op, SignalShred):
            base, action = self._signal_cycles(seq), ("signal", op)
            if cap is not None:
                cap.pend_coef("signal_cost")
        else:
            raise SimulationError(f"unknown machine op {op!r}")
        fetch = 0
        fetch_addr = stream.fetch_addr(self.hierarchy)
        if fetch_addr is not None:
            # instruction fetch goes through the same hierarchy (a
            # fault retry refetches, like the re-executed instruction)
            fetch = self.hierarchy.access(seq.seq_id, fetch_addr)
            if cap is not None:
                cap.pend_access(seq.seq_id, fetch_addr, 1, False, fetch)
        cost = self._charge(seq, op, base, walks, access, fetch)
        seq.busy = True
        seq.busy_cycles += cost
        if cap is not None:
            cap.pend_busy(seq.seq_id)
        self.engine.schedule(cost, self._complete, seq, stream, op, action)

    def _classify_access(self, seq: Sequencer, vaddr: int, write: bool,
                         span: int = 1) -> tuple[int, int, Optional[tuple]]:
        """Translate one data access; returns its functional cost
        components ``(page_walks, hierarchy_cycles, action)``.

        ``span`` is the bytes the op references from ``vaddr`` (a page
        Touch streams the whole page; word accesses reference one
        line).  A non-resident page returns a fault action and skips
        the hierarchy (the access re-executes after service).
        """
        process = seq.process_ref
        if process is None:
            raise SimulationError(
                f"sequencer {seq.seq_id} touched memory with no process")
        cap = self._cap
        vpn = vpn_of(vaddr)
        walks = 0
        frame = seq.tlb.lookup(vpn)
        if frame is None:
            walks = 1
            if cap is not None:
                cap.pend_coef("page_walk_cost")
            pte = process.address_space.page_table.lookup(vpn)
            if pte is None:
                return walks, 0, ("fault", vpn)
            seq.tlb.insert(vpn, pte.frame)
            frame = pte.frame
        paddr = frame * PAGE_SIZE + vaddr % PAGE_SIZE
        access = self.hierarchy.access_range(seq.seq_id, paddr, span,
                                             write=write)
        if cap is not None:
            cap.pend_access(seq.seq_id, paddr, span, write, access)
        return walks, access, None

    def _complete(self, seq: Sequencer, stream: InstructionStream,
                  op: MachineOp, action: Optional[tuple]) -> None:
        seq.busy = False
        if stream.killed:
            # the owning process exited; drop the in-flight operation
            return
        seq.ops_executed += 1
        if action is None:
            stream.complete(None)
            if seq.stream is stream:
                self._advance(seq)
            return
        kind = action[0]
        if kind == "fault":
            self._on_fault(seq, stream, op, action[1])
        elif kind == "syscall":
            self._on_syscall(seq, stream, action[1])
        elif kind == "signal":
            self._on_signal(seq, stream, action[1])
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown action {kind}")

    def _stream_finished(self, seq: Sequencer) -> None:
        """A stream ran to completion on ``seq``."""
        if seq.is_oms:
            thread = seq.thread
            seq.stream = None
            seq.thread = None
            seq.process_ref = None
            if thread is not None:
                self.kernel.scheduler.preempt(seq.processor.proc_id,
                                              requeue=False)
                self.kernel.exit_thread(thread, self.now)
                if thread.process.exited:
                    if self._cap is not None:
                        self._cap.mark("pexit", thread.process.pid)
                    self._kill_process_shreds(thread.process)
            self._advance(seq)  # drain pending / pick next thread
        else:
            # AMS shred (gang scheduler) finished: the sequencer idles
            # until the next SIGNAL.
            seq.stream = None
            seq.process_ref = None
            self.trace.instant(self.now, seq.seq_id, EventKind.SHRED_END)

    def _kill_process_shreds(self, process: Process) -> None:
        """Tear down shreds orphaned by their process's exit.

        A correct multi-shredded program joins its shreds before the
        OS thread returns (ShredLib's gang schedulers guarantee this);
        raw ISA programs may exit early, in which case the OS reclaims
        the whole process and the AMS contexts with it.
        """
        for seq in self.sequencers:
            if seq.process_ref is process and not seq.is_oms:
                if seq.stream is not None:
                    seq.stream.killed = True
                    seq.stream = None
                    self.trace.instant(self.now, seq.seq_id,
                                       EventKind.SHRED_END, detail="killed")
                seq.process_ref = None
                seq.proxy_wait = False

    # ------------------------------------------------------------------
    # Faults and syscalls
    # ------------------------------------------------------------------
    def _on_fault(self, seq: Sequencer, stream: InstructionStream,
                  op: MachineOp, vpn: int) -> None:
        if seq.role is SequencerRole.AMS:
            self._proxy_egress(seq, stream, op, ProxyKind.PAGE_FAULT, vpn=vpn)
            return
        process = seq.process_ref
        self.trace.instant(self.now, seq.seq_id, EventKind.PAGE_FAULT)
        space = process.address_space
        if not space.is_resident(vpn):
            priv = self.params.page_fault_service_cost
            priv_coefs = (("page_fault_service_cost", 1, 1),)
        else:
            priv = self.params.page_fault_service_cost // 4
            priv_coefs = (("page_fault_service_cost", 1, 4),)

        def effect() -> None:
            if not space.is_resident(vpn):
                self.kernel.service_page_fault(space, vpn)

        # the faulting op stays pending; _advance re-executes it
        self._ring0_service(seq, EventKind.PAGE_FAULT, priv,
                            priv_coefs=priv_coefs, effect=effect)

    def _on_syscall(self, seq: Sequencer, stream: InstructionStream,
                    op: SyscallOp) -> None:
        if seq.role is SequencerRole.AMS:
            self._proxy_egress(seq, stream, op, ProxyKind.SYSCALL,
                               service=op.kind, cost_override=op.cost)
            return
        self.trace.instant(self.now, seq.seq_id, EventKind.SYSCALL,
                           detail=op.kind)
        priv, spec = self.kernel.service_syscall(op.kind, op.cost)
        # priv traces back to params only when neither the op nor the
        # syscall table pinned an explicit cost
        priv_coefs = ((("syscall_service_cost", 1, 1),)
                      if op.cost is None and spec.cost is None else ())
        block_for = op.arg if (spec.blocks and isinstance(op.arg, int)
                               and op.arg > 0) else 0

        def on_done() -> None:
            stream.complete(0)
            if block_for and seq.thread is not None:
                self._block_thread(seq, block_for)

        self._ring0_service(seq, EventKind.SYSCALL, priv,
                            priv_coefs=priv_coefs, on_done=on_done)

    # ------------------------------------------------------------------
    # Ring-transition serialization (Equation 1)
    # ------------------------------------------------------------------
    def _ring0_service(self, oms: Sequencer, kind: EventKind, priv: int,
                       pre_signals: int = 0,
                       priv_coefs: tuple = (),
                       effect: Optional[Callable[[], None]] = None,
                       on_done: Optional[Callable[[], None]] = None) -> None:
        """Run one privileged service with full MISP serialization.

        Timeline (Equation 1, plus Equation 3's leading signals as
        ``pre_signals`` for proxy services)::

            t0                : Ring 3 -> Ring 0
            +pre_signals*S+S  : all active AMSs suspended
            +priv             : kernel service complete (``effect`` applied)
            +S                : AMSs resumed, Ring 0 -> Ring 3

        ``S`` (the suspend/resume broadcast) is charged only when the
        processor has AMSs with shreds attached; a plain CPU or an OMS
        whose shred team is switched out pays only ``priv``.

        ``priv_coefs`` tells trace capture which MachineParams terms
        ``priv`` decomposes into (empty when the cost is pinned by the
        workload and so not re-priceable).
        """
        if oms.busy:
            raise SimulationError(f"{oms} entered Ring 0 while busy")
        t0 = self.now
        oms.enter_ring0()
        oms.busy = True
        self.trace.instant(t0, oms.seq_id, EventKind.RING_ENTER,
                           detail=kind.value)
        svc_class = (PARAM_CLASS.get(priv_coefs[0][0], "syscall_service")
                     if priv_coefs
                     else _KIND_CLASS.get(kind, "syscall_service"))

        def stage_suspend() -> None:
            cap = self._cap
            active = oms.processor.active_amss()
            for ams in active:
                ams.suspend(self.now)
                self.trace.instant(self.now, ams.seq_id,
                                   EventKind.AMS_SUSPEND)
                if cap is not None:
                    cap.mark("sus", ams.seq_id)
            if cap is not None:
                for key, mult, div in priv_coefs:
                    cap.pend_coef(key, mult, div)
                cap.pend_owner(oms.seq_id)
            stalls = self.timing.stalls
            if stalls is not None and priv:
                stalls.note(oms.seq_id, svc_class, priv)
            self.engine.schedule(priv, stage_service, active)

        def stage_service(active: list[Sequencer]) -> None:
            if effect is not None:
                effect()
            signal = self._signal_cycles(oms) if active else 0
            cap = self._cap
            if cap is not None:
                if active:
                    cap.pend_coef("signal_cost")
                cap.pend_owner(oms.seq_id)
            if signal:
                self._note_signal(oms, signal)
            self.engine.schedule(signal, stage_resume, active)

        def stage_resume(active: list[Sequencer]) -> None:
            cap = self._cap
            oms.exit_ring0()
            oms.busy = False
            self.trace.record(t0, self.now, oms.seq_id, EventKind.RING_EXIT,
                              detail=kind.value)
            for ams in active:
                self.trace.instant(self.now, ams.seq_id,
                                   EventKind.AMS_RESUME)
                if cap is not None:
                    cap.mark("res", ams.seq_id)
                if ams.resume(self.now):
                    self._advance(ams)
            if on_done is not None:
                on_done()
            self._advance(oms)

        n_signals = pre_signals + (1 if oms.processor.active_amss() else 0)
        sig0 = self._signal_cycles(oms, n_signals)
        cap = self._cap
        if cap is not None:
            if n_signals:
                cap.pend_coef("signal_cost", n_signals)
            cap.pend_owner(oms.seq_id)
        if sig0:
            self._note_signal(oms, sig0)
        self.engine.schedule(sig0, stage_suspend)

    def _note_signal(self, seq: Sequencer, cost: int) -> None:
        """Attribute a directly scheduled signal delay (Equations 1-3
        stages, proxy egress) to the run's stall account, split by the
        timing model (``fixed``: all signal; ``scoreboard``:
        drain + refill)."""
        stalls = self.timing.stalls
        if stalls is not None:
            for klass, cycles in self.timing.split_signal(cost):
                if cycles:
                    stalls.note(seq.seq_id, klass, cycles)

    # ------------------------------------------------------------------
    # Proxy execution (Equations 2 and 3)
    # ------------------------------------------------------------------
    def _proxy_egress(self, ams: Sequencer, stream: InstructionStream,
                      op: MachineOp, kind: ProxyKind,
                      vpn: Optional[int] = None,
                      service: Optional[str] = None,
                      cost_override: Optional[int] = None) -> None:
        """AMS side: relay a fault-type exception to the OMS."""
        ams.proxy_wait = True
        event = (EventKind.PAGE_FAULT if kind is ProxyKind.PAGE_FAULT
                 else EventKind.SYSCALL)
        self.trace.instant(self.now, ams.seq_id, event)
        self.trace.instant(self.now, ams.seq_id, EventKind.PROXY_REQUEST)
        request = ProxyRequest(ams=ams, kind=kind, op=op, vpn=vpn,
                               service=service, cost_override=cost_override,
                               raised_at=self.now)
        request.stream = stream                      # type: ignore[attr-defined]
        request.process = ams.process_ref            # type: ignore[attr-defined]
        cap = self._cap
        if cap is not None:
            request.cap_id = cap.proxy_raised()      # type: ignore[attr-defined]
            cap.pend_coef("signal_cost")
            cap.pend_owner(ams.seq_id)
        # Equation 2, first signal: notify the OMS
        sig = self._signal_cycles(ams)
        if sig:
            self._note_signal(ams, sig)
        self.engine.schedule(sig, self._proxy_arrive,
                             ams.processor, request)

    def _proxy_arrive(self, proc: MISPProcessor, request: ProxyRequest) -> None:
        proc.proxy_queue.append(request)
        self.proxy_stats.note_request(request, len(proc.proxy_queue))
        self._pending[proc.proc_id].append(("proxy", request))
        self._advance(proc.oms)

    def _service_proxy(self, oms: Sequencer, request: ProxyRequest) -> None:
        """OMS side: impersonate the AMS and re-execute under Ring 0."""
        proc = oms.processor
        if proc.proxy_queue and proc.proxy_queue[0] is request:
            proc.proxy_queue.popleft()
        self.trace.instant(self.now, oms.seq_id, EventKind.PROXY_BEGIN)
        process = request.process  # type: ignore[attr-defined]
        if request.kind is ProxyKind.PAGE_FAULT:
            space = process.address_space
            if not space.is_resident(request.vpn):
                priv = self.params.page_fault_service_cost
                priv_coefs = (("page_fault_service_cost", 1, 1),)
            else:
                priv = self.params.page_fault_service_cost // 4
                priv_coefs = (("page_fault_service_cost", 1, 4),)

            def effect() -> None:
                if not space.is_resident(request.vpn):
                    self.kernel.service_page_fault(space, request.vpn)
        else:
            priv, spec = self.kernel.service_syscall(
                request.service, request.cost_override)
            priv_coefs = ((("syscall_service_cost", 1, 1),)
                          if request.cost_override is None
                          and spec.cost is None else ())
            request.result = 0
            effect = None

        def on_done() -> None:
            self._proxy_done(request)

        # Equation 3: pre_signals = the leading `signal` (state swap /
        # impersonation), then the full Equation-1 serialization.
        self._ring0_service(oms, EventKind.PROXY_BEGIN, priv,
                            pre_signals=1, priv_coefs=priv_coefs,
                            effect=effect, on_done=on_done)

    def _proxy_done(self, request: ProxyRequest) -> None:
        request.serviced = True
        self.proxy_stats.note_complete(request, self.now)
        if self._cap is not None:
            self._cap.mark("pdone", request.cap_id)  # type: ignore[attr-defined]
        ams = request.ams
        stream: InstructionStream = request.stream  # type: ignore[attr-defined]
        self.trace.instant(self.now, ams.seq_id, EventKind.PROXY_END)
        if request.kind is ProxyKind.SYSCALL:
            # the OMS executed the call on the shred's behalf; commit it
            stream.complete(request.result)
        # else: page fault -- the op stays pending and re-executes.
        if ams.stream is stream:
            ams.proxy_wait = False
            self._advance(ams)
        # If the shred team was frozen meanwhile, the retried op simply
        # finds the page resident after thaw; proxy_wait was cleared by
        # the freeze path.

    # ------------------------------------------------------------------
    # SIGNAL (Section 2.4)
    # ------------------------------------------------------------------
    def _on_signal(self, seq: Sequencer, stream: InstructionStream,
                   op: SignalShred) -> None:
        proc = seq.processor
        target = proc.by_sid(op.sid)
        if target is seq:
            raise ConfigurationError("SIGNAL to self is meaningless")
        self.trace.instant(self.now, seq.seq_id, EventKind.SIGNAL_SENT)
        if target.stream is not None and not target.stream.finished:
            # ingress signal to a busy sequencer: asynchronous control
            # transfer through a registered YIELD-CONDITIONAL handler
            deliver = getattr(target.stream, "deliver_signal", None)
            if deliver is None or not deliver(seq.sid, op):
                raise ConfigurationError(
                    f"SIGNAL to busy sequencer sid={op.sid} with no "
                    "YIELD-CONDITIONAL handler registered")
            self.trace.instant(self.now, target.seq_id,
                               EventKind.YIELD_EVENT)
        else:
            label = op.label or f"shred@sid{op.sid}"
            target.stream = (op.continuation
                             if isinstance(op.continuation, InstructionStream)
                             else DirectStream(op.continuation, label=label))
            target.process_ref = seq.process_ref
            target.proxy_wait = False
            self.trace.instant(self.now, target.seq_id,
                               EventKind.SHRED_START)
        self.trace.instant(self.now, target.seq_id,
                           EventKind.SIGNAL_RECEIVED)
        stream.complete(None)
        self._advance(target)
        if seq.stream is stream:
            self._advance(seq)

    # ------------------------------------------------------------------
    # Context switching (shred-oblivious kernel scheduler)
    # ------------------------------------------------------------------
    def _context_switch(self, cpu: int) -> None:
        """Switch the CPU to its next ready thread (if any)."""
        proc = self.processors[cpu]
        oms = proc.oms
        if oms.busy:
            raise SimulationError(f"context switch on busy {oms}")
        old = self.kernel.scheduler.preempt(cpu, requeue=True)
        cost = 0
        n_save = 0
        if old is not None:
            old.context_switches += 1
            self.timing.end_quantum(oms)
            oms.stream = None
            oms.thread = None
            oms.process_ref = None
            cost += self.params.context_switch_cost
            if old.is_shredded:
                self._freeze_team(old, proc)
                cost += self.params.sequencer_state_save_cost
                n_save += 1
            self.trace.instant(self.now, oms.seq_id,
                               EventKind.CONTEXT_SWITCH, detail="out")
        new = self.kernel.scheduler.pick_next(cpu)
        if new is None:
            return
        if new.start_time is None:
            new.start_time = self.now
        if old is None:
            cost += self.params.context_switch_cost
            self.trace.instant(self.now, oms.seq_id,
                               EventKind.CONTEXT_SWITCH, detail="in")
        if new.is_shredded:
            cost += self.params.sequencer_state_save_cost
            n_save += 1
        oms.busy = True
        if self._cap is not None:
            # exactly one context_switch_cost is in `cost` on every
            # path that reaches the schedule below
            self._cap.pend_coef("context_switch_cost")
            if n_save:
                self._cap.pend_coef("sequencer_state_save_cost", n_save)
            self._cap.pend_owner(oms.seq_id)
        stalls = self.timing.stalls
        if stalls is not None:
            stalls.note(oms.seq_id, "context_switch",
                        self.params.context_switch_cost)
            if n_save:
                stalls.note(oms.seq_id, "state_save",
                            n_save * self.params.sequencer_state_save_cost)
        self.engine.schedule(cost, self._finish_switch_in, cpu, new)

    def _finish_switch_in(self, cpu: int, thread: OSThread) -> None:
        proc = self.processors[cpu]
        oms = proc.oms
        oms.busy = False
        oms.thread = thread
        oms.stream = thread.stream
        oms.process_ref = thread.process
        oms.tlb.flush()  # new CR3
        self.timing.begin_quantum(oms)
        if thread.is_shredded and thread.ams_save_area:
            self._thaw_team(thread, proc)
        self._advance(oms)

    def _freeze_team(self, thread: OSThread, proc: MISPProcessor) -> None:
        """Save AMS shred state to the thread's aggregate save area."""
        saved: list[tuple[int, Any]] = []
        for ams in proc.amss:
            if ams.stream is not None and not ams.stream.finished:
                saved.append((ams.sid, ams.stream))
                ams.stream = None
                ams.process_ref = None
                # A shred mid-proxy re-faults after thaw; see _proxy_done.
                ams.proxy_wait = False
        thread.ams_save_area = saved

    def _thaw_team(self, thread: OSThread, proc: MISPProcessor) -> None:
        """Restore saved AMS shred state onto this processor's AMSs."""
        for sid, stream in thread.ams_save_area:
            ams = proc.by_sid(sid)
            if ams.stream is not None:
                raise ConfigurationError(
                    f"thaw of thread '{thread.name}' found AMS sid={sid} "
                    "occupied; multi-shredded threads must be pinned to "
                    "their home MISP processor")
            ams.stream = stream
            ams.process_ref = thread.process
            ams.tlb.flush()  # CR3 synchronized on restore (Section 2.3)
            self._advance(ams)
        thread.ams_save_area = []

    # ------------------------------------------------------------------
    # Blocking system calls (OS-level thread sleep)
    # ------------------------------------------------------------------
    def _block_thread(self, oms: Sequencer, duration: int) -> None:
        """Put the OMS's current thread to sleep in the kernel.

        A sleeping multi-shredded thread has its AMS state frozen into
        the aggregate save area, idling the AMSs for the whole sleep --
        the behaviour that made the naive Open Dynamics Engine port
        inefficient (Section 5.5).
        """
        thread = oms.thread
        cpu = oms.processor.proc_id
        self.kernel.scheduler.preempt(cpu, requeue=False)
        thread.state = ThreadState.BLOCKED
        thread.context_switches += 1
        self.timing.end_quantum(oms)
        oms.stream = None
        oms.thread = None
        oms.process_ref = None
        if thread.is_shredded:
            self._freeze_team(thread, oms.processor)
        self.trace.instant(self.now, oms.seq_id, EventKind.CONTEXT_SWITCH,
                           detail="block")
        self.engine.schedule(duration, self._wake_thread, thread)
        self._advance(oms)

    def _wake_thread(self, thread: OSThread) -> None:
        if thread.state is not ThreadState.BLOCKED:
            return
        cpu = self.kernel.scheduler.enqueue(thread, thread.pinned_cpu)
        oms = self.processors[cpu].oms
        if oms.thread is None:
            self._kick_cpu(cpu)
        else:
            # wakeup boost: preempt the running thread at the next
            # operation boundary rather than waiting out its quantum
            self._pending[cpu].append(("resched",))
            self._advance(oms)

    # ------------------------------------------------------------------
    # Pending OMS work (interrupts + proxy requests)
    # ------------------------------------------------------------------
    def _take_pending(self, oms: Sequencer) -> None:
        item = self._pending[oms.processor.proc_id].popleft()
        tag = item[0]
        if tag == "timer":
            self.trace.instant(self.now, oms.seq_id, EventKind.TIMER)

            def on_done() -> None:
                cpu = oms.processor.proc_id
                if self.kernel.scheduler.should_preempt(cpu):
                    self._context_switch(cpu)
                elif oms.thread is None:
                    self._kick_cpu(cpu)

            self._ring0_service(oms, EventKind.TIMER,
                                self.params.timer_service_cost,
                                priv_coefs=(("timer_service_cost", 1, 1),),
                                on_done=on_done)
        elif tag == "device":
            self.trace.instant(self.now, oms.seq_id, EventKind.INTERRUPT)
            self._ring0_service(
                oms, EventKind.INTERRUPT,
                self.params.interrupt_service_cost,
                priv_coefs=(("interrupt_service_cost", 1, 1),))
        elif tag == "proxy":
            self._service_proxy(oms, item[1])
        elif tag == "resched":
            cpu = oms.processor.proc_id
            if self.kernel.scheduler.should_preempt(cpu):
                self._context_switch(cpu)
            else:
                self._advance(oms)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown pending item {tag}")
