"""MISP core architecture: sequencers, processors, proxy execution, MP."""

from repro.core.machine import Machine
from repro.core.mp import (
    FIGURE6_CONFIGS, FIGURE7_CONFIGS, build_machine, config_name,
    ideal_config_for_load, parse_config, total_sequencers,
)
from repro.core.overhead import (
    SignalSensitivity, proxy_egress_cost, proxy_ingress_cost, serialize_cost,
)
from repro.core.processor import MISPProcessor
from repro.core.proxy import ProxyKind, ProxyRequest, ProxyStats
from repro.core.sequencer import Sequencer, SequencerRole
from repro.core.yieldcond import Scenario, ScenarioTable

__all__ = [
    "Machine", "FIGURE6_CONFIGS", "FIGURE7_CONFIGS", "build_machine",
    "config_name", "ideal_config_for_load", "parse_config",
    "total_sequencers", "SignalSensitivity", "proxy_egress_cost",
    "proxy_ingress_cost", "serialize_cost", "MISPProcessor", "ProxyKind",
    "ProxyRequest", "ProxyStats", "Sequencer", "SequencerRole",
    "Scenario", "ScenarioTable",
]
