"""YIELD-CONDITIONAL: trigger/response asynchronous control transfer.

Section 2.4: "a sequencer can set up a trigger-response mapping between
an ingress inter-sequencer signal and a corresponding handler.  When
the anticipated asynchronous event occurs, the shred effectively
performs an asynchronous function call to the handler."  The mechanism
descends from Virtual Multithreading (Wang et al., ASPLOS 2004).

:class:`ScenarioTable` is the per-sequencer trigger-response mapping.
Scenarios are small enumerated trigger conditions; the canonical user
of the mechanism is the OMS proxy handler, which registers for
:attr:`Scenario.PROXY_REQUEST` (Figure 3, "Register Proxy Handler").
The mini-ISA exposes the same table through ``YMONITOR``/``YRET``.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import ConfigurationError


class Scenario(enum.Enum):
    """Architecturally defined trigger conditions."""

    #: an AMS relayed a fault-type exception or OS service request
    PROXY_REQUEST = "proxy_request"
    #: a user-level ingress signal addressed to a running sequencer
    USER_SIGNAL = "user_signal"
    #: a shred continuation was delivered to an idle sequencer
    SHRED_START = "shred_start"


class ScenarioTable:
    """Per-sequencer mapping of :class:`Scenario` to handler."""

    def __init__(self) -> None:
        self._handlers: dict[Scenario, Any] = {}

    def register(self, scenario: Scenario, handler: Any) -> None:
        """Install a handler; re-registration replaces (last wins)."""
        self._handlers[scenario] = handler

    def unregister(self, scenario: Scenario) -> None:
        if scenario not in self._handlers:
            raise ConfigurationError(f"no handler registered for {scenario}")
        del self._handlers[scenario]

    def lookup(self, scenario: Scenario) -> Optional[Any]:
        return self._handlers.get(scenario)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario in self._handlers

    def __len__(self) -> int:
        return len(self._handlers)
