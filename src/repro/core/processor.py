"""MISP processors: one OMS plus zero or more AMSs (Figure 1).

A :class:`MISPProcessor` groups the sequencers that appear to the OS as
a single logical CPU.  A processor with zero AMSs degenerates to a
plain CPU -- which is exactly how the SMP baseline and the "+N" plain
processors of the Figure 6/7 configurations are modelled.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.sequencer import Sequencer, SequencerRole
from repro.core.yieldcond import ScenarioTable
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.proxy import ProxyRequest


class MISPProcessor:
    """One OS-visible logical CPU: an OMS and its AMSs."""

    def __init__(self, proc_id: int, oms: Sequencer,
                 amss: list[Sequencer]) -> None:
        if oms.role is not SequencerRole.OMS:
            raise ConfigurationError("processor's first sequencer must be an OMS")
        if any(a.role is not SequencerRole.AMS for a in amss):
            raise ConfigurationError("non-OMS sequencers must be AMSs")
        self.proc_id = proc_id
        self.oms = oms
        self.amss = amss
        oms.processor = self
        oms.sid = 0
        for i, ams in enumerate(amss):
            ams.processor = self
            ams.sid = i + 1
        #: trigger-response table of the OMS (Section 2.4); AMS-side
        #: scenario tables live on each sequencer when the mini-ISA
        #: needs them.
        self.scenarios = ScenarioTable()
        #: pending proxy requests relayed from AMSs, FIFO (Section 2.5)
        self.proxy_queue: deque["ProxyRequest"] = deque()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def num_sequencers(self) -> int:
        return 1 + len(self.amss)

    @property
    def has_ams(self) -> bool:
        return bool(self.amss)

    def sequencers(self) -> Iterator[Sequencer]:
        yield self.oms
        yield from self.amss

    def by_sid(self, sid: int) -> Sequencer:
        """Resolve a logical Sequencer ID (SIGNAL's SID operand)."""
        if sid == 0:
            return self.oms
        if 1 <= sid <= len(self.amss):
            return self.amss[sid - 1]
        raise ConfigurationError(
            f"processor {self.proc_id} has no sequencer with SID {sid} "
            f"(valid: 0..{len(self.amss)})")

    # ------------------------------------------------------------------
    # AMS activity
    # ------------------------------------------------------------------
    def active_amss(self) -> list[Sequencer]:
        """AMSs that currently hold a shred (running or suspended)."""
        return [a for a in self.amss if a.stream is not None]

    def idle_ams(self) -> Optional[Sequencer]:
        """An AMS with no shred attached, if any."""
        for ams in self.amss:
            if ams.stream is None:
                return ams
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MISPProcessor {self.proc_id}: OMS {self.oms.seq_id} "
                f"+ {len(self.amss)} AMS>")
