"""The paper's machine-partition notation (Section 2.6, Figure 6).

The Figure 6 / Figure 7 experiments vary how eight sequencers are
partitioned into MISP processors, named in a compact notation:

* ``"4x2"``   -- four MISP processors of (1 OMS + 1 AMS);
* ``"2x4"``   -- two MISP processors of (1 OMS + 3 AMS);
* ``"1x8"``   -- one MISP processor of (1 OMS + 7 AMS);
* ``"1x4+4"`` -- one (1 OMS + 3 AMS) processor plus four plain CPUs;
* ``"1x4+1x2"`` -- uneven MISP sizes, one group per term;
* ``"smp8"``  -- eight plain CPUs (the SMP baseline).

A configuration is canonically a tuple of per-processor AMS counts,
e.g. ``(3, 0, 0, 0, 0)`` for ``1x4+4``.  :func:`parse_config` and
:func:`config_name` are exact inverses on canonical names, which the
experiment layer relies on for content-addressed run deduplication.

This module is intentionally free of machine dependencies so that both
:mod:`repro.core.machine` and :mod:`repro.core.mp` can share it.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.errors import ConfigurationError

_GROUP_RE = re.compile(r"^(\d+)x(\d+)$")
_SMP_RE = re.compile(r"^smp(\d+)$")

#: sequencer budget of the paper's multiprogramming study (Section 5.4)
FIGURE7_SEQUENCERS = 8

#: The configurations evaluated in Figure 7, by paper name.
FIGURE7_CONFIGS = [
    "4x2", "2x4", "1x8", "1x7+1", "1x6+2", "1x5+3", "1x4+4",
]

#: The configurations drawn in Figure 6.
FIGURE6_CONFIGS = ["4x2", "2x4", "1x8", "1x4+4"]


def parse_config(name: str) -> tuple[int, ...]:
    """Parse a Figure-6-style name into per-processor AMS counts.

    The name is a ``+``-joined list of terms: ``KxS`` means K MISP
    processors of S sequencers each (one OMS, S-1 AMSs); a bare
    integer ``P`` means P single-sequencer processors.  ``smpN`` is
    shorthand for N plain CPUs.  Plain CPUs sort after MISP groups in
    the canonical tuple, matching :func:`config_name`.
    """
    name = name.strip().lower()
    smp = _SMP_RE.match(name)
    if smp:
        return (0,) * int(smp.group(1))
    counts: list[int] = []
    plain = 0
    for part in name.split("+") if name else [""]:
        group = _GROUP_RE.match(part)
        if group:
            k, s = int(group.group(1)), int(group.group(2))
            if k <= 0 or s <= 0:
                raise ConfigurationError(f"degenerate configuration '{name}'")
            counts.extend([s - 1] * k)
        elif part.isdigit():
            plain += int(part)
        else:
            raise ConfigurationError(
                f"cannot parse configuration '{name}' "
                "(expected e.g. '4x2', '1x4+4', '1x4+1x2', or 'smp8')")
    if not counts and not plain:
        raise ConfigurationError(f"degenerate configuration '{name}'")
    return tuple(counts + [0] * plain)


def total_sequencers(config: Sequence[int]) -> int:
    return len(config) + sum(config)


def config_name(config: Sequence[int]) -> str:
    """Render per-processor AMS counts back to the paper's notation."""
    misp = [c for c in config if c > 0]
    plain = sum(1 for c in config if c == 0)
    if not misp:
        return f"smp{plain}"
    sizes = {c + 1 for c in misp}
    if len(sizes) != 1:
        # uneven MISP sizes: list each group
        parts = "+".join(f"1x{c + 1}" for c in misp)
        return parts + (f"+{plain}" if plain else "")
    size = sizes.pop()
    base = f"{len(misp)}x{size}"
    return base + (f"+{plain}" if plain else "")


def ideal_config_for_load(total_sequencers_: int, background: int) -> tuple[int, ...]:
    """The Section 5.4 'ideal' configuration for a given load.

    With N background single-threaded processes, the ideal partition
    gives the multi-shredded application one MISP processor with all
    remaining sequencers and each background process its own AMS-less
    OMS: ``1x(T-N) + N``.
    """
    if background < 0:
        raise ConfigurationError("background process count must be >= 0")
    if background >= total_sequencers_:
        raise ConfigurationError(
            f"cannot give {background} background processes their own CPU "
            f"out of {total_sequencers_} sequencers")
    return tuple([total_sequencers_ - background - 1] + [0] * background)
