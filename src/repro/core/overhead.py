"""The paper's analytic overhead models (Section 5.1, Equations 1-3).

MISP introduces three categories of synchrony overhead that SMP does
not have.  With ``signal`` the inter-sequencer communication cost and
``priv`` the time spent executing in the OS:

* Equation 1 -- serialization across an OMS ring transition::

      serialize = 2 * signal + priv

  (one broadcast to suspend all AMSs, the privileged work itself, one
  broadcast to resume).

* Equation 2 -- overhead incurred by a shred whose AMS needs proxy
  execution::

      proxy_egress = 3 * signal

  (notify the OMS, be suspended with everyone else, be resumed).

* Equation 3 -- overhead incurred by the OMS to service that proxy::

      proxy_ingress = signal + serialize

These functions are used two ways: the machine model *charges* these
costs dynamically during simulation, and the Figure 5 sensitivity
analysis applies them *analytically* to measured event counts, exactly
as Section 5.3 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import MachineParams


def serialize_cost(signal: int, priv: int) -> int:
    """Equation 1: total serialization across one OMS ring transition."""
    return 2 * signal + priv


def proxy_egress_cost(signal: int) -> int:
    """Equation 2: per-shred overhead of one proxy-execution request."""
    return 3 * signal


def proxy_ingress_cost(signal: int, priv: int) -> int:
    """Equation 3: OMS-side overhead of servicing one proxy request."""
    return signal + serialize_cost(signal, priv)


@dataclass(frozen=True)
class SignalSensitivity:
    """Analytic signal-cost overlay used for Figure 5.

    Section 5.3's method: separate serializing events into those that
    originate on the OMS (charged via Equation 1) and those that
    originate on an AMS (charged via Equation 2), then express the
    signal-dependent part as a fraction of an ideal-hardware
    (signal = 0) execution.
    """

    #: count of serializing events originating on the OMS
    oms_events: int
    #: count of serializing events originating on AMSs
    ams_events: int
    #: total execution cycles with ideal (zero-cost) signaling
    ideal_cycles: int

    def added_cycles(self, signal: int) -> int:
        """Signal-dependent cycles added over the ideal baseline.

        The ``priv`` term of Equation 1 is present in the ideal
        baseline too, so only the signal terms remain: ``2*signal`` per
        OMS event and ``3*signal`` per AMS event (Equation 2).
        """
        return 2 * signal * self.oms_events + 3 * signal * self.ams_events

    def overhead_fraction(self, signal: int) -> float:
        """Slowdown over ideal hardware, as a fraction (Figure 5 y-axis)."""
        if self.ideal_cycles <= 0:
            raise ValueError("ideal_cycles must be positive")
        return self.added_cycles(signal) / self.ideal_cycles


def expected_serialization_cycles(params: MachineParams, oms_events: int,
                                  ams_events: int, mean_priv: int) -> int:
    """Total serialization cycles predicted by the Section 5.1 model."""
    per_oms = serialize_cost(params.signal_cost, mean_priv)
    per_ams = (proxy_egress_cost(params.signal_cost)
               + proxy_ingress_cost(params.signal_cost, mean_priv))
    return oms_events * per_oms + ams_events * per_ams
