"""Machine-level operations and scheduler-level sentinels.

The direct-execution mode represents a running instruction stream as a
Python generator that yields *operations*.  Two disjoint families
exist:

* **Machine ops** (:class:`MachineOp` subclasses) are consumed by the
  machine model in :mod:`repro.core.machine`.  They carry a cycle cost
  and may raise architectural events (page faults, syscall traps).
  These are the direct-execution duals of mini-ISA instructions.

* **Scheduler sentinels** (:class:`SchedSentinel` subclasses) never
  reach the machine.  They are intercepted by the ShredLib shred
  runner (:mod:`repro.shredlib.scheduler`), which uses them to park,
  re-queue, or retire the current shred.  They are the direct-execution
  duals of the user-level context switch in Figure 3 of the paper.

A workload body therefore looks like::

    def body(ctx):
        yield Compute(10_000)                  # machine op
        yield Touch(data_region, page_index=3) # may page-fault
        yield from mutex.acquire(ctx)          # may yield Block(...)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.addrspace import Region


class Op:
    """Root of the operation hierarchy."""

    __slots__ = ()


class MachineOp(Op):
    """An operation executed (and costed) by the machine."""

    __slots__ = ()


class SchedSentinel(Op):
    """An operation intercepted by the user-level shred runner."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Machine ops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Compute(MachineOp):
    """Retire ``cycles`` of pure computation.

    Keep individual chunks modest (tens of thousands of cycles) so
    asynchronous events -- timer interrupts, ingress signals -- are
    taken with bounded latency; the machine only samples for them at
    operation boundaries.  :meth:`repro.exec.context.ExecContext.compute`
    chunks long computations automatically.
    """

    cycles: int
    #: register numbers this op reads / writes (its architectural
    #: dependences) -- consumed by hazard-tracking timing models
    #: (repro.timing.scoreboard); empty for coarse direct-mode ops
    reads: tuple = ()
    writes: tuple = ()

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("compute cycles must be non-negative")


@dataclass(frozen=True)
class Touch(MachineOp):
    """Access one page of a region (load, or store if ``write``).

    The machine translates the page through the touching sequencer's
    TLB; a miss costs a page walk, and a non-resident page raises a
    page fault -- serviced directly on an OMS / SMP CPU, or via proxy
    execution on an AMS.
    """

    region: "Region"
    page_index: int
    write: bool = False
    #: extra cycles modelling the data access itself
    cycles: int = 10


@dataclass(frozen=True)
class MemAccess(MachineOp):
    """Access one word at a virtual address (the mini-ISA load/store).

    Like :class:`Touch` but addressed virtually rather than through a
    named region; used by the assembly interpreter, whose effective
    addresses are computed at runtime.
    """

    vaddr: int
    write: bool = False
    cycles: int = 10
    #: register dependences, as on :class:`Compute`
    reads: tuple = ()
    writes: tuple = ()


@dataclass(frozen=True)
class SyscallOp(MachineOp):
    """Request an OS service (always a Ring 3 -> Ring 0 transition).

    On an AMS this triggers proxy execution.  ``cost`` overrides the
    kernel's default service cost when given.
    """

    kind: str
    cost: Optional[int] = None
    #: opaque argument recorded in traces (e.g. byte count for write)
    arg: Any = None


@dataclass(frozen=True)
class AtomicOp(MachineOp):
    """One atomic read-modify-write (lock-prefixed instruction).

    With a ``vaddr`` the RMW is a *write to shared memory*: it goes
    through the sequencer's TLB and cache hierarchy and invalidates
    other caches holding the line -- the lock ping-pong that makes a
    contended work queue expensive across private caches (and cheap
    behind a MISP processor's shared L2).  Without one it degrades to
    a flat-cost compute op (hand-built machines without a staged
    runtime).
    """

    cycles: int = 0  # 0 = use params.atomic_op_cost
    #: virtual address of the lock word, if the caller has one
    vaddr: Optional[int] = None


@dataclass(frozen=True)
class SignalShred(MachineOp):
    """Execute the MISP ``SIGNAL`` instruction (Section 2.4).

    Delivers a shred continuation to the sequencer with logical id
    ``sid`` within the current MISP processor.  ``continuation`` is a
    started-or-fresh generator in direct mode (the ⟨EIP, ESP⟩ pair of
    the paper).  Only valid on an OMS or AMS of a MISP processor.
    """

    sid: int
    continuation: Any
    label: str = ""


@dataclass(frozen=True)
class HaltOp(MachineOp):
    """Stop fetching; the stream is finished (thread/shred exit)."""


# ----------------------------------------------------------------------
# Scheduler sentinels (ShredLib-level)
# ----------------------------------------------------------------------
@dataclass
class Block(SchedSentinel):
    """Park the current shred on ``waiters`` until someone wakes it.

    ``waiters`` is any object with an ``append`` method (usually the
    wait list inside a ShredLib sync object).  The runner appends the
    parked shred and schedules other work.
    """

    waiters: list = field(default_factory=list)
    reason: str = ""


@dataclass(frozen=True)
class YieldShred(SchedSentinel):
    """Voluntarily yield: re-enqueue the current shred and run another.

    This is the voluntary-yield semantics of Section 3 that queue-based
    locking algorithms build on.
    """


@dataclass(frozen=True)
class ExitShred(SchedSentinel):
    """Terminate the current shred immediately (like returning)."""
