"""Execution context handed to direct-execution bodies.

An :class:`ExecContext` is the "standard library" a workload body uses
to express work: chunked computation, page touches, system calls.  It
is deliberately thin -- every helper is a generator that yields the
ops from :mod:`repro.exec.ops` -- so bodies read like the loop nests
they model::

    def worker(ctx, data):
        yield from ctx.compute(2_000_000)
        yield from ctx.touch_range(data, 0, data.num_pages)
        yield from ctx.syscall("write")
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.exec.ops import Compute, Op, SyscallOp, Touch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process
    from repro.mem.addrspace import Region
    from repro.params import MachineParams


#: Default compute chunk so asynchronous events are sampled often
#: enough (see :class:`repro.exec.ops.Compute`).
DEFAULT_CHUNK = 25_000


class ExecContext:
    """Per-process helper for writing direct-execution bodies.

    One context is shared by all shreds of a process; per-shred state
    (such as the RNG streams handed out by :meth:`rng`) is derived
    deterministically so runs are reproducible.
    """

    def __init__(self, process: "Process", params: "MachineParams",
                 seed: int = 0) -> None:
        self.process = process
        self.params = params
        self.seed = seed
        #: back-reference installed by the runner; enables
        #: :meth:`spawn_native` (legacy apps mixing native OS threads
        #: with shreds, like the restructured Open Dynamics Engine)
        self.machine = None

    def spawn_native(self, name: str, body, pinned_cpu: Optional[int] = None):
        """Create a native OS thread in this process (not a shred).

        The paper's Section 5.5: "By using a native OS thread to
        handle user I/O and a separate native OS thread consisting of
        multiple shreds to perform the compute-intensive parallelized
        computation, the AMSs were more efficiently utilized."
        """
        if self.machine is None:
            raise RuntimeError("context has no machine; use a runner "
                               "from repro.workloads.runner")
        return self.machine.spawn_thread(self.process, name, body,
                                         pinned_cpu=pinned_cpu)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def reserve(self, name: str, num_pages: int) -> "Region":
        """Reserve a demand-zero region in the process address space."""
        return self.process.address_space.reserve(name, num_pages)

    def region(self, name: str) -> "Region":
        return self.process.address_space.region(name)

    # ------------------------------------------------------------------
    # Op generators
    # ------------------------------------------------------------------
    def compute(self, cycles: int, chunk: int = DEFAULT_CHUNK) -> Iterator[Op]:
        """Yield ``cycles`` of computation in interruptible chunks."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        remaining = cycles
        while remaining > 0:
            step = min(remaining, chunk)
            remaining -= step
            yield Compute(step)

    def touch(self, region: "Region", page_index: int,
              write: bool = False) -> Iterator[Op]:
        """Touch a single page."""
        yield Touch(region, page_index, write)

    def touch_range(self, region: "Region", start: int, count: int,
                    write: bool = False, stride: int = 1,
                    compute_per_page: int = 0) -> Iterator[Op]:
        """Touch ``count`` pages starting at ``start``.

        ``compute_per_page`` interleaves computation with the touches,
        modelling a loop that streams over the data.
        """
        if stride <= 0:
            raise ValueError("stride must be positive")
        for i in range(count):
            yield Touch(region, start + i * stride, write)
            if compute_per_page > 0:
                yield from self.compute(compute_per_page)

    def syscall(self, kind: str, cost: Optional[int] = None,
                arg: Any = None) -> Iterator[Op]:
        """Trap to the OS for service ``kind``."""
        yield SyscallOp(kind, cost, arg)

    # ------------------------------------------------------------------
    # Determinism helpers
    # ------------------------------------------------------------------
    def rng(self, stream: int) -> random.Random:
        """A deterministic RNG stream (e.g. one per shred)."""
        return random.Random((self.seed << 20) ^ stream)
