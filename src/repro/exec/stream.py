"""Instruction streams: the interface a sequencer fetches from.

A :class:`Sequencer <repro.core.sequencer.Sequencer>` does not care
whether it is running mini-ISA machine code or a direct-execution
generator; it fetches :class:`~repro.exec.ops.MachineOp` objects from
an :class:`InstructionStream` and notifies it on completion.  Two
implementations exist:

* :class:`DirectStream` wraps a Python generator (this module);
* :class:`~repro.isa.interpreter.AsmStream` wraps the mini-ISA
  interpreter.

The fetch/complete split matters for fault semantics: when a fetched
operation page-faults, the machine services the fault (possibly via
proxy execution) and *re-attempts the same operation* without
advancing the stream -- exactly the "re-execute the faulting
instruction" behaviour of Section 2.5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.errors import SimulationError
from repro.exec.ops import HaltOp, MachineOp, Op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sequencer import Sequencer
    from repro.mem.hierarchy import MemoryHierarchy


class InstructionStream:
    """Abstract stream of machine operations."""

    #: human-readable label for traces
    label: str = ""
    #: set when the owning process exited with this shred still live;
    #: in-flight completions for a killed stream are dropped
    killed: bool = False
    #: the sequencer currently fetching this stream (bound by the
    #: machine at issue time; commit-phase translation goes through
    #: its TLB)
    sequencer: Optional["Sequencer"] = None

    def fetch_addr(self, hierarchy: "MemoryHierarchy") -> Optional[int]:
        """Synthetic physical address of the next instruction fetch.

        ``None`` (the default) means fetch is not modelled separately:
        direct-execution streams fold it into their op costs.  The
        mini-ISA interpreter overrides this so fetches go through the
        owning sequencer's cache hierarchy.
        """
        return None

    def next_op(self) -> Optional[MachineOp]:
        """Fetch the next operation, or ``None`` when the stream ends.

        Repeated calls without an intervening :meth:`complete` return
        the same pending operation (fault-retry semantics).
        """
        raise NotImplementedError

    def complete(self, value: Any = None) -> None:
        """Commit the pending operation, passing ``value`` back."""
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        raise NotImplementedError


class DirectStream(InstructionStream):
    """Adapts a generator of ops into an :class:`InstructionStream`.

    The generator must yield :class:`MachineOp` instances only; the
    ShredLib layer is responsible for intercepting scheduler sentinels
    before they reach a sequencer.  A yielded :class:`HaltOp`, or
    generator exhaustion, ends the stream.
    """

    def __init__(self, gen: Iterator[Op], label: str = "") -> None:
        self._gen = gen
        self.label = label
        self._pending: Optional[MachineOp] = None
        self._send_value: Any = None
        self._started = False
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def next_op(self) -> Optional[MachineOp]:
        if self._finished:
            return None
        if self._pending is not None:
            return self._pending  # fault retry: same op again
        try:
            if not self._started:
                self._started = True
                op = next(self._gen)
            else:
                op = self._gen.send(self._send_value)
        except StopIteration:
            self._finished = True
            return None
        if isinstance(op, HaltOp):
            self._finished = True
            self._close()
            return None
        if not isinstance(op, MachineOp):
            raise SimulationError(
                f"stream '{self.label}' yielded a non-machine op {op!r}; "
                "scheduler sentinels must be intercepted by the shred runner")
        self._pending = op
        return op

    def complete(self, value: Any = None) -> None:
        if self._pending is None:
            raise SimulationError(
                f"stream '{self.label}': complete() with no pending op")
        self._pending = None
        self._send_value = value

    def _close(self) -> None:
        close = getattr(self._gen, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else "live"
        return f"<DirectStream {self.label or '?'} {state}>"
