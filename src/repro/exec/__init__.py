"""Direct-execution model: ops, streams, and workload contexts."""

from repro.exec.context import DEFAULT_CHUNK, ExecContext
from repro.exec.ops import (
    AtomicOp, Block, Compute, ExitShred, HaltOp, MachineOp, Op,
    SchedSentinel, SignalShred, SyscallOp, Touch, YieldShred,
)
from repro.exec.stream import DirectStream, InstructionStream

__all__ = [
    "DEFAULT_CHUNK", "ExecContext", "AtomicOp", "Block", "Compute",
    "ExitShred", "HaltOp", "MachineOp", "Op", "SchedSentinel",
    "SignalShred", "SyscallOp", "Touch", "YieldShred", "DirectStream",
    "InstructionStream",
]
