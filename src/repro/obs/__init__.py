"""Unified observability: metrics registry, span tracing, run observation.

See :mod:`repro.obs.metrics` (registry + stats views),
:mod:`repro.obs.spans` (wall-time span tracing with correlation ids),
:mod:`repro.obs.observe` (instrumented simulation runs), and
:mod:`repro.obs.perfetto` (Chrome-trace-event timeline export).
"""

from repro.obs.metrics import (
    Counter, Family, Gauge, Histogram, MetricsRegistry, StatsView,
    get_registry, new_run_id, set_registry,
)
from repro.obs.observe import ObservedRun
from repro.obs.perfetto import export_run, trace_events, write_trace
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Counter", "Family", "Gauge", "Histogram", "MetricsRegistry",
    "StatsView", "get_registry", "new_run_id", "set_registry",
    "ObservedRun", "export_run", "trace_events", "write_trace",
    "Span", "SpanTracer",
]
