"""Unified observability: metrics registry, span tracing, run observation.

See :mod:`repro.obs.metrics` (registry + stats views),
:mod:`repro.obs.spans` (wall-time span tracing with correlation ids),
:mod:`repro.obs.observe` (instrumented simulation runs),
:mod:`repro.obs.perfetto` (Chrome-trace-event timeline export),
:mod:`repro.obs.critpath` (critical-path / stall-taxonomy bottleneck
attribution), and :mod:`repro.obs.diff` (run-diff regression
attribution).
"""

from repro.obs.critpath import (
    analyze_observed, analyze_result, analyze_trace, busy_timeline,
    critical_path, event_slack, event_times, format_analysis,
)
from repro.obs.diff import diff_analyses, format_diff
from repro.obs.metrics import (
    Counter, Family, Gauge, Histogram, MetricsRegistry, StatsView,
    get_registry, new_run_id, set_registry,
)
from repro.obs.observe import ObservedRun
from repro.obs.perfetto import export_run, trace_events, write_trace
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Counter", "Family", "Gauge", "Histogram", "MetricsRegistry",
    "StatsView", "get_registry", "new_run_id", "set_registry",
    "ObservedRun", "export_run", "trace_events", "write_trace",
    "Span", "SpanTracer",
    "analyze_observed", "analyze_result", "analyze_trace",
    "busy_timeline", "critical_path", "event_slack", "event_times",
    "format_analysis", "diff_analyses", "format_diff",
]
