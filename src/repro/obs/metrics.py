"""Process-wide metrics registry: counters, gauges, and histograms.

The repo grew four disconnected stats islands -- ``TraceLog``,
``ShredLog``, ``StoreStats``, ``RunnerStats`` -- each a private pile of
counters with its own query methods and no shared export path.  This
module is the unification point: a stdlib-only, thread-safe
:class:`MetricsRegistry` of labeled metric *families* that every layer
(engine, machine/timing, memory hierarchy, store, in-flight table,
service) registers into, with two export formats:

* :meth:`MetricsRegistry.snapshot` -- a deterministic nested dict
  (stable ordering regardless of registration/update order), safe to
  ``json.dumps`` and to golden-file in tests;
* :meth:`MetricsRegistry.render_prometheus` -- Prometheus text
  exposition (``# HELP`` / ``# TYPE`` / escaped label values), the
  format a future multi-host service scrapes over the wire.

Component stats objects (:class:`~repro.service.store.StoreStats` and
friends) are *views* over registry counters -- see :class:`StatsView`
-- so ``store.stats.hits`` and the registry's
``repro_store_events_total{store=...,event="hits"}`` are one number,
not parallel bookkeeping.

Instrumented runs label their families with a correlation id from
:func:`new_run_id`, so one registry can hold many runs side by side.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Iterator, Mapping, Optional, Sequence, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "Family", "MetricsRegistry",
    "StatsView", "get_registry", "set_registry", "new_run_id",
]

#: default histogram buckets (seconds-ish scale; override per family)
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

_run_ids = itertools.count()


def new_run_id(prefix: str = "run") -> str:
    """A process-unique correlation id, e.g. ``run-3-1f2e``.

    The random suffix keeps ids from different processes (a report
    invocation vs a worker) from colliding when their metrics land in
    one place.
    """
    return f"{prefix}-{next(_run_ids)}-{os.urandom(2).hex()}"


class Counter:
    """A monotonically increasing value (one labeled family member)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0
        self._lock = lock

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up (inc({n}))")
        with self._lock:
            self._value += n

    def set(self, value: Union[int, float]) -> None:
        """Overwrite the value.

        Exists for the :class:`StatsView` attribute protocol
        (``stats.hits += 1`` reads then sets) and for end-of-run pumps
        that publish a totalled count; live hot paths use :meth:`inc`.
        """
        with self._lock:
            self._value = value

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def _sample(self):
        return self._value


class Gauge(Counter):
    """A value that can go up and down (same cells, different intent)."""

    __slots__ = ()

    def inc(self, n: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: Union[int, float] = 1) -> None:
        self.inc(-n)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("_buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self._buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self._buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: Union[int, float]) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            # per-bucket counts; _sample() cumulates at render time
            for i, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: Union[int, float]) -> float:
        """Upper-bound estimate of the ``q``-th percentile (0..100).

        Returns the smallest bucket bound whose cumulative count covers
        ``q`` percent of observations -- the usual histogram-quantile
        upper bound.  Observations beyond the largest bucket resolve to
        ``inf``; an empty histogram returns ``0.0``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q!r}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total / 100.0
            cumulative = 0
            for bound, n in zip(self._buckets, self._counts):
                cumulative += n
                if cumulative >= rank:
                    return float(bound)
        return float("inf")

    def _sample(self):
        buckets = {}
        cumulative = 0
        for bound, n in zip(self._buckets, self._counts):
            cumulative += n
            buckets[format(bound, "g")] = cumulative
        buckets["+Inf"] = self._count
        return {"count": self._count, "sum": self._sum, "buckets": buckets}


_KIND_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: ``\\``, ``"``, newline."""
    return (value.replace("\\", r"\\")
                 .replace('"', r'\"')
                 .replace("\n", r"\n"))


class Family:
    """All time series sharing one metric name, keyed by label values."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: type,
                 help: str, labelnames: Sequence[str], **kwargs) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._kwargs = kwargs
        self._children: dict[tuple, object] = {}
        self._default: Optional[object] = None

    def labels(self, **labelvalues: str):
        """The child metric for one label-value combination (created on
        first use).  Label values are coerced to ``str``."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric '{self.name}' takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = self.kind(self._registry._value_lock,
                                      **self._kwargs)
                    self._children[key] = child
        return child

    # -- unlabeled convenience: the family proxies its single child ----
    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"metric '{self.name}' is labeled {self.labelnames}; "
                "use .labels(...)")
        if self._default is None:
            self._default = self.labels()
        return self._default

    def inc(self, n: Union[int, float] = 1) -> None:
        self._default_child().inc(n)

    def dec(self, n: Union[int, float] = 1) -> None:
        self._default_child().dec(n)

    def set(self, value: Union[int, float]) -> None:
        self._default_child().set(value)

    def observe(self, value: Union[int, float]) -> None:
        self._default_child().observe(value)

    @property
    def value(self):
        return self._default_child().value

    def samples(self) -> Iterator[tuple[dict[str, str], object]]:
        """``(labels, child)`` pairs in deterministic label order."""
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]


class MetricsRegistry:
    """A named collection of metric families.

    Thread-safe; family constructors are idempotent (re-registering the
    same name returns the existing family) but re-registering under a
    different kind or label set is a bug and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: one shared lock for all metric cells -- updates are a single
        #: add under the GIL, so per-cell locks would buy contention
        #: granularity nothing here justifies
        self._value_lock = threading.Lock()
        self._families: dict[str, Family] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: type, help: str,
                labels: Sequence[str], **kwargs) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind is not kind \
                        or family.labelnames != tuple(labels):
                    raise ValueError(
                        f"metric '{name}' already registered as "
                        f"{_KIND_NAMES[family.kind]}{family.labelnames}")
                return family
            family = Family(self, name, kind, help, labels, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Family:
        return self._family(name, Counter, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Family:
        return self._family(name, Gauge, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Family:
        return self._family(name, Histogram, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic nested-dict export (sorted names and labels).

        The same metric state always renders the same dict, whatever
        order families were registered or updated in -- the property
        the snapshot-determinism tests pin down.
        """
        out: dict = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            out[name] = {
                "type": _KIND_NAMES[family.kind],
                "help": family.help,
                "samples": [
                    {"labels": labels, "value": child._sample()}
                    for labels, child in family.samples()
                ],
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus/OpenMetrics text exposition."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {_KIND_NAMES[family.kind]}")
            for labels, child in family.samples():
                if isinstance(child, Histogram):
                    sample = child._sample()
                    for le, count in sample["buckets"].items():
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**labels, 'le': le})} "
                            f"{count}")
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{sample['sum']}")
                    lines.append(
                        f"{name}_count{_render_labels(labels)} "
                        f"{sample['count']}")
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {child.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


#: the process-wide default registry every component registers into
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Intended for test isolation (install a fresh registry, restore the
    old one in teardown).
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


class StatsView:
    """Attribute-style stats object backed by registry counters.

    The component stats dataclasses (``StoreStats``, ``RunnerStats``,
    ...) historically were parallel bookkeeping: plain ints the
    component mutated with ``stats.hits += 1``.  This base preserves
    that exact surface -- attribute reads return ints, augmented
    assignment and ``setattr`` keep working -- while making each field
    a *view* over one labeled registry counter, so component counts and
    the exported metrics are a single source of truth.

    Subclasses map each public field name to a registry child via the
    ``children`` dict; extra plain attributes must be set with
    ``object.__setattr__`` (the default ``__setattr__`` only accepts
    known metric fields, so typos fail loudly like they would on a
    dataclass with ``__slots__``).
    """

    __slots__ = ("_children",)

    def __init__(self, children: Mapping[str, Counter]) -> None:
        object.__setattr__(self, "_children", dict(children))

    def __getattr__(self, name: str):
        try:
            return self._children[name].value
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__!s} has no field {name!r}") from None

    def __setattr__(self, name: str, value) -> None:
        try:
            self._children[name].set(value)
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__!s} has no field {name!r}") from None

    def as_dict(self) -> dict[str, Union[int, float]]:
        """Plain ``{field: value}`` copy of the current counts."""
        return {name: child.value
                for name, child in self._children.items()}
