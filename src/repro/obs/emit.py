"""Structured report emission with run correlation ids.

The evaluation report historically wrote with a bare
``print(text, file=stream)``.  :class:`ReportEmitter` keeps that exact
human-readable output as the default while adding:

* a **run correlation id** shared with every observability family the
  invocation touches (store/service instances, observed simulation
  runs, Perfetto exports), so one report's artifacts can be joined
  across metrics, traces, and logs; and
* an optional **structured mode** (``--structured`` /
  ``REPRO_OBS_STRUCTURED=1``) that emits one JSON object per line --
  ``{"run", "seq", "kind", "text", ...}`` -- for log pipelines, with
  monotonically increasing ``seq`` so ordering survives collection.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Optional, TextIO

from repro.obs.metrics import new_run_id

__all__ = ["ReportEmitter"]


class ReportEmitter:
    """Line-oriented report output, human or structured JSON-lines."""

    def __init__(self, stream: Optional[TextIO] = None,
                 structured: bool = False,
                 run_id: Optional[str] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.structured = structured
        #: correlation id stamped on every structured record and shared
        #: with the invocation's metrics families / trace exports
        self.run_id = run_id or new_run_id("report")
        self._seq = 0

    def emit(self, text: str, kind: str = "text", **fields: Any) -> None:
        """Emit one report line (possibly multi-line text).

        ``kind`` tags the record in structured mode ("section",
        "progress", "artifact", "stats", ...); extra ``fields`` ride
        along as machine-readable context.
        """
        self._seq += 1
        if self.structured:
            record: dict[str, Any] = {"run": self.run_id, "seq": self._seq,
                                      "kind": kind, "text": text}
            record.update(fields)
            print(json.dumps(record, sort_keys=True), file=self.stream)
        else:
            print(text, file=self.stream)
        self.stream.flush()

    def section(self, title: str) -> None:
        """Emit a report section header."""
        self.emit(f"\n--- {title} ---", kind="section", section=title)
