"""Span tracing with correlation ids for the serving pipeline.

A :class:`Span` is one timed phase of handling a request, tagged with
the correlation id of the job it belongs to (``job id -> spec hash ->
phase``).  The :class:`ExperimentService` opens spans around each
resolution phase (``submit -> memo -> store -> plan -> execute ->
backfill``), so "where did the wall-time of job X go" has a direct
answer: ``tracer.by_name()`` for the fleet view,
``JobHandle.metrics()`` for one job.

Spans measure *wall* time (``time.perf_counter``) -- the serving
stack's phases are host work, unlike the simulated-cycle intervals
:class:`repro.sim.trace.TraceLog` records.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["Span", "SpanTracer"]

_span_ids = itertools.count(1)


class Span:
    """One finished (or in-progress) timed phase."""

    __slots__ = ("name", "correlation", "span_id", "parent_id",
                 "start", "end", "attrs")

    def __init__(self, name: str, correlation: str,
                 parent_id: Optional[int] = None, **attrs) -> None:
        self.name = name
        self.correlation = correlation
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds from start to finish (to now while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "correlation": self.correlation,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration": self.duration,
            **({"attrs": self.attrs} if self.attrs else {}),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.name} corr={self.correlation} "
                f"{self.duration * 1e3:.2f}ms>")


class SpanTracer:
    """Thread-safe collector of finished spans.

    ``max_spans`` bounds memory on a long-lived service (oldest spans
    fall off); the default keeps plenty for any single report run.
    Nesting is tracked per thread: a span opened inside another on the
    same thread records it as parent.
    """

    def __init__(self, max_spans: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._active = threading.local()

    @contextmanager
    def span(self, name: str, correlation: str = "", **attrs
             ) -> Iterator[Span]:
        """Open a span; it finishes (and is collected) on exit."""
        parent = getattr(self._active, "span", None)
        sp = Span(name, correlation,
                  parent_id=parent.span_id if parent else None, **attrs)
        self._active.span = sp
        try:
            yield sp
        finally:
            self._active.span = parent
            sp.end = time.perf_counter()
            with self._lock:
                self._finished.append(sp)

    def finished(self, correlation: Optional[str] = None) -> list[Span]:
        """Collected spans, optionally for one correlation id."""
        with self._lock:
            spans = list(self._finished)
        if correlation is not None:
            spans = [s for s in spans if s.correlation == correlation]
        return spans

    def by_name(self, correlation: Optional[str] = None
                ) -> dict[str, tuple[int, float]]:
        """Wall-time attribution: ``{phase: (count, total_seconds)}``."""
        out: dict[str, tuple[int, float]] = {}
        for sp in self.finished(correlation):
            count, total = out.get(sp.name, (0, 0.0))
            out[sp.name] = (count + 1, total + sp.duration)
        return out

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)
