"""Critical-path and bottleneck attribution for simulation runs.

The captured event-dependency graph (:mod:`repro.sim.captrace`) is a
tree: every event has exactly one parent (the event executing when it
was scheduled) and completes at ``parent_time + delay``.  That makes
the classic critical-path questions cheap:

* **completion times** -- one forward pass in seqno order
  (:func:`event_times`);
* **critical path** -- the parent chain ending at the application's
  exit event (:func:`critical_path`): the one chain of delays whose
  sum *is* the run's wall cycles, i.e. the only place where making
  something faster makes the run faster;
* **slack** -- one downward subtree-max pass (:func:`event_slack`):
  how many cycles an event's delay could grow before it moved the end
  of the run;
* **attribution** -- every recorded delay decomposes into the stall
  taxonomy of :data:`repro.timing.base.STALL_CLASSES` (parameter
  coefficients via :data:`~repro.timing.base.PARAM_CLASS`, hierarchy
  charges as ``memory``, the remainder as ``compute``) and is charged
  to the sequencer that owned it, so per-sequencer class totals plus
  ``suspended`` and ``idle`` sum to the run's wall cycles
  (:func:`analyze_trace`).

Runs that cannot capture (the ``scoreboard`` timing model, the
``multiprog`` backend) fall back to the observed-run surface --
sequencer busy/suspended statistics plus the live
:class:`~repro.timing.base.StallAccount` -- via
:func:`analyze_observed`; :func:`analyze_result` dispatches on what
the :class:`~repro.workloads.runner.RunResult` carries.

Every function here is pure arithmetic over recorded integers, so the
same trace always produces byte-identical analysis documents -- the
property the committed-fixture determinism test pins down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.timing.base import PARAM_CLASS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.captrace import CapturedTrace
    from repro.workloads.runner import RunResult

__all__ = [
    "event_times", "event_slack", "critical_path", "busy_timeline",
    "analyze_trace", "analyze_observed", "analyze_result",
    "format_analysis",
]

#: schema tag stamped into every analysis document
ANALYZE_SCHEMA = "repro.critpath/1"


# ----------------------------------------------------------------------
# Graph primitives
# ----------------------------------------------------------------------
def event_times(trace: "CapturedTrace") -> list[int]:
    """Completion time of every event (one forward pass)."""
    parents = trace.parents
    delays = trace.delays
    root_now = trace.root_now
    times = [0] * len(parents)
    for i in range(len(parents)):
        p = parents[i]
        times[i] = (times[p] if p >= 0 else root_now[i]) + delays[i]
    return times


def _end_event(trace: "CapturedTrace", times: list[int]) -> Optional[int]:
    """The event whose completion defines the run's wall time.

    Preferably the event during which the application process exited
    (its ``pexit`` mark); otherwise the earliest event with the
    maximum completion time.
    """
    for kind, at_seqno, _at_now, arg in trace.marks:
        if kind == "pexit" and arg == trace.app_pid and at_seqno >= 0:
            return at_seqno
    if not times:
        return None
    best, best_t = 0, times[0]
    for i, t in enumerate(times):
        if t > best_t:
            best, best_t = i, t
    return best


def critical_path(trace: "CapturedTrace",
                  times: Optional[list[int]] = None) -> list[int]:
    """Seqnos of the critical path, in chronological order."""
    if times is None:
        times = event_times(trace)
    end = _end_event(trace, times)
    if end is None:
        return []
    path = []
    i = end
    while i >= 0:
        path.append(i)
        i = trace.parents[i]
    path.reverse()
    return path


def event_slack(trace: "CapturedTrace",
                times: Optional[list[int]] = None) -> list[int]:
    """Per-event slack: cycles its delay may grow before the run does.

    ``slack[i] = wall - max(completion time over i's subtree)``; the
    critical path is exactly the zero-slack chain.
    """
    if times is None:
        times = event_times(trace)
    n = len(times)
    subtree_max = list(times)
    parents = trace.parents
    for i in range(n - 1, -1, -1):
        p = parents[i]
        if p >= 0 and subtree_max[i] > subtree_max[p]:
            subtree_max[p] = subtree_max[i]
    wall = max(times) if times else 0
    return [wall - m for m in subtree_max]


def _event_classes(trace: "CapturedTrace", i: int,
                   residual: bool = True) -> dict[str, int]:
    """Decompose one event's delay into stall-taxonomy classes.

    Parameter coefficients map through :data:`PARAM_CLASS`, hierarchy
    charges are ``memory``, and -- for priced work (``residual``) --
    any remaining delay is ``compute``.  Pass ``residual=False`` for
    events no sequencer owns: a timer sleep's un-annotated delay is a
    wait, not anyone's compute cycles.
    """
    d = trace.delays[i]
    out: dict[str, int] = {}
    if d <= 0:
        return out
    params = trace.params
    coefs = trace.coefs.get(i)
    if coefs:
        for key, mult, div in coefs:
            cycles = (getattr(params, key) * mult) // div
            if cycles:
                klass = PARAM_CLASS.get(key, "compute")
                out[klass] = out.get(klass, 0) + cycles
    access = trace.accesses.get(i)
    if access is not None and access[0]:
        out["memory"] = out.get("memory", 0) + access[0]
    if residual:
        rest = d - sum(out.values())
        if rest > 0:
            out["compute"] = out.get("compute", 0) + rest
    return out


def _suspended_cycles(trace: "CapturedTrace",
                      times: list[int]) -> dict[int, int]:
    """Per-sequencer suspended cycles from the sus/res mark pairs."""
    depth: dict[int, int] = {}
    since: dict[int, int] = {}
    suspended: dict[int, int] = {}
    for kind, at_seqno, at_now, arg in trace.marks:
        if kind not in ("sus", "res"):
            continue
        t = times[at_seqno] if at_seqno >= 0 else at_now
        if kind == "sus":
            if depth.get(arg, 0) == 0:
                since[arg] = t
            depth[arg] = depth.get(arg, 0) + 1
        else:
            depth[arg] = depth.get(arg, 0) - 1
            if depth[arg] == 0:
                suspended[arg] = suspended.get(arg, 0) + t - since.pop(arg)
    return suspended


def busy_timeline(trace: "CapturedTrace",
                  times: Optional[list[int]] = None,
                  buckets: int = 64) -> dict:
    """Bucketed occupancy timelines for counter tracks.

    Returns ``{"bucket_cycles": w, "per_seq": {seq_id: [busy cycles
    per bucket]}, "outstanding": [in-flight scheduled events per
    bucket]}``.  Pure integers, deterministic.
    """
    if times is None:
        times = event_times(trace)
    wall = max(times) if times else 0
    buckets = max(1, buckets)
    width = max(1, -(-wall // buckets)) if wall else 1
    nbuckets = max(1, -(-wall // width)) if wall else 1
    seq_ids = sorted(trace.oms_ids + trace.ams_ids)
    per_seq = {s: [0] * nbuckets for s in seq_ids}
    outstanding_delta = [0] * (nbuckets + 1)
    parents = trace.parents
    root_now = trace.root_now
    busy_get = trace.busy_seq.get
    owner_get = trace.owner_seq.get
    for i in range(len(parents)):
        p = parents[i]
        start = times[p] if p >= 0 else root_now[i]
        end = times[i]
        b0 = min(start // width, nbuckets - 1)
        b1 = min(end // width, nbuckets)
        outstanding_delta[b0] += 1
        if b1 > b0:
            outstanding_delta[b1] -= 1
        owner = busy_get(i)
        if owner is None:
            owner = owner_get(i)
        if owner is None or end <= start:
            continue
        row = per_seq.get(owner)
        if row is None:
            continue
        b = start // width
        while b * width < end and b < nbuckets:
            lo = max(start, b * width)
            hi = min(end, (b + 1) * width)
            if hi > lo:
                row[b] += hi - lo
            b += 1
    outstanding = []
    level = 0
    for b in range(nbuckets):
        level += outstanding_delta[b]
        outstanding.append(level)
    return {"bucket_cycles": width, "per_seq": per_seq,
            "outstanding": outstanding}


# ----------------------------------------------------------------------
# Full analyses
# ----------------------------------------------------------------------
def analyze_trace(trace: "CapturedTrace", workload: str = "",
                  system: str = "", config: str = "",
                  timing: str = "fixed",
                  max_segments: Optional[int] = None) -> dict:
    """Critical path, slack, and per-sequencer/per-class attribution
    of one captured run, as a deterministic JSON-ready document.

    ``max_segments`` bounds the listed critical-path segments (the
    longest are kept, in chronological order; the count dropped is
    recorded) -- totals and ``by_class`` always cover the full path.
    Consumers that walk consecutive segments (the Perfetto flow
    arrows) must leave it ``None``.
    """
    times = event_times(trace)
    n = len(times)
    wall_end = _end_event(trace, times)
    wall = times[wall_end] if wall_end is not None else 0
    full = max(times) if times else 0

    busy_get = trace.busy_seq.get
    owner_get = trace.owner_seq.get
    per_seq: dict[int, dict[str, int]] = {}
    unattributed = 0
    for i in range(n):
        owner = busy_get(i)
        if owner is None:
            owner = owner_get(i)
        # unowned events (timer sleeps, quantum delays) are waits:
        # only their explicitly annotated cycles count, and having no
        # owning sequencer those go to the unattributed bucket
        classes = _event_classes(trace, i, residual=owner is not None)
        if not classes:
            continue
        if owner is None:
            unattributed += sum(classes.values())
            continue
        row = per_seq.setdefault(owner, {})
        for klass, cycles in classes.items():
            row[klass] = row.get(klass, 0) + cycles

    suspended = _suspended_cycles(trace, times)
    seq_ids = sorted(trace.oms_ids + trace.ams_ids)
    oms = set(trace.oms_ids)
    sequencers: dict[str, dict] = {}
    totals: dict[str, int] = {}
    for seq_id in seq_ids:
        classes = dict(sorted(per_seq.get(seq_id, {}).items()))
        busy = sum(classes.values())
        susp = suspended.get(seq_id, 0)
        idle = wall - busy - susp
        if idle < 0:
            idle = 0
        classes["suspended"] = susp
        classes["idle"] = idle
        covered = busy + susp + idle
        for klass, cycles in classes.items():
            totals[klass] = totals.get(klass, 0) + cycles
        sequencers[str(seq_id)] = {
            "role": "oms" if seq_id in oms else "ams",
            "busy_cycles": busy,
            "utilization": round(busy / wall, 6) if wall else 0.0,
            "coverage": round(covered / wall, 6) if wall else 1.0,
            "classes": classes,
        }

    path = critical_path(trace, times)
    segments = []
    path_by_class: dict[str, int] = {}
    for i in path:
        d = trace.delays[i]
        if d <= 0:
            continue
        owner = busy_get(i)
        if owner is None:
            owner = owner_get(i, -1)
        classes = _event_classes(trace, i, residual=owner >= 0)
        if classes:
            klass = max(classes.items(), key=lambda kv: (kv[1], kv[0]))[0]
        else:
            klass = "wait"
        p = trace.parents[i]
        start = times[p] if p >= 0 else trace.root_now[i]
        segments.append({"seqno": i, "start": start, "end": times[i],
                         "cycles": d, "seq": owner, "class": klass})
        path_by_class[klass] = path_by_class.get(klass, 0) + d
    path_cycles = sum(s["cycles"] for s in segments)
    segments_dropped = 0
    if max_segments is not None and len(segments) > max_segments:
        keep = sorted(segments, key=lambda s: (-s["cycles"], s["seqno"]))
        kept = {s["seqno"] for s in keep[:max_segments]}
        segments_dropped = len(segments) - len(kept)
        segments = [s for s in segments if s["seqno"] in kept]

    slack = event_slack(trace, times)
    zero_slack = sum(1 for s in slack if s == 0)
    return {
        "schema": ANALYZE_SCHEMA,
        "source": "capture",
        "workload": workload,
        "system": system,
        "config": config,
        "timing": timing,
        "wall_cycles": wall,
        "horizon_cycles": full,
        "events": n,
        "unattributed_cycles": unattributed,
        "classes": dict(sorted(totals.items())),
        "sequencers": sequencers,
        "critical_path": {
            "events": len(segments) + segments_dropped,
            "cycles": path_cycles,
            "fraction_of_wall": round(path_cycles / wall, 6) if wall
            else 0.0,
            "by_class": dict(sorted(path_by_class.items())),
            "segments": segments,
            "segments_dropped": segments_dropped,
        },
        "slack": {
            "zero_slack_events": zero_slack,
            "mean": round(sum(slack) / n, 2) if n else 0.0,
            "max": max(slack) if slack else 0,
        },
    }


def analyze_observed(result: "RunResult") -> dict:
    """Fallback attribution from the observed-run surface.

    Used when no captured event graph exists (the ``scoreboard``
    timing model refuses capture): per-sequencer busy/suspended
    statistics plus the run's live
    :class:`~repro.timing.base.StallAccount`.  No critical path -- the
    event-dependency graph was never recorded.
    """
    machine = result.machine
    wall = result.cycles
    stalls = result.obs.stalls if result.obs is not None else None
    stall_rows = stalls.per_sequencer() if stalls is not None else {}
    sequencers: dict[str, dict] = {}
    totals: dict[str, int] = {}
    oms = set(machine.oms_ids())
    for seq in machine.sequencers:
        classes = dict(sorted(stall_rows.get(seq.seq_id, {}).items()))
        accounted = sum(classes.values())
        busy = seq.busy_cycles
        # serialization stages occupy the OMS without charging its
        # busy_cycles; treat the larger of the two as occupied time
        occupied = max(busy, accounted)
        susp = seq.suspended_cycles
        idle = wall - occupied - susp
        if idle < 0:
            idle = 0
        classes["suspended"] = susp
        classes["idle"] = idle
        for klass, cycles in classes.items():
            totals[klass] = totals.get(klass, 0) + cycles
        sequencers[str(seq.seq_id)] = {
            "role": "oms" if seq.seq_id in oms else "ams",
            "busy_cycles": busy,
            "utilization": round(busy / wall, 6) if wall else 0.0,
            "coverage": round((accounted + susp + idle) / wall, 6)
            if wall else 1.0,
            "classes": classes,
        }
    return {
        "schema": ANALYZE_SCHEMA,
        "source": "observed",
        "workload": result.workload,
        "system": result.system,
        "config": result.config,
        "timing": machine.timing.canonical_name(),
        "wall_cycles": wall,
        "horizon_cycles": wall,
        "events": machine.engine.events_executed,
        "unattributed_cycles": 0,
        "classes": dict(sorted(totals.items())),
        "sequencers": sequencers,
        "critical_path": None,
        "slack": None,
    }


def analyze_result(result: "RunResult",
                   max_segments: Optional[int] = None) -> dict:
    """Analyze a finished run with the best available evidence:
    the captured event graph when present, else the observed-run
    fallback."""
    if result.trace is not None:
        return analyze_trace(result.trace, workload=result.workload,
                             system=result.system, config=result.config,
                             timing=result.machine.timing.canonical_name(),
                             max_segments=max_segments)
    if result.obs is not None:
        return analyze_observed(result)
    raise ConfigurationError(
        "bottleneck analysis needs evidence: run the session with "
        ".capture() (fixed timing) or .observe() (any timing)")


# ----------------------------------------------------------------------
# Human rendering
# ----------------------------------------------------------------------
def _top_classes(classes: dict[str, int], total: int,
                 limit: int = 5) -> str:
    ranked = sorted(((cycles, klass) for klass, cycles in classes.items()
                     if cycles > 0), key=lambda cv: (-cv[0], cv[1]))
    return " | ".join(f"{klass} {100 * cycles / total:.1f}%"
                      for cycles, klass in ranked[:limit]) or "-"


def format_analysis(doc: dict) -> str:
    """Render one analysis document as a compact human block."""
    wall = doc["wall_cycles"] or 1
    head = (f"{doc['workload']} on {doc['system']}:{doc['config']} "
            f"({doc['timing']}, source={doc['source']}): "
            f"{doc['wall_cycles']:,} cycles, {doc['events']:,} events")
    lines = [head,
             f"  by class: {_top_classes(doc['classes'], wall * max(1, len(doc['sequencers'])))}"]
    cp = doc.get("critical_path")
    if cp:
        lines.append(
            f"  critical path: {cp['events']} events, "
            f"{100 * cp['fraction_of_wall']:.1f}% of wall -- "
            f"{_top_classes(cp['by_class'], max(cp['cycles'], 1))}")
    for seq_id, row in doc["sequencers"].items():
        lines.append(
            f"  seq {seq_id} ({row['role']}): "
            f"util {100 * row['utilization']:.1f}%  "
            f"{_top_classes(row['classes'], wall, limit=3)}")
    return "\n".join(lines)
