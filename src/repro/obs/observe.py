"""Observed simulation runs: per-run metrics across every layer.

An :class:`ObservedRun` is the bridge between one simulation and the
metrics registry.  When a run is observed (``Session.observe(...)`` or
``machine.enable_observation(obs)``):

* the machine's timing-model hot path (``TimingModel.charge`` /
  ``signal_cycles``) is wrapped in a counting closure, attributing ops
  and charged cycles to the timing layer;
* fine-grained :class:`~repro.sim.trace.TraceLog` recording turns on,
  so the run can be exported as a Perfetto timeline
  (:mod:`repro.obs.perfetto`);
* the ShredLib runtime log gets a simulation clock (timestamped
  contention records) and a registry-backed contention family;
* at :meth:`finish`, every layer's counters -- engine, trace, memory
  hierarchy (aggregate and per cache), TLBs, timing, shredlib -- are
  published into the registry as families labeled with the run's
  correlation id.

When observation is *not* enabled none of this exists: no wrapper on
the charge path, no fine records, no registry writes -- the default
run is bit-for-bit and allocation-for-allocation the un-instrumented
one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import MetricsRegistry, get_registry, new_run_id
from repro.timing.base import StallAccount

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.shredlib.runtime import ShredRuntime

__all__ = ["ObservedRun"]


class ObservedRun:
    """Instrumentation state and end-of-run metrics pump for one run.

    ``registry`` defaults to the process-wide registry; ``run_id`` is
    the correlation id labeling every family this run publishes (pass
    a fixed one to correlate with a report emitter, or for
    deterministic test output).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 run_id: Optional[str] = None) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.run_id = run_id or new_run_id()
        self.machine: Optional["Machine"] = None
        #: counted by the charge-path wrappers (plain ints on purpose:
        #: the hot path must not take locks or allocate)
        self.ops = 0
        self.charged_cycles = 0
        self.signal_charges = 0
        self.signal_cycles = 0
        #: stall-taxonomy account the timing model notes into
        #: (Machine._bind_timing attaches it via attach_stalls)
        self.stalls = StallAccount()
        self.finished = False

    # ------------------------------------------------------------------
    # Hot-path wrappers (installed by Machine._bind_timing)
    # ------------------------------------------------------------------
    def wrap_charge(self, charge: Callable) -> Callable:
        def charge_counted(seq, op, base, walks=0, access=0, fetch=0):
            cost = charge(seq, op, base, walks, access, fetch)
            self.ops += 1
            self.charged_cycles += cost
            return cost
        return charge_counted

    def wrap_signal(self, signal_cycles: Callable) -> Callable:
        def signal_counted(seq, count=1):
            cost = signal_cycles(seq, count)
            self.signal_charges += count
            self.signal_cycles += cost
            return cost
        return signal_counted

    # ------------------------------------------------------------------
    # Run wiring
    # ------------------------------------------------------------------
    def bind_machine(self, machine: "Machine") -> None:
        self.machine = machine

    def contention_family(self):
        """The registry family ShredLib contention counters unify into."""
        return self.registry.counter(
            "repro_shredlib_contention_total",
            "contended sync-object acquires (ShredLib runtime log)",
            labels=("run", "object"))

    def attach_runtime(self, runtime: "ShredRuntime") -> None:
        """Point the runtime's :class:`~repro.shredlib.log.ShredLog` at
        this run: registry-backed contention counters (labeled with the
        run id) and a simulation clock for timestamped records."""
        if self.machine is not None:
            runtime.log.attach_clock(self.machine.engine)
        runtime.log.attach_metrics(self.contention_family(), run=self.run_id)

    # ------------------------------------------------------------------
    # End-of-run publication
    # ------------------------------------------------------------------
    def finish(self, cycles: Optional[int] = None,
               runtime: Optional["ShredRuntime"] = None,
               workload: str = "", system: str = "",
               config: str = "") -> None:
        """Publish every layer's counters into the registry.

        Publication happens once, after the run, rather than per event:
        the simulator's own counters (TraceLog, Cache, Sequencer.tlb)
        stay plain ints on the hot path, and the registry gets their
        totals under this run's correlation id.
        """
        if self.finished:
            return
        self.finished = True
        machine = self.machine
        if machine is None:
            raise ValueError("ObservedRun was never bound to a machine")
        # flush any deferred hot-path accumulators (timing models may
        # bank stalls in private buffers via StallAccount.add_source)
        self.stalls.settle()
        reg = self.registry
        run = self.run_id

        info = reg.gauge("repro_run_info",
                         "one sample per observed run; value is 1",
                         labels=("run", "workload", "system", "config",
                                 "timing"))
        info.labels(run=run, workload=workload, system=system,
                    config=config,
                    timing=machine.timing.canonical_name()).set(1)
        reg.gauge("repro_run_cycles", "simulated cycles at run end",
                  labels=("run",)).labels(run=run).set(
            cycles if cycles is not None else machine.now)

        engine = reg.counter("repro_engine_events_total",
                             "discrete-event engine activity",
                             labels=("run", "event"))
        engine.labels(run=run, event="executed").set(
            machine.engine.events_executed)
        engine.labels(run=run, event="scheduled").set(
            machine.engine.events_scheduled)

        trace = reg.counter("repro_trace_events_total",
                            "firmware-log event counts (TraceLog)",
                            labels=("run", "kind"))
        for kind, count in machine.trace.summary().items():
            trace.labels(run=run, kind=kind).set(count)

        timing = reg.counter("repro_timing_ops_total",
                             "ops priced by the timing model",
                             labels=("run", "model"))
        model = machine.timing.canonical_name()
        timing.labels(run=run, model=model).set(self.ops)
        charged = reg.counter("repro_timing_cycles_total",
                              "cycles charged by the timing model",
                              labels=("run", "model", "kind"))
        charged.labels(run=run, model=model, kind="op").set(
            self.charged_cycles)
        charged.labels(run=run, model=model, kind="signal").set(
            self.signal_cycles)

        wall = cycles if cycles is not None else machine.now
        stall = reg.counter(
            "repro_stall_cycles_total",
            "cycles by stall/serialization class (the taxonomy of "
            "repro.timing.base.STALL_CLASSES)",
            labels=("run", "seq", "class", "model"))
        for (seq_id, klass), stall_cycles in self.stalls.items():
            stall.labels(**{"run": run, "seq": str(seq_id),
                            "class": klass, "model": model}).set(
                stall_cycles)
        per_seq = self.stalls.per_sequencer()
        for seq in machine.sequencers:
            accounted = sum(per_seq.get(seq.seq_id, {}).values())
            susp = seq.suspended_cycles
            if susp:
                stall.labels(**{"run": run, "seq": str(seq.seq_id),
                                "class": "suspended",
                                "model": model}).set(susp)
            idle = wall - max(seq.busy_cycles, accounted) - susp
            if idle > 0:
                stall.labels(**{"run": run, "seq": str(seq.seq_id),
                                "class": "idle", "model": model}).set(idle)

        hier = reg.counter("repro_hierarchy_events_total",
                           "memory-hierarchy events by level",
                           labels=("run", "level", "event"))
        for key, count in machine.hierarchy.counters().items():
            level, _, event = key.partition("_")
            hier.labels(run=run, level=level,
                        event=event or "accesses").set(count)
        cache = reg.counter("repro_cache_events_total",
                            "per-cache hit/miss/invalidation/eviction",
                            labels=("run", "cache", "event"))
        for name, counts in machine.hierarchy.cache_counters().items():
            for event, count in counts.items():
                cache.labels(run=run, cache=name, event=event).set(count)

        tlb = reg.counter("repro_tlb_events_total",
                          "TLB activity summed over sequencers",
                          labels=("run", "event"))
        seqs = machine.sequencers
        tlb.labels(run=run, event="hits").set(
            sum(s.tlb.hits for s in seqs))
        tlb.labels(run=run, event="misses").set(
            sum(s.tlb.misses for s in seqs))
        tlb.labels(run=run, event="flushes").set(
            sum(s.tlb.flushes for s in seqs))

        if runtime is not None:
            shred = reg.counter("repro_shred_events_total",
                                "ShredLib runtime lifecycle events",
                                labels=("run", "event"))
            for event, count in runtime.log.summary().items():
                shred.labels(run=run, event=event).set(count)
            # contention counters stream into the registry live once
            # attach_runtime ran; publish totals here too in case the
            # runtime was never attached (machine-only observation)
            contention = self.contention_family()
            for name, count in runtime.log.contention_by_object().items():
                contention.labels(run=run, object=name).set(count)

    def snapshot(self) -> dict:
        """This run's families only, from the registry snapshot.

        A sample belongs to the run when any of its label values is the
        run's correlation id -- which matches both ``run=<id>`` labels
        and component instances named after the id (a store or service
        created with ``instance=<id>``).
        """
        out = {}
        for name, family in self.registry.snapshot().items():
            samples = [s for s in family["samples"]
                       if self.run_id in s["labels"].values()]
            if samples:
                out[name] = {**family, "samples": samples}
        return out
