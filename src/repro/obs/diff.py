"""Run-diff regression attribution.

Given two bottleneck-analysis snapshots (single documents from
:func:`repro.obs.critpath.analyze_result`, or the multi-run files
``repro.analysis.report --analyze`` writes), :func:`diff_analyses`
attributes the cycle delta to the runs (phases of the grid), the
stall/serialization classes of the taxonomy, and the sequencers that
moved -- answering "the run got 18% slower; *where*?" with "memory
stalls on the OMS of dense_mvm/misp:1x8" instead of a number.

Ranking is by absolute delta with the derived ``idle`` class excluded
(idle is the complement of everything else, so it anti-correlates with
every real regression and would always rank near the top).  All
ordering uses ``(-abs(delta), name)`` keys, so the output is
deterministic for a given pair of inputs.
"""

from __future__ import annotations

__all__ = ["diff_analyses", "format_diff"]

#: schema tag stamped into every diff document
DIFF_SCHEMA = "repro.diff/1"

#: classes excluded from regression ranking: occupancy complements
#: (idle is the remainder of wall time; suspended mirrors the serviced
#: sequencer's own service-class cycles from the waiting side) --
#: both anti-correlate with real regressions and would drown them
_DERIVED = ("idle", "suspended")


def _runs_of(doc: dict) -> dict[str, dict]:
    """Normalize an input to ``{run key: analysis doc}``.

    Accepts a multi-run ``--analyze`` file (``{"runs": {...}}``) or a
    single analysis document.
    """
    if "runs" in doc and isinstance(doc["runs"], dict):
        return doc["runs"]
    system = doc.get("system", "")
    if system and doc.get("config"):
        system = f"{system}:{doc['config']}"
    key = "/".join(p for p in (doc.get("workload", ""), system) if p)
    return {key or "run": doc}


def _classes_of(doc: dict) -> dict[str, int]:
    return doc.get("classes") or {}


def _seq_busy(doc: dict) -> dict[str, int]:
    return {sid: row.get("busy_cycles", 0)
            for sid, row in (doc.get("sequencers") or {}).items()}


def _ranked(deltas: dict[str, tuple[int, int]],
            skip_derived: bool = True) -> list[dict]:
    rows = []
    for name, (va, vb) in deltas.items():
        if skip_derived and name in _DERIVED:
            continue
        if va == 0 and vb == 0:
            continue
        rows.append({"name": name, "a": va, "b": vb, "delta": vb - va})
    rows.sort(key=lambda r: (-abs(r["delta"]), r["name"]))
    return rows


def _merge(a: dict[str, int], b: dict[str, int]) -> dict[str, tuple[int, int]]:
    return {k: (a.get(k, 0), b.get(k, 0)) for k in set(a) | set(b)}


def diff_analyses(a: dict, b: dict, label_a: str = "A",
                  label_b: str = "B") -> dict:
    """Attribute the cycle delta between two analysis snapshots.

    Returns a ``repro.diff/1`` document: totals, per-run deltas ranked
    by magnitude, and -- within each run and overall -- the
    stall-class and sequencer deltas that explain the movement.
    """
    runs_a, runs_b = _runs_of(a), _runs_of(b)
    shared = sorted(set(runs_a) & set(runs_b))
    total_a = sum(runs_a[k].get("wall_cycles", 0) for k in shared)
    total_b = sum(runs_b[k].get("wall_cycles", 0) for k in shared)

    class_tot: dict[str, tuple[int, int]] = {}
    run_rows = []
    for key in shared:
        da, db = runs_a[key], runs_b[key]
        wa = da.get("wall_cycles", 0)
        wb = db.get("wall_cycles", 0)
        classes = _merge(_classes_of(da), _classes_of(db))
        for name, (va, vb) in classes.items():
            pa, pb = class_tot.get(name, (0, 0))
            class_tot[name] = (pa + va, pb + vb)
        row = {
            "run": key,
            "a": wa,
            "b": wb,
            "delta": wb - wa,
            "ratio": round(wb / wa, 4) if wa else None,
            "classes": _ranked(classes)[:8],
            "sequencers": _ranked(_merge(_seq_busy(da), _seq_busy(db)),
                                  skip_derived=False)[:8],
        }
        run_rows.append(row)
    run_rows.sort(key=lambda r: (-abs(r["delta"]), r["run"]))

    by_class = _ranked(class_tot)
    return {
        "schema": DIFF_SCHEMA,
        "a": {"label": label_a, "total_cycles": total_a},
        "b": {"label": label_b, "total_cycles": total_b},
        "delta_cycles": total_b - total_a,
        "ratio": round(total_b / total_a, 4) if total_a else None,
        "runs": run_rows,
        "by_class": by_class,
        "top_contributor": ({"class": by_class[0]["name"],
                             "delta": by_class[0]["delta"]}
                            if by_class else None),
        "only_a": sorted(set(runs_a) - set(runs_b)),
        "only_b": sorted(set(runs_b) - set(runs_a)),
    }


def _signed(v: int) -> str:
    return f"{v:+,}"


def format_diff(doc: dict) -> str:
    """Render a diff document as a compact human report."""
    a, b = doc["a"], doc["b"]
    lines = [
        f"diff {a['label']} -> {b['label']}: "
        f"{a['total_cycles']:,} -> {b['total_cycles']:,} cycles "
        f"({_signed(doc['delta_cycles'])}"
        + (f", x{doc['ratio']}" if doc["ratio"] is not None else "")
        + ")"
    ]
    top = doc.get("top_contributor")
    if top is not None:
        lines.append(f"  top regressing class: {top['class']} "
                     f"({_signed(top['delta'])} cycles)")
    for row in doc["by_class"][:6]:
        lines.append(f"    {row['name']:<18} {row['a']:>14,} -> "
                     f"{row['b']:>14,}  ({_signed(row['delta'])})")
    for row in doc["runs"][:8]:
        if row["delta"] == 0:
            continue
        cls = row["classes"][0]["name"] if row["classes"] else "-"
        lines.append(f"  {row['run']}: {_signed(row['delta'])} cycles"
                     + (f" (x{row['ratio']})" if row["ratio"] else "")
                     + f", mostly {cls}")
    for key in doc.get("only_a", []):
        lines.append(f"  only in {a['label']}: {key}")
    for key in doc.get("only_b", []):
        lines.append(f"  only in {b['label']}: {key}")
    return "\n".join(lines)
