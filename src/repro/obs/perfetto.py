"""Perfetto / Chrome-trace-event timeline export for observed runs.

Converts the fine-grained :class:`~repro.sim.trace.TraceLog` records
and the ShredLib contention log of one run into the Chrome trace-event
JSON format (the ``traceEvents`` array), which https://ui.perfetto.dev
and ``chrome://tracing`` both open directly.

Mapping:

* every sequencer is one track (``pid`` 0 = the machine, ``tid`` =
  ``seq_id``), named from its role and owning processor (``P0 OMS``,
  ``P0 AMS1``, ...) via ``M``/``thread_name`` metadata events;
* fine trace records with duration become ``X`` (complete) events,
  zero-duration records become ``i`` (instant) events -- ring
  transitions, proxy choreography, context switches, signals;
* ShredLib sync contention becomes instant events on ``pid`` 1
  ("shredlib"), one track per sync-object name;
* when the run also *captured* its event graph
  (``Session.capture()``), the export is enriched from it: per-
  sequencer utilization and outstanding-event **counter tracks**
  (``C`` events, from :func:`repro.obs.critpath.busy_timeline`) and a
  **critical path** track (``pid`` 2) whose ``X`` slices -- named by
  their dominant stall class -- are chained with ``s``/``f`` flow
  events, so Perfetto draws the one chain of work that bounds the
  run's wall time.

Timestamps are simulation **cycles emitted as microseconds** -- the
timeline is exact and deterministic (1 cycle = 1 us on screen), which
is also what makes golden-file testing possible.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import Machine
    from repro.shredlib.log import ShredLog
    from repro.sim.captrace import CapturedTrace
    from repro.workloads.runner import RunResult

__all__ = ["trace_events", "export_run", "write_trace"]

#: pid of the machine (sequencer) tracks and the runtime tracks
_MACHINE_PID = 0
_SHREDLIB_PID = 1
_CRITPATH_PID = 2

#: buckets for the utilization/outstanding counter tracks
_COUNTER_BUCKETS = 64


def _sequencer_names(machine: "Machine") -> dict[int, str]:
    """seq_id -> human track name, grouped by owning processor."""
    names: dict[int, str] = {}
    for proc in machine.processors:
        names[proc.oms.seq_id] = f"P{proc.proc_id} OMS"
        for i, ams in enumerate(proc.amss, start=1):
            names[ams.seq_id] = f"P{proc.proc_id} AMS{i}"
    # sequencers not owned by a processor (defensive; should not happen)
    for seq in machine.sequencers:
        names.setdefault(seq.seq_id, f"SEQ{seq.seq_id}")
    return names


def _capture_events(trace: "CapturedTrace",
                    names: dict[int, str]) -> list[dict]:
    """Counter tracks + critical-path track from a captured run."""
    from repro.obs.critpath import (analyze_trace, busy_timeline,
                                    event_times)
    events: list[dict] = []
    times = event_times(trace)
    timeline = busy_timeline(trace, times, buckets=_COUNTER_BUCKETS)
    width = timeline["bucket_cycles"]
    for seq_id in sorted(timeline["per_seq"]):
        label = names.get(seq_id, f"SEQ{seq_id}")
        counter = f"utilization {label}"
        for b, busy in enumerate(timeline["per_seq"][seq_id]):
            events.append({"name": counter, "ph": "C",
                           "pid": _MACHINE_PID, "tid": 0, "ts": b * width,
                           "args": {"busy_permille":
                                    busy * 1000 // width}})
    for b, level in enumerate(timeline["outstanding"]):
        events.append({"name": "outstanding events", "ph": "C",
                       "pid": _MACHINE_PID, "tid": 0, "ts": b * width,
                       "args": {"count": level}})

    analysis = analyze_trace(trace)
    segments = analysis["critical_path"]["segments"]
    if not segments:
        return events
    events.append({"name": "process_name", "ph": "M",
                   "pid": _CRITPATH_PID, "tid": 0,
                   "args": {"name": "critical path"}})
    events.append({"name": "thread_name", "ph": "M",
                   "pid": _CRITPATH_PID, "tid": 0,
                   "args": {"name": "critical path"}})
    for k, seg in enumerate(segments):
        owner = seg["seq"]
        events.append({"name": seg["class"], "cat": "critpath",
                       "ph": "X", "pid": _CRITPATH_PID, "tid": 0,
                       "ts": seg["start"], "dur": seg["cycles"],
                       "args": {"seqno": seg["seqno"],
                                "seq": names.get(owner,
                                                 f"SEQ{owner}")
                                if owner >= 0 else "machine"}})
        if k + 1 < len(segments):
            flow = {"cat": "critpath", "name": "crit", "id": k,
                    "pid": _CRITPATH_PID, "tid": 0}
            events.append({**flow, "ph": "s", "ts": seg["end"]})
            events.append({**flow, "ph": "f", "bp": "e",
                           "ts": segments[k + 1]["start"]})
    return events


def trace_events(machine: "Machine",
                 shred_log: Optional["ShredLog"] = None,
                 run_id: str = "",
                 trace: Optional["CapturedTrace"] = None) -> list[dict]:
    """Build the Chrome ``traceEvents`` list for one finished run.

    Requires fine-grained trace records (``Session.observe(...)`` or
    ``record_fine_trace=True``); with none recorded the result is just
    the metadata tracks.  Passing the run's captured event graph as
    ``trace`` adds the counter tracks and the critical-path track.
    """
    events: list[dict] = []
    names = _sequencer_names(machine)

    events.append({"name": "process_name", "ph": "M", "pid": _MACHINE_PID,
                   "tid": 0, "args": {"name": "machine"}})
    for seq_id in sorted(names):
        events.append({"name": "thread_name", "ph": "M",
                       "pid": _MACHINE_PID, "tid": seq_id,
                       "args": {"name": names[seq_id]}})

    for rec in machine.trace.records():
        name = rec.kind.value
        if rec.detail:
            name = f"{name}:{rec.detail}"
        ev = {"name": name, "cat": rec.kind.value, "pid": _MACHINE_PID,
              "tid": rec.sequencer, "ts": rec.start}
        if rec.duration > 0:
            ev["ph"] = "X"
            ev["dur"] = rec.duration
        else:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        events.append(ev)

    contention = (shred_log.contention_events()
                  if shred_log is not None else [])
    if contention:
        events.append({"name": "process_name", "ph": "M",
                       "pid": _SHREDLIB_PID, "tid": 0,
                       "args": {"name": "shredlib"}})
        tids: dict[str, int] = {}
        for cycle, obj in contention:
            tid = tids.get(obj)
            if tid is None:
                tid = len(tids)
                tids[obj] = tid
                events.append({"name": "thread_name", "ph": "M",
                               "pid": _SHREDLIB_PID, "tid": tid,
                               "args": {"name": f"contention {obj}"}})
            events.append({"name": f"contention:{obj}", "cat": "contention",
                           "ph": "i", "s": "t", "pid": _SHREDLIB_PID,
                           "tid": tid, "ts": cycle})

    if trace is not None:
        events.extend(_capture_events(trace, names))
    return events


def export_run(result: "RunResult", path: Optional[str] = None,
               run_id: Optional[str] = None) -> dict:
    """Convert a finished run into a Chrome-trace document.

    Returns the document (``{"traceEvents": [...], ...}``); when
    ``path`` is given it is also written there as JSON.  ``run_id``
    overrides the correlation id stamped into the document metadata
    (default: the run's ``obs.run_id`` when observed).
    """
    if run_id is None and result.obs is not None:
        run_id = result.obs.run_id
    doc = {
        "traceEvents": trace_events(result.machine, result.runtime.log,
                                    run_id=run_id or "",
                                    trace=result.trace),
        "displayTimeUnit": "ms",
        "otherData": {
            "run": run_id or "",
            "workload": result.workload,
            "system": result.system,
            "config": result.config,
            "cycles": result.cycles,
            "clock": "1 simulated cycle = 1 us",
        },
    }
    if path is not None:
        write_trace(doc, path)
    return doc


def write_trace(doc: dict, path: str) -> None:
    """Write a trace document as deterministic, stable-order JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
