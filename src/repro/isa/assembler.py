"""Two-pass assembler for the mini-ISA.

Source format: one instruction per line; ``;`` or ``#`` start
comments; ``label:`` defines a jump target.  Register operands are
``r0``..``r7`` (``sp`` aliases ``r7``); immediates are decimal or hex;
SYS takes a quoted or bare service name.

Example::

    boot:
        li   r0, 0          ; accumulator
        li   r1, 10
    loop:
        addi r0, r0, 3
        addi r1, r1, -1
        bne  r1, r2, loop   ; r2 is zero at reset
        sys  write
        halt
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.isa.instructions import NUM_REGS, SP, Instruction, Opcode

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _strip(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_reg(token: str, lineno: int) -> int:
    token = token.lower()
    if token == "sp":
        return SP
    if token.startswith("r") and token[1:].isdigit():
        reg = int(token[1:])
        if 0 <= reg < NUM_REGS:
            return reg
    raise AssemblerError(f"line {lineno}: bad register '{token}'")


def _parse_imm(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad immediate '{token}'") from None


def assemble(source: str) -> list[Instruction]:
    """Assemble source text into a program (list of instructions)."""
    labels: dict[str, int] = {}
    parsed: list[tuple[int, str, list[str]]] = []

    # pass 1: tokenize, collect labels
    index = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblerError(f"line {lineno}: bad label '{label}'")
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label '{label}'")
            labels[label] = index
            line = rest.strip()
        if not line:
            continue
        mnemonic, _, operands = line.partition(" ")
        tokens = [t.strip() for t in operands.split(",") if t.strip()] \
            if operands.strip() else []
        parsed.append((lineno, mnemonic.lower(), tokens))
        index += 1

    # pass 2: encode
    program: list[Instruction] = []
    for lineno, mnemonic, tokens in parsed:
        try:
            opcode = Opcode(mnemonic)
        except ValueError:
            raise AssemblerError(
                f"line {lineno}: unknown instruction '{mnemonic}'") from None
        program.append(_encode(opcode, tokens, labels, lineno))
    return program


def _resolve(label: str, labels: dict[str, int], lineno: int) -> int:
    if label not in labels:
        raise AssemblerError(f"line {lineno}: undefined label '{label}'")
    return labels[label]


def _expect(tokens: list[str], n: int, opcode: Opcode, lineno: int) -> None:
    if len(tokens) != n:
        raise AssemblerError(
            f"line {lineno}: {opcode.value} expects {n} operands, "
            f"got {len(tokens)}")


def _encode(opcode: Opcode, tokens: list[str],
            labels: dict[str, int], lineno: int) -> Instruction:
    reg = lambda i: _parse_reg(tokens[i], lineno)
    imm = lambda i: _parse_imm(tokens[i], lineno)
    lab = lambda i: _resolve(tokens[i], labels, lineno)

    if opcode is Opcode.LI:
        _expect(tokens, 2, opcode, lineno)
        return Instruction(opcode, rd=reg(0), imm=imm(1))
    if opcode is Opcode.MOV:
        _expect(tokens, 2, opcode, lineno)
        return Instruction(opcode, rd=reg(0), rs=reg(1))
    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
        _expect(tokens, 3, opcode, lineno)
        return Instruction(opcode, rd=reg(0), rs=reg(1), rt=reg(2))
    if opcode is Opcode.ADDI:
        _expect(tokens, 3, opcode, lineno)
        return Instruction(opcode, rd=reg(0), rs=reg(1), imm=imm(2))
    if opcode is Opcode.LD:
        _expect(tokens, 3, opcode, lineno)
        return Instruction(opcode, rd=reg(0), rs=reg(1), imm=imm(2))
    if opcode is Opcode.ST:
        _expect(tokens, 3, opcode, lineno)
        return Instruction(opcode, rs=reg(0), rd=reg(1), imm=imm(2))
    if opcode is Opcode.PUSH:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, rs=reg(0))
    if opcode is Opcode.POP:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, rd=reg(0))
    if opcode is Opcode.JMP:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, target=lab(0))
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT):
        _expect(tokens, 3, opcode, lineno)
        return Instruction(opcode, rs=reg(0), rt=reg(1), target=lab(2))
    if opcode is Opcode.CALL:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, target=lab(0))
    if opcode in (Opcode.RET, Opcode.NOP, Opcode.HALT, Opcode.YRET):
        _expect(tokens, 0, opcode, lineno)
        return Instruction(opcode)
    if opcode is Opcode.SYS:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, service=tokens[0].strip("'\""))
    if opcode is Opcode.SPIN:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, imm=imm(0))
    if opcode is Opcode.SIGNAL:
        _expect(tokens, 3, opcode, lineno)
        return Instruction(opcode, rs=reg(0), target=lab(1), rt=reg(2))
    if opcode is Opcode.YMONITOR:
        _expect(tokens, 1, opcode, lineno)
        return Instruction(opcode, target=lab(0))
    raise AssemblerError(f"line {lineno}: unhandled opcode {opcode}")
