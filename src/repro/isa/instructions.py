"""The mini-ISA instruction set.

A small RISC-style, 32-bit ISA used to demonstrate MISP's ISA
extension concretely.  The base set covers Ring-3 computation (the
subset an AMS must support, Section 2.2); the MISP extension adds:

* ``SIGNAL rs, label, rt`` -- the Section 2.4 instruction: deliver the
  shred continuation ⟨EIP=label, ESP=rt⟩ to the sequencer whose SID is
  in ``rs``;
* ``YMONITOR label`` -- register a YIELD-CONDITIONAL handler for
  ingress user signals (trigger-response mapping);
* ``YRET`` -- return from an asynchronous handler to the interrupted
  instruction.

Privileged operations do not exist in this ISA at all -- system
services are requested with ``SYS`` which *traps*, exactly the AMS
situation that forces proxy execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: number of general-purpose registers (r0..r7); r7 doubles as the
#: stack pointer for PUSH/POP/CALL/RET and is aliased ``sp``
NUM_REGS = 8
SP = 7


class Opcode(enum.Enum):
    # data movement and arithmetic
    LI = "li"          # li rd, imm
    MOV = "mov"        # mov rd, rs
    ADD = "add"        # add rd, rs, rt
    SUB = "sub"        # sub rd, rs, rt
    MUL = "mul"        # mul rd, rs, rt
    ADDI = "addi"      # addi rd, rs, imm
    # memory
    LD = "ld"          # ld rd, rs, off     (rd <- mem[rs+off])
    ST = "st"          # st rs, rd, off     (mem[rd+off] <- rs)
    PUSH = "push"      # push rs
    POP = "pop"        # pop rd
    # control flow
    JMP = "jmp"        # jmp label
    BEQ = "beq"        # beq rs, rt, label
    BNE = "bne"        # bne rs, rt, label
    BLT = "blt"        # blt rs, rt, label
    CALL = "call"      # call label
    RET = "ret"        # ret
    # system
    NOP = "nop"
    HALT = "halt"
    SYS = "sys"        # sys "name"         (trap to the OS)
    SPIN = "spin"      # spin imm           (burn imm cycles)
    # MISP extension
    SIGNAL = "signal"  # signal rs, label, rt
    YMONITOR = "ymonitor"  # ymonitor label
    YRET = "yret"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    #: resolved label target (instruction index)
    target: Optional[int] = None
    #: syscall name for SYS
    service: Optional[str] = None

    def __str__(self) -> str:
        parts = [self.opcode.value]
        for field, prefix in ((self.rd, "r"), (self.rs, "r"), (self.rt, "r")):
            if field is not None:
                parts.append(f"{prefix}{field}")
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        if self.service is not None:
            parts.append(repr(self.service))
        return " ".join(parts)
