"""Mini-ISA interpreter as an :class:`InstructionStream`.

:class:`AsmStream` executes one decoded instruction per fetch, split
into the two-phase protocol the machine expects: ``next_op`` exposes
the instruction's externally visible action (computation, a memory
access at a computed effective address, a trap, a SIGNAL) as a machine
op, and ``complete`` commits the architectural side effects (register
writes, PC update, actual word movement).  Because the commit only
happens after the machine has resolved the access, a faulting load
re-executes after proxy service with no special casing -- precisely
the "re-execute the faulting instruction" semantics of Section 2.5.

Shred continuations are ⟨EIP, ESP⟩ exactly as in the paper: the
SIGNAL instruction builds a *new* ``AsmStream`` over the same program
image with PC = EIP and r7/sp = ESP.

Ingress signals to a busy sequencer go through the YIELD-CONDITIONAL
mechanism: if the stream registered a handler with ``YMONITOR``, the
handler runs as an asynchronous function call (sender SID in r6) and
``YRET`` resumes the interrupted instruction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.errors import InvalidInstructionError, SimulationError
from repro.exec.ops import (
    Compute, MachineOp, MemAccess, SignalShred, SyscallOp,
)
from repro.exec.stream import InstructionStream
from repro.isa.instructions import NUM_REGS, SP, Instruction, Opcode
from repro.kernel.process import Process
from repro.mem.pagetable import vpn_of
from repro.params import PAGE_SIZE, MachineParams
from repro.timing.fixed import ISA_MEM_EXTRA, ISA_MUL_EXTRA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.hierarchy import MemoryHierarchy

#: register that receives the sender SID in a yield handler
YIELD_SID_REG = 6

_MASK = 0xFFFFFFFF


def _wrap(value: int) -> int:
    return value & _MASK


class AsmStream(InstructionStream):
    """One hardware thread context running mini-ISA code."""

    def __init__(self, program: list[Instruction], process: Process,
                 params: MachineParams, entry: int = 0,
                 stack_top: Optional[int] = None, label: str = "asm") -> None:
        self.program = program
        self.process = process
        self.params = params
        # params is frozen; hoist the per-instruction base cost out of
        # the _issue hot loop
        self._base_cost = params.isa_instruction_cost
        self.label = label
        self.regs = [0] * NUM_REGS
        if stack_top is not None:
            self.regs[SP] = stack_top
        self.pc = entry
        self.instructions_retired = 0
        self._halted = False
        self._pending: Optional[MachineOp] = None
        self._pending_instr: Optional[Instruction] = None
        #: synthetic code-segment base, assigned by the hierarchy on
        #: the first fetch (continuations over the same program image
        #: share one segment)
        self._code_base: Optional[int] = None
        # YIELD-CONDITIONAL state
        self._yield_handler: Optional[int] = None
        self._yield_pending: Optional[int] = None   # sender SID
        self._yield_return: Optional[int] = None    # interrupted PC

    # ------------------------------------------------------------------
    # InstructionStream protocol
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._halted

    def next_op(self) -> Optional[MachineOp]:
        if self._halted:
            return None
        if self._pending is not None:
            return self._pending           # fault retry
        self._take_yield_if_pending()
        if not 0 <= self.pc < len(self.program):
            raise InvalidInstructionError(
                f"{self.label}: PC {self.pc} outside program "
                f"(len {len(self.program)})")
        instr = self.program[self.pc]
        op = self._issue(instr)
        if op is None:                      # HALT
            self._halted = True
            return None
        self._pending = op
        self._pending_instr = instr
        return op

    def fetch_addr(self, hierarchy: "MemoryHierarchy") -> Optional[int]:
        """Fetch address of the issuing instruction (cache-modelled)."""
        if self._code_base is None:
            self._code_base = hierarchy.code_segment(id(self.program),
                                                     len(self.program))
        return self._code_base + 4 * self.pc

    def complete(self, value: Any = None) -> None:
        if self._pending is None:
            raise SimulationError(f"{self.label}: complete() with no pending op")
        instr = self._pending_instr
        self._pending = None
        self._pending_instr = None
        self._commit(instr)
        self.instructions_retired += 1

    # ------------------------------------------------------------------
    # YIELD-CONDITIONAL (Section 2.4)
    # ------------------------------------------------------------------
    def deliver_signal(self, sender_sid: int, op: SignalShred) -> bool:
        """Ingress signal while running; True if a handler will take it."""
        if self._yield_handler is None:
            return False
        self._yield_pending = sender_sid
        return True

    def _take_yield_if_pending(self) -> None:
        if self._yield_pending is None or self._yield_handler is None:
            return
        if self._yield_return is not None:
            return                          # already inside the handler
        self._yield_return = self.pc        # save the next EIP
        self.regs[YIELD_SID_REG] = self._yield_pending
        self._yield_pending = None
        self.pc = self._yield_handler       # fly-weight control transfer

    # ------------------------------------------------------------------
    # Issue: expose the instruction's action as a machine op
    # ------------------------------------------------------------------
    def _issue(self, instr: Instruction) -> Optional[MachineOp]:
        base = self._base_cost
        mem_cost = base + ISA_MEM_EXTRA
        opcode = instr.opcode
        if opcode is Opcode.HALT:
            return None
        if opcode is Opcode.LD:
            return MemAccess(_wrap(self.regs[instr.rs] + instr.imm),
                             write=False, cycles=mem_cost,
                             reads=(instr.rs,), writes=(instr.rd,))
        if opcode is Opcode.ST:
            return MemAccess(_wrap(self.regs[instr.rd] + instr.imm),
                             write=True, cycles=mem_cost,
                             reads=(instr.rd, instr.rs))
        if opcode is Opcode.PUSH:
            return MemAccess(_wrap(self.regs[SP] - 4), write=True,
                             cycles=mem_cost,
                             reads=(SP, instr.rs), writes=(SP,))
        if opcode is Opcode.POP:
            return MemAccess(self.regs[SP], write=False, cycles=mem_cost,
                             reads=(SP,), writes=(instr.rd, SP))
        if opcode is Opcode.CALL:
            return MemAccess(_wrap(self.regs[SP] - 4), write=True,
                             cycles=mem_cost, reads=(SP,), writes=(SP,))
        if opcode is Opcode.RET:
            return MemAccess(self.regs[SP], write=False, cycles=mem_cost,
                             reads=(SP,), writes=(SP,))
        if opcode is Opcode.SYS:
            return SyscallOp(instr.service)
        if opcode is Opcode.SPIN:
            return Compute(max(1, instr.imm))
        if opcode is Opcode.SIGNAL:
            continuation = AsmStream(
                self.program, self.process, self.params,
                entry=instr.target, stack_top=self.regs[instr.rt],
                label=f"{self.label}-sid{self.regs[instr.rs]}")
            return SignalShred(self.regs[instr.rs], continuation,
                               label=continuation.label)
        if opcode is Opcode.MUL:
            return Compute(base + ISA_MUL_EXTRA,
                           reads=(instr.rs, instr.rt), writes=(instr.rd,))
        return Compute(base)

    # ------------------------------------------------------------------
    # Commit: apply architectural effects after the op resolved
    # ------------------------------------------------------------------
    def _commit(self, instr: Instruction) -> None:
        opcode = instr.opcode
        regs = self.regs
        next_pc = self.pc + 1
        if opcode is Opcode.LI:
            regs[instr.rd] = _wrap(instr.imm)
        elif opcode is Opcode.MOV:
            regs[instr.rd] = regs[instr.rs]
        elif opcode is Opcode.ADD:
            regs[instr.rd] = _wrap(regs[instr.rs] + regs[instr.rt])
        elif opcode is Opcode.SUB:
            regs[instr.rd] = _wrap(regs[instr.rs] - regs[instr.rt])
        elif opcode is Opcode.MUL:
            regs[instr.rd] = _wrap(regs[instr.rs] * regs[instr.rt])
        elif opcode is Opcode.ADDI:
            regs[instr.rd] = _wrap(regs[instr.rs] + instr.imm)
        elif opcode is Opcode.LD:
            regs[instr.rd] = self._read(_wrap(regs[instr.rs] + instr.imm))
        elif opcode is Opcode.ST:
            self._write(_wrap(regs[instr.rd] + instr.imm), regs[instr.rs])
        elif opcode is Opcode.PUSH:
            regs[SP] = _wrap(regs[SP] - 4)
            self._write(regs[SP], regs[instr.rs])
        elif opcode is Opcode.POP:
            regs[instr.rd] = self._read(regs[SP])
            regs[SP] = _wrap(regs[SP] + 4)
        elif opcode is Opcode.JMP:
            next_pc = instr.target
        elif opcode is Opcode.BEQ:
            if regs[instr.rs] == regs[instr.rt]:
                next_pc = instr.target
        elif opcode is Opcode.BNE:
            if regs[instr.rs] != regs[instr.rt]:
                next_pc = instr.target
        elif opcode is Opcode.BLT:
            if regs[instr.rs] < regs[instr.rt]:
                next_pc = instr.target
        elif opcode is Opcode.CALL:
            regs[SP] = _wrap(regs[SP] - 4)
            self._write(regs[SP], self.pc + 1)
            next_pc = instr.target
        elif opcode is Opcode.RET:
            next_pc = self._read(regs[SP])
            regs[SP] = _wrap(regs[SP] + 4)
        elif opcode is Opcode.YMONITOR:
            self._yield_handler = instr.target
        elif opcode is Opcode.YRET:
            if self._yield_return is None:
                raise InvalidInstructionError(
                    f"{self.label}: YRET outside a yield handler")
            next_pc = self._yield_return
            self._yield_return = None
        elif opcode in (Opcode.NOP, Opcode.SYS, Opcode.SPIN,
                        Opcode.SIGNAL):
            pass
        else:  # pragma: no cover - defensive
            raise InvalidInstructionError(f"unhandled opcode {opcode}")
        self.pc = next_pc

    # ------------------------------------------------------------------
    # Word access (only reached once the page is resident)
    # ------------------------------------------------------------------
    def _translate(self, vaddr: int, action: str) -> int:
        """Commit-phase translation through the owning sequencer's TLB.

        The issue phase already counted the TLB lookup and charged the
        cache hierarchy for this access, so the commit phase peeks
        (no statistics) and falls back to the page table -- e.g. when
        the shred team was frozen and thawed mid-access, which flushes
        the TLB.
        """
        seq = self.sequencer
        if seq is not None:
            frame = seq.tlb.peek(vpn_of(vaddr))
            if frame is not None:
                return frame * PAGE_SIZE + vaddr % PAGE_SIZE
        paddr = self.process.address_space.translate(vaddr)
        if paddr is None:
            raise SimulationError(
                f"{self.label}: commit-time {action} of non-resident "
                f"{vaddr:#x}")
        return paddr

    def _read(self, vaddr: int) -> int:
        paddr = self._translate(vaddr, "read")
        return self.process.address_space.physical.read_word(paddr)

    def _write(self, vaddr: int, value: int) -> None:
        paddr = self._translate(vaddr, "write")
        self.process.address_space.physical.write_word(paddr, value)
