"""Mini-ISA substrate: instructions, assembler, interpreter."""

from repro.isa.assembler import assemble
from repro.isa.instructions import NUM_REGS, SP, Instruction, Opcode
from repro.isa.interpreter import YIELD_SID_REG, AsmStream

__all__ = ["assemble", "NUM_REGS", "SP", "Instruction", "Opcode",
           "YIELD_SID_REG", "AsmStream"]
