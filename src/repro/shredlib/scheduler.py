"""The gang scheduler of Figure 3.

"The work queue is a mutex-protected shared memory data structure, and
holds the shred continuations that are ready to execute. ... Inside
each gang scheduler, the Run_shred routine interrogates the mutex to
the work queue, attempts to grab an available shred and, if available,
performs a light-weight context switch to execute the shred."

One :func:`gang_scheduler` generator runs on every participating
sequencer -- the OMS calls it as a function, the AMSs receive it via
``SIGNAL`` (on MISP) or run it as the body of a worker OS thread (on
the SMP baseline).  All of them contend for the shared queue in
:class:`~repro.shredlib.runtime.ShredRuntime`, giving the M:N shred
scheduling of Section 3.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.ops import AtomicOp, Compute, Op
from repro.shredlib.log import ShredEvent
from repro.shredlib.runtime import ShredRuntime


def gang_scheduler(rt: ShredRuntime, worker_id: int) -> Iterator[Op]:
    """Drain the shared work queue until shutdown (Figure 3 loop).

    The loop: grab the queue mutex (one atomic RMW), pop a shred
    continuation (queue manipulation cost), light-weight context
    switch into the shred, run it until it blocks / yields / finishes,
    switch back, repeat.  An empty queue is polled with a backoff
    compute; the loop exits once the runtime signals shutdown and the
    queue has drained ("Exit?" in Figure 3).
    """
    params = rt.params
    while True:
        yield AtomicOp(vaddr=rt.lock_vaddr)    # lock the work queue
        shred = rt.pop(worker_id)
        if shred is None:
            if rt.all_work_done:
                return
            rt.log.note(ShredEvent.QUEUE_EMPTY_POLL)
            yield Compute(params.idle_poll_cost)   # PAUSE-loop backoff
            continue
        # dequeue + unlock + light-weight switch into the shred
        yield Compute(params.queue_op_cost + params.shred_switch_cost)
        yield from rt.run_shred(shred, worker_id)
        yield Compute(params.shred_switch_cost)   # switch back


def drain_once(rt: ShredRuntime, worker_id: int) -> Iterator[Op]:
    """Run ready shreds until the queue is empty once (no shutdown wait).

    A building block for custom schedulers: unlike
    :func:`gang_scheduler` it returns as soon as the queue drains,
    which is useful for bounded helping (e.g. a shred that donates its
    sequencer while waiting).
    """
    params = rt.params
    while True:
        yield AtomicOp(vaddr=rt.lock_vaddr)
        shred = rt.pop(worker_id)
        if shred is None:
            return
        yield Compute(params.queue_op_cost + params.shred_switch_cost)
        yield from rt.run_shred(shred, worker_id)
        yield Compute(params.shred_switch_cost)
