"""The ShredLib runtime core: shared work queue and the shred pump.

ShredLib (Section 4.2) is the user-level runtime that implements the
shared-memory multi-shredded programming model on top of the raw MISP
ISA.  Its heart is the M:N gang scheduler of Figure 3: a
mutex-protected shared work queue of shred continuations, drained
concurrently by scheduler loops running on every sequencer.

:class:`ShredRuntime` is the process-wide shared state (it lives in
the application's address space; all sequencers see it because MISP
preserves one virtual address space).  The *costs* of operating on it
-- atomic operations, queue manipulation, user-level context switches
-- are charged through the machine ops the scheduler generators yield.

The pump :meth:`ShredRuntime.run_shred` is the direct-execution
analogue of ShredLib's light-weight context switch: it forwards a
shred's machine ops to the sequencer and intercepts the scheduler
sentinels (:class:`~repro.exec.ops.Block`,
:class:`~repro.exec.ops.YieldShred`, :class:`~repro.exec.ops.ExitShred`).
Everything a shred does between two machine ops is atomic in simulated
time, which is what makes the sync primitives in
:mod:`repro.shredlib.sync` race-free without real locks.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Iterator, Optional

from repro.errors import ShredLibError
from repro.exec.ops import Block, ExitShred, MachineOp, Op, YieldShred
from repro.params import MachineParams
from repro.shredlib.log import ShredEvent, ShredLog
from repro.shredlib.shred import Shred, ShredState


class QueuePolicy(enum.Enum):
    """Work-queue ordering policies (Section 4.2: "several different
    shred scheduling algorithms ... can be customized")."""

    FIFO = "fifo"
    LIFO = "lifo"


class ShredRuntime:
    """Process-wide ShredLib state shared by all gang schedulers."""

    def __init__(self, params: MachineParams,
                 policy: QueuePolicy = QueuePolicy.FIFO,
                 name: str = "app") -> None:
        self.params = params
        self.policy = policy
        self.name = name
        self.queue: deque[Shred] = deque()
        #: set when the main shred finishes; idle gang schedulers exit
        self.shutdown = False
        self.log = ShredLog()
        self.main_shred: Optional[Shred] = None
        self._next_id = 0
        # -- shared-memory placement (set by attach_shared) ----------------
        #: base vaddr of the runtime's shared page(s); None means the
        #: runtime is not placed (hand-built machines) and lock ops
        #: degrade to flat-cost atomics
        self.shared_vaddr: Optional[int] = None
        self._shared_lines = 0
        self._next_line = 0
        # -- counters ------------------------------------------------------
        self.created = 0
        self.finished = 0
        self.active = 0

    # ------------------------------------------------------------------
    # Shared-memory placement
    # ------------------------------------------------------------------
    def attach_shared(self, base_vaddr: int, num_bytes: int) -> None:
        """Place the runtime's shared state at ``base_vaddr``.

        Line 0 holds the work-queue lock; :meth:`sync_line` hands the
        remaining cache lines to sync objects, so their atomic RMWs
        are real writes through the cache hierarchy (lock ping-pong is
        then cheap behind a shared L2 and expensive across private
        ones).  Wrap-around beyond the reserved bytes models false
        sharing rather than failing.
        """
        self.shared_vaddr = base_vaddr
        line = self.params.cache_line_size
        self._shared_lines = max(2, num_bytes // line)
        self._next_line = 1

    @property
    def lock_vaddr(self) -> Optional[int]:
        """Address of the work-queue lock word (None if unplaced)."""
        return self.shared_vaddr

    def sync_line(self) -> Optional[int]:
        """Allocate a cache line for one sync object (None if unplaced)."""
        if self.shared_vaddr is None:
            return None
        line = 1 + (self._next_line - 1) % (self._shared_lines - 1)
        self._next_line += 1
        return self.shared_vaddr + line * self.params.cache_line_size

    # ------------------------------------------------------------------
    # Shred lifecycle
    # ------------------------------------------------------------------
    def new_shred(self, gen: Optional[Iterator], name: str = "") -> Shred:
        shred = Shred(self._next_id, gen, name)
        self._next_id += 1
        self.created += 1
        self.active += 1
        self.log.note(ShredEvent.CREATED)
        return shred

    def set_main(self, shred: Shred) -> None:
        self.main_shred = shred

    def finish_shred(self, shred: Shred) -> None:
        """Retire a shred and wake everything joined on it."""
        if shred.done:
            raise ShredLibError(f"{shred} finished twice")
        shred.state = ShredState.DONE
        self.finished += 1
        self.active -= 1
        self.log.note(ShredEvent.FINISHED)
        for joiner in shred.joiners:
            self.make_ready(joiner)
        shred.joiners.clear()
        if shred is self.main_shred:
            # main returning ends the multi-shredded phase; gang
            # schedulers drain the queue and exit
            self.shutdown = True

    # ------------------------------------------------------------------
    # Work queue (callers charge the lock/queue costs via ops)
    # ------------------------------------------------------------------
    def push(self, shred: Shred) -> None:
        if shred.done:
            raise ShredLibError(f"cannot enqueue finished {shred}")
        shred.state = ShredState.READY
        self.queue.append(shred)
        self.log.note(ShredEvent.QUEUE_PUSH)
        self.log.note_queue_depth(len(self.queue))

    def pop(self, worker_id: Optional[int] = None) -> Optional[Shred]:
        """Pop the next shred runnable by ``worker_id``.

        Shreds with an affinity are skipped by other workers; the scan
        preserves the policy order for eligible shreds.
        """
        if not self.queue:
            return None
        order = (range(len(self.queue)) if self.policy is QueuePolicy.FIFO
                 else range(len(self.queue) - 1, -1, -1))
        for index in order:
            shred = self.queue[index]
            if (worker_id is None or shred.affinity is None
                    or shred.affinity == worker_id):
                del self.queue[index]
                self.log.note(ShredEvent.QUEUE_POP)
                return shred
        return None

    def make_ready(self, shred: Shred) -> None:
        """Wake a blocked shred: put it back in the work queue."""
        if shred.state is not ShredState.BLOCKED:
            raise ShredLibError(f"waking {shred} which is not blocked")
        self.log.note(ShredEvent.WOKEN)
        self.push(shred)

    @property
    def queue_empty(self) -> bool:
        return not self.queue

    @property
    def all_work_done(self) -> bool:
        return self.shutdown and not self.queue

    # ------------------------------------------------------------------
    # The pump: run one shred until it blocks, yields, or finishes
    # ------------------------------------------------------------------
    def run_shred(self, shred: Shred, worker_id: int) -> Iterator[Op]:
        """Generator forwarding machine ops; returns a status string.

        Statuses: ``"done"``, ``"blocked"``, ``"yielded"``.
        """
        if shred.gen is None:
            raise ShredLibError(f"{shred} has no body")
        shred.state = ShredState.RUNNING
        shred.times_scheduled += 1
        shred.last_worker = worker_id
        self.log.note(ShredEvent.SCHEDULED)
        gen = shred.gen
        send_value: Any = None
        first = not getattr(shred, "_started", False)
        while True:
            try:
                if first:
                    shred._started = True  # type: ignore[attr-defined]
                    first = False
                    op = next(gen)
                else:
                    op = gen.send(send_value)
            except StopIteration as stop:
                shred.result = stop.value
                self.finish_shred(shred)
                return "done"
            if isinstance(op, Block):
                op.waiters.append(shred)
                shred.state = ShredState.BLOCKED
                shred.times_blocked += 1
                self.log.note(ShredEvent.BLOCKED)
                if op.reason:
                    self.log.note_contention(op.reason)
                return "blocked"
            if isinstance(op, YieldShred):
                shred.times_yielded += 1
                self.log.note(ShredEvent.YIELDED)
                self.push(shred)
                return "yielded"
            if isinstance(op, ExitShred):
                gen.close()
                shred.result = None
                self.finish_shred(shred)
                return "done"
            if not isinstance(op, MachineOp):
                raise ShredLibError(
                    f"{shred} yielded unknown op {op!r}")
            send_value = yield op
