"""The public ShredLib API facade.

Application (workload) code is written against this class: shred
creation, joining, yielding, and factories for every synchronization
primitive.  All methods that do work are generators -- call them with
``yield from``::

    def app_main(api):
        workers = []
        for i in range(8):
            w = yield from api.create(worker(api, i), name=f"w{i}")
            workers.append(w)
        yield from api.join_all(workers)
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.exec.context import ExecContext
from repro.exec.ops import AtomicOp, Block, Compute, ExitShred, Op, YieldShred
from repro.shredlib.runtime import ShredRuntime
from repro.shredlib.shred import Shred
from repro.shredlib.sync import (
    CriticalSection, ShredBarrier, ShredCondVar, ShredEventObject,
    ShredMutex, ShredRWLock, ShredSemaphore,
)


class ShredAPI:
    """Facade bundling the runtime, execution context, and factories."""

    def __init__(self, rt: ShredRuntime, ctx: ExecContext) -> None:
        self.rt = rt
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Shred control
    # ------------------------------------------------------------------
    def create(self, body: Iterator[Op], name: str = "") -> Iterator[Op]:
        """Create a shred from a generator body; returns the Shred.

        The Shred_create of Figure 3: push a continuation onto the
        mutex-protected work queue.
        """
        yield AtomicOp(vaddr=self.rt.lock_vaddr)
        yield Compute(self.rt.params.queue_op_cost)
        shred = self.rt.new_shred(body, name)
        self.rt.push(shred)
        return shred

    def create_fn(self, fn: Callable[..., Iterator[Op]], *args: Any,
                  name: str = "") -> Iterator[Op]:
        """Create a shred whose body receives its own Shred handle.

        ``fn(shred, *args)`` must return a generator.  Use this when
        the body needs identity-dependent services such as TLS.
        """
        yield AtomicOp(vaddr=self.rt.lock_vaddr)
        yield Compute(self.rt.params.queue_op_cost)
        shred = self.rt.new_shred(None, name)
        shred.gen = fn(shred, *args)
        self.rt.push(shred)
        return shred

    def join(self, shred: Shred) -> Iterator[Op]:
        """Park until ``shred`` finishes; returns its result."""
        yield AtomicOp(vaddr=self.rt.lock_vaddr)
        if not shred.done:
            # the done check and the Block share one atomic segment,
            # so a finish racing with this join cannot be missed
            yield Block(shred.joiners, reason=f"join:{shred.name}")
        return shred.result

    def join_all(self, shreds: Sequence[Shred]) -> Iterator[Op]:
        results = []
        for shred in shreds:
            results.append((yield from self.join(shred)))
        return results

    def yield_(self) -> Iterator[Op]:
        """Voluntarily yield the sequencer (Section 3)."""
        yield YieldShred()

    def exit(self) -> Iterator[Op]:
        """Terminate the calling shred immediately."""
        yield ExitShred()

    # ------------------------------------------------------------------
    # Synchronization factories
    # ------------------------------------------------------------------
    def mutex(self, name: str = "mutex") -> ShredMutex:
        return ShredMutex(self.rt, name)

    def critical_section(self, name: str = "critsec",
                         spin_count: int = 4) -> CriticalSection:
        return CriticalSection(self.rt, name, spin_count)

    def condvar(self, name: str = "cond") -> ShredCondVar:
        return ShredCondVar(self.rt, name)

    def semaphore(self, initial: int = 0, name: str = "sem") -> ShredSemaphore:
        return ShredSemaphore(self.rt, initial, name)

    def event(self, manual_reset: bool = True,
              name: str = "event") -> ShredEventObject:
        return ShredEventObject(self.rt, manual_reset, name)

    def barrier(self, parties: int, name: str = "barrier") -> ShredBarrier:
        return ShredBarrier(self.rt, parties, name)

    def rwlock(self, name: str = "rwlock") -> ShredRWLock:
        return ShredRWLock(self.rt, name)
