"""The Win32-Threads-to-shreds translation layer (Section 4.2).

The second legacy API translation ShredLib provides.  The paper's
prototype ran on Windows Server 2003, so most of the Table 2 ports
(the Intel threading tools, the media encoder, JRockit) went through
this mapping.  Handles deliberately mimic the Win32 shapes:
``CreateThread`` returns a waitable HANDLE, events come in manual- and
auto-reset flavours, and critical sections spin before blocking.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.errors import ShredLibError
from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.shredlib.sync import CriticalSection

#: Win32 wait return codes
WAIT_OBJECT_0 = 0
INFINITE = -1


class Handle:
    """A waitable Win32 HANDLE."""

    def __init__(self, kind: str, target: Any) -> None:
        self.kind = kind
        self._target = target
        self.closed = False

    def _check(self) -> None:
        if self.closed:
            raise ShredLibError(f"use of closed {self.kind} handle")


class Win32API:
    """Win32 threading calls, translated to shreds."""

    def __init__(self, api: ShredAPI) -> None:
        self._api = api
        self.calls_translated = 0

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def CreateThread(self, start_routine: Callable[..., Iterator[Op]],
                     *args: Any, name: str = "") -> Iterator[Op]:
        self.calls_translated += 1
        shred = yield from self._api.create(start_routine(*args),
                                            name=name or "win32-thread")
        return Handle("thread", shred)

    def WaitForSingleObject(self, handle: Handle,
                            timeout: int = INFINITE) -> Iterator[Op]:
        """Wait on a thread or event handle (timeouts unsupported)."""
        self.calls_translated += 1
        handle._check()
        if timeout != INFINITE:
            raise ShredLibError("finite timeouts are not modelled")
        if handle.kind == "thread":
            yield from self._api.join(handle._target)
        elif handle.kind == "event":
            yield from handle._target.wait()
        elif handle.kind == "semaphore":
            yield from handle._target.wait()
        else:
            raise ShredLibError(f"cannot wait on a {handle.kind} handle")
        return WAIT_OBJECT_0

    def WaitForMultipleObjects(self, handles: Sequence[Handle],
                               wait_all: bool = True) -> Iterator[Op]:
        self.calls_translated += 1
        if not wait_all:
            raise ShredLibError("wait-any semantics are not modelled")
        for handle in handles:
            yield from self.WaitForSingleObject(handle)
        return WAIT_OBJECT_0

    def CloseHandle(self, handle: Handle) -> None:
        self.calls_translated += 1
        handle.closed = True

    def SwitchToThread(self) -> Iterator[Op]:
        self.calls_translated += 1
        yield from self._api.yield_()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def CreateEvent(self, manual_reset: bool = True,
                    initial_state: bool = False,
                    name: str = "event") -> Handle:
        self.calls_translated += 1
        event = self._api.event(manual_reset, name)
        if initial_state:
            event._signaled = True
        return Handle("event", event)

    def SetEvent(self, handle: Handle) -> Iterator[Op]:
        self.calls_translated += 1
        handle._check()
        yield from handle._target.set()

    def ResetEvent(self, handle: Handle) -> Iterator[Op]:
        self.calls_translated += 1
        handle._check()
        yield from handle._target.reset()

    # ------------------------------------------------------------------
    # Critical sections and semaphores
    # ------------------------------------------------------------------
    def InitializeCriticalSection(self, name: str = "critsec",
                                  spin_count: int = 4) -> CriticalSection:
        self.calls_translated += 1
        return self._api.critical_section(name, spin_count)

    def EnterCriticalSection(self, cs: CriticalSection) -> Iterator[Op]:
        self.calls_translated += 1
        yield from cs.enter()

    def LeaveCriticalSection(self, cs: CriticalSection) -> Iterator[Op]:
        self.calls_translated += 1
        yield from cs.leave()

    def CreateSemaphore(self, initial: int, name: str = "sem") -> Handle:
        self.calls_translated += 1
        return Handle("semaphore", self._api.semaphore(initial, name))

    def ReleaseSemaphore(self, handle: Handle, count: int = 1) -> Iterator[Op]:
        self.calls_translated += 1
        handle._check()
        yield from handle._target.post(count)
