"""ShredLib's generic proxy handler (Section 4.2).

"ShredLib also provides a generic routine to handle proxy execution
for all proxy triggering conditions."  Section 2.5 notes that "at
minimum, a single proxy handler on the OMS is sufficient to deal with
all proxy conditions" -- and that is what ShredLib registers.

In this model the proxy *choreography* is architectural (the machine
executes Equations 2/3 when an AMS faults), so the handler object here
carries the software-visible half: the YIELD-CONDITIONAL registration
performed by the application at startup (Figure 3, "Register Proxy
Handler") and the per-cause statistics the firmware feeds back to the
developer (Section 4.1).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.processor import MISPProcessor
from repro.core.yieldcond import Scenario
from repro.exec.ops import Compute, Op
from repro.params import MachineParams


class GenericProxyHandler:
    """The single OMS-side handler covering all proxy conditions."""

    def __init__(self, name: str = "shredlib-proxy-handler") -> None:
        self.name = name
        self.registered_on: list[int] = []

    def register(self, processor: MISPProcessor) -> None:
        """Install this handler in the OMS trigger-response table."""
        processor.scenarios.register(Scenario.PROXY_REQUEST, self)
        self.registered_on.append(processor.proc_id)

    @staticmethod
    def registration_ops(params: MachineParams) -> Iterator[Op]:
        """The YMONITOR setup cost paid once at application startup."""
        yield Compute(params.atomic_op_cost * 2)

    def is_registered(self, processor: MISPProcessor) -> bool:
        return processor.scenarios.lookup(Scenario.PROXY_REQUEST) is self
