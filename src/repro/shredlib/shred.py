"""Shreds: MISP-enabled user-level threads (Section 3).

A shred is "a stream of instructions that can execute concurrently
with other instruction streams" inside one OS thread -- like a Windows
fiber, except that a thread's shreds really do run in parallel on
multiple sequencers ("concurrently executing fibers").

In direct-execution mode a shred's ⟨EIP, ESP⟩ continuation is a live
Python generator; parking and resuming a shred is retaining and
re-entering that generator.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, Optional


class ShredState(enum.Enum):
    READY = "ready"        # in the work queue
    RUNNING = "running"    # being pumped by a gang scheduler
    BLOCKED = "blocked"    # parked on a sync object's wait list
    DONE = "done"


class Shred:
    """One user-level thread of the application."""

    def __init__(self, shred_id: int, gen: Iterator, name: str = "") -> None:
        self.shred_id = shred_id
        self.gen = gen
        self.name = name or f"shred-{shred_id}"
        self.state = ShredState.READY
        #: shreds blocked in ``join`` on this shred
        self.joiners: list["Shred"] = []
        #: thread-local storage (Section 4.2: ShredLib supports TLS)
        self.tls: dict[Any, Any] = {}
        #: restrict this shred to one gang-scheduler worker id (the
        #: main shred is pinned to worker 0 -- the OMS / main thread --
        #: mirroring how the paper's main program *is* the OS thread)
        self.affinity: Optional[int] = None
        #: return value surfaced to joiners (StopIteration value)
        self.result: Any = None
        # -- statistics ----------------------------------------------------
        self.times_scheduled = 0
        self.times_blocked = 0
        self.times_yielded = 0
        #: seq_id of the sequencer that last ran this shred
        self.last_worker: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.state is ShredState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Shred {self.shred_id} '{self.name}' {self.state.value}>"
