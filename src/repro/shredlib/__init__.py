"""ShredLib: the user-level multi-shredding runtime (Section 4.2)."""

from repro.shredlib.api import ShredAPI
from repro.shredlib.log import ShredEvent, ShredLog
from repro.shredlib.proxyhandler import GenericProxyHandler
from repro.shredlib.pthreads import PthreadsAPI
from repro.shredlib.runtime import QueuePolicy, ShredRuntime
from repro.shredlib.scheduler import drain_once, gang_scheduler
from repro.shredlib.shred import Shred, ShredState
from repro.shredlib.sync import (
    CriticalSection, ShredBarrier, ShredCondVar, ShredEventObject,
    ShredMutex, ShredRWLock, ShredSemaphore,
)
from repro.shredlib.tls import TlsKey
from repro.shredlib.win32 import Win32API

__all__ = [
    "ShredAPI", "ShredEvent", "ShredLog", "GenericProxyHandler",
    "PthreadsAPI", "QueuePolicy", "ShredRuntime", "drain_once",
    "gang_scheduler", "Shred", "ShredState", "CriticalSection",
    "ShredBarrier", "ShredCondVar", "ShredEventObject", "ShredMutex",
    "ShredRWLock", "ShredSemaphore", "TlsKey", "Win32API",
]
