"""Thread-local storage for shreds.

Section 4.2: "ShredLib also seamlessly supports both Thread Local
Storage and Structured Exception Handling ... for shreds, without
requiring recompilation or changes to the compiler."

In direct-execution mode TLS is a per-shred dictionary keyed by
:class:`TlsKey` objects (the analogue of ``TlsAlloc`` indices /
``__declspec(thread)`` slots).  Bodies that use TLS are created with
:meth:`~repro.shredlib.api.ShredAPI.create_fn` so they hold their own
:class:`~repro.shredlib.shred.Shred` handle.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ShredLibError
from repro.shredlib.shred import Shred


class TlsKey:
    """One allocated TLS slot (cf. Win32 ``TlsAlloc``)."""

    _next_index = 0

    def __init__(self, name: str = "", default: Any = None) -> None:
        self.index = TlsKey._next_index
        TlsKey._next_index += 1
        self.name = name or f"tls-{self.index}"
        self.default = default
        self._freed = False

    def get(self, shred: Shred) -> Any:
        self._check()
        return shred.tls.get(self.index, self.default)

    def set(self, shred: Shred, value: Any) -> None:
        self._check()
        shred.tls[self.index] = value

    def clear(self, shred: Shred) -> None:
        self._check()
        shred.tls.pop(self.index, None)

    def free(self) -> None:
        """Release the slot (cf. ``TlsFree``); further use is an error."""
        self._freed = True

    def _check(self) -> None:
        if self._freed:
            raise ShredLibError(f"use of freed TLS key '{self.name}'")
