"""The Pthreads-to-shreds translation layer (Section 4.2, Table 2).

"To facilitate migration of legacy multithreaded applications to a
MISP processor, ShredLib provides legacy API translations for the
Pthreads and Win32 Threads APIs. ... With most applications, we simply
changed the application's source code to include a single header file
that contains ShredLib's thread-to-shred API mapping, and then
recompiled."

:class:`PthreadsAPI` is that header file's analogue: a POSIX-shaped
facade whose every call maps 1:1 onto ShredLib.  A legacy application
written against it runs unmodified as shreds (on MISP) or via gang
workers on OS threads (on the SMP baseline) -- the property the
Table 2 porting study measures.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.exec.ops import Op
from repro.shredlib.api import ShredAPI
from repro.shredlib.shred import Shred
from repro.shredlib.sync import ShredCondVar, ShredMutex, ShredSemaphore


class PthreadT:
    """Opaque thread handle (``pthread_t``)."""

    def __init__(self, shred: Shred) -> None:
        self._shred = shred

    @property
    def finished(self) -> bool:
        return self._shred.done


class PthreadMutexT:
    """``pthread_mutex_t`` wrapping a :class:`ShredMutex`."""

    def __init__(self, mutex: ShredMutex) -> None:
        self._mutex = mutex


class PthreadCondT:
    """``pthread_cond_t`` wrapping a :class:`ShredCondVar`."""

    def __init__(self, cond: ShredCondVar) -> None:
        self._cond = cond


class SemT:
    """``sem_t`` wrapping a :class:`ShredSemaphore`."""

    def __init__(self, sem: ShredSemaphore) -> None:
        self._sem = sem


class PthreadsAPI:
    """POSIX threads calls, translated to shreds.

    Every method mirrors its POSIX namesake's shape; start routines
    are generator functions ``fn(*args)`` and all calls are used with
    ``yield from``.
    """

    def __init__(self, api: ShredAPI) -> None:
        self._api = api
        self._mutex_counter = 0
        self._cond_counter = 0
        self._sem_counter = 0
        #: how many legacy API calls were translated (Table 2 metric)
        self.calls_translated = 0

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def pthread_create(self, start_routine: Callable[..., Iterator[Op]],
                       *args: Any, name: str = "") -> Iterator[Op]:
        """Create a thread; returns a :class:`PthreadT` handle."""
        self.calls_translated += 1
        shred = yield from self._api.create(start_routine(*args),
                                            name=name or "pthread")
        return PthreadT(shred)

    def pthread_join(self, thread: PthreadT) -> Iterator[Op]:
        """Wait for a thread; returns its exit value."""
        self.calls_translated += 1
        result = yield from self._api.join(thread._shred)
        return result

    def pthread_yield(self) -> Iterator[Op]:
        self.calls_translated += 1
        yield from self._api.yield_()

    def pthread_exit(self) -> Iterator[Op]:
        self.calls_translated += 1
        yield from self._api.exit()

    # ------------------------------------------------------------------
    # Mutexes
    # ------------------------------------------------------------------
    def pthread_mutex_init(self) -> PthreadMutexT:
        self.calls_translated += 1
        self._mutex_counter += 1
        return PthreadMutexT(self._api.mutex(f"pmutex-{self._mutex_counter}"))

    def pthread_mutex_lock(self, mutex: PthreadMutexT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from mutex._mutex.acquire()

    def pthread_mutex_unlock(self, mutex: PthreadMutexT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from mutex._mutex.release()

    # ------------------------------------------------------------------
    # Condition variables
    # ------------------------------------------------------------------
    def pthread_cond_init(self) -> PthreadCondT:
        self.calls_translated += 1
        self._cond_counter += 1
        return PthreadCondT(self._api.condvar(f"pcond-{self._cond_counter}"))

    def pthread_cond_wait(self, cond: PthreadCondT,
                          mutex: PthreadMutexT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from cond._cond.wait(mutex._mutex)

    def pthread_cond_signal(self, cond: PthreadCondT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from cond._cond.notify_one()

    def pthread_cond_broadcast(self, cond: PthreadCondT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from cond._cond.notify_all()

    # ------------------------------------------------------------------
    # Semaphores
    # ------------------------------------------------------------------
    def sem_init(self, value: int = 0) -> SemT:
        self.calls_translated += 1
        self._sem_counter += 1
        return SemT(self._api.semaphore(value, f"psem-{self._sem_counter}"))

    def sem_wait(self, sem: SemT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from sem._sem.wait()

    def sem_post(self, sem: SemT) -> Iterator[Op]:
        self.calls_translated += 1
        yield from sem._sem.post()
