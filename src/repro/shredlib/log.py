"""ShredLib's runtime event log (Section 4.2).

"ShredLib also provides a detailed event logging system that can
profile relevant scheduling activities, such as inter-shred
dependencies and contention on common synchronization objects.  This
event logging system is complementary to that provided by the
prototype MISP processor's custom firmware."

The firmware-side log is :class:`repro.sim.trace.TraceLog`; this class
covers the runtime side: shred lifecycle, queue activity, and sync
contention.

Contention counters are unified with the observability registry
(:mod:`repro.obs.metrics`): each sync-object name is one member of a
labeled counter family rather than the private ``collections.Counter``
this class historically kept.  By default the family lives in a
log-private registry (so an un-observed run writes nothing global);
an observed run calls :meth:`attach_metrics` to redirect the family
into the process-wide registry under its correlation id, and
:meth:`attach_clock` to timestamp contention for timeline export.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.metrics import Family, MetricsRegistry


class ShredEvent(enum.Enum):
    CREATED = "created"
    SCHEDULED = "scheduled"
    BLOCKED = "blocked"
    WOKEN = "woken"
    YIELDED = "yielded"
    FINISHED = "finished"
    QUEUE_PUSH = "queue_push"
    QUEUE_POP = "queue_pop"
    QUEUE_EMPTY_POLL = "queue_empty_poll"


@dataclass
class ShredLog:
    """Counters plus optional per-object contention attribution."""

    _events: Counter = field(default_factory=Counter)
    #: maximum work-queue depth observed
    max_queue_depth: int = 0
    #: registry counter family for contention; lazily a private one,
    #: or the process-wide family installed by :meth:`attach_metrics`
    _family: Optional[Family] = field(default=None, repr=False)
    _family_labels: dict = field(default_factory=dict, repr=False)
    #: per-object children of ``_family`` (one counter per sync object)
    _contended: dict = field(default_factory=dict, repr=False)
    #: simulation clock (anything with ``.now``); None = no timestamps
    _clock: Optional[Any] = field(default=None, repr=False)
    #: timestamped contention records ``(cycle, object_name)``,
    #: collected only while a clock is attached
    _records: list = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # Observability wiring
    # ------------------------------------------------------------------
    def attach_clock(self, clock: Any) -> None:
        """Timestamp contention against ``clock.now`` (an
        :class:`~repro.sim.engine.Engine`) from here on."""
        self._clock = clock

    def attach_metrics(self, family: Family, **labels: str) -> None:
        """Unify contention counters into ``family`` (plus fixed
        ``labels``, e.g. the observed run's correlation id).  Counts
        noted before attachment migrate into the new family."""
        self._family = family
        self._family_labels = dict(labels)
        for name, child in list(self._contended.items()):
            moved = family.labels(**labels, object=name)
            if child.value:
                moved.inc(child.value)
            self._contended[name] = moved

    def _contention_child(self, object_name: str):
        child = self._contended.get(object_name)
        if child is None:
            if self._family is None:
                # un-attached log: a private registry, so default runs
                # never touch the process-wide one
                self._family = MetricsRegistry().counter(
                    "repro_shredlib_contention_total",
                    "contended sync-object acquires", labels=("object",))
            child = self._family.labels(**self._family_labels,
                                        object=object_name)
            self._contended[object_name] = child
        return child

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def note(self, event: ShredEvent, n: int = 1) -> None:
        self._events[event] += n

    def note_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def note_contention(self, object_name: str) -> None:
        self._contention_child(object_name).inc()
        clock = self._clock
        if clock is not None:
            self._records.append((clock.now, object_name))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, event: ShredEvent) -> int:
        return self._events[event]

    def contention(self, object_name: Optional[str] = None) -> int:
        if object_name is None:
            return sum(child.value for child in self._contended.values())
        child = self._contended.get(object_name)
        return child.value if child is not None else 0

    def contention_by_object(self) -> dict[str, int]:
        return {name: child.value
                for name, child in sorted(self._contended.items())}

    def contention_events(self) -> list[tuple[int, str]]:
        """Timestamped ``(cycle, object_name)`` contention records
        (empty unless a clock was attached -- observed runs only)."""
        return list(self._records)

    def summary(self) -> dict[str, int]:
        return {e.value: c for e, c in sorted(self._events.items(),
                                              key=lambda kv: kv[0].value)}
