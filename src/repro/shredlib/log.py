"""ShredLib's runtime event log (Section 4.2).

"ShredLib also provides a detailed event logging system that can
profile relevant scheduling activities, such as inter-shred
dependencies and contention on common synchronization objects.  This
event logging system is complementary to that provided by the
prototype MISP processor's custom firmware."

The firmware-side log is :class:`repro.sim.trace.TraceLog`; this class
covers the runtime side: shred lifecycle, queue activity, and sync
contention.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional


class ShredEvent(enum.Enum):
    CREATED = "created"
    SCHEDULED = "scheduled"
    BLOCKED = "blocked"
    WOKEN = "woken"
    YIELDED = "yielded"
    FINISHED = "finished"
    QUEUE_PUSH = "queue_push"
    QUEUE_POP = "queue_pop"
    QUEUE_EMPTY_POLL = "queue_empty_poll"


@dataclass
class ShredLog:
    """Counters plus optional per-object contention attribution."""

    _events: Counter = field(default_factory=Counter)
    #: contended acquires per sync-object name
    _contention: Counter = field(default_factory=Counter)
    #: maximum work-queue depth observed
    max_queue_depth: int = 0

    def note(self, event: ShredEvent, n: int = 1) -> None:
        self._events[event] += n

    def note_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def note_contention(self, object_name: str) -> None:
        self._contention[object_name] += 1
        self._events[ShredEvent.BLOCKED] += 0  # blocked is counted separately

    def count(self, event: ShredEvent) -> int:
        return self._events[event]

    def contention(self, object_name: Optional[str] = None) -> int:
        if object_name is None:
            return sum(self._contention.values())
        return self._contention[object_name]

    def contention_by_object(self) -> dict[str, int]:
        return dict(self._contention)

    def summary(self) -> dict[str, int]:
        return {e.value: c for e, c in sorted(self._events.items(),
                                              key=lambda kv: kv[0].value)}
