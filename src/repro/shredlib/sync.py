"""ShredLib synchronization primitives (Section 4.2).

"By default, ShredLib implements a POSIX-compliant suite of shred
control and shred synchronization primitives, including support for
critical sections, mutexes, condition variables, semaphores, and
events."

Every primitive is implemented over the shared work queue using the
voluntary-yield semantics of Section 3: a shred that must wait parks
itself (a :class:`~repro.exec.ops.Block` sentinel appends it to the
object's wait list) and the releasing shred re-enqueues it.  No OS
involvement, no ring transitions -- that is the point of user-level
threading.

Atomicity: everything a shred does between two machine ops executes
atomically in simulated time (see :mod:`repro.shredlib.runtime`), so
the check-then-block sequences below are race-free exactly when the
check and the ``yield Block`` share one such segment.  Each primitive
charges an :class:`~repro.exec.ops.AtomicOp` first, modelling the
lock-prefixed instruction that makes this true on real hardware.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ShredLibError
from repro.exec.ops import AtomicOp, Block, Op
from repro.shredlib.runtime import ShredRuntime
from repro.shredlib.shred import Shred


class ShredMutex:
    """A mutual-exclusion lock with FIFO wakeup (Mesa semantics)."""

    def __init__(self, rt: ShredRuntime, name: str = "mutex") -> None:
        self._rt = rt
        self.name = name
        self._vaddr = rt.sync_line()
        self._locked = False
        self._waiters: list[Shred] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        while self._locked:
            self.contended_acquisitions += 1
            yield Block(self._waiters, reason=self.name)
            yield AtomicOp(vaddr=self._vaddr)  # retry the RMW after wakeup
        self._locked = True
        self.acquisitions += 1

    def release(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        if not self._locked:
            raise ShredLibError(f"release of unlocked mutex '{self.name}'")
        self._locked = False
        if self._waiters:
            self._rt.make_ready(self._waiters.pop(0))

    @property
    def locked(self) -> bool:
        return self._locked


class CriticalSection:
    """Win32-style critical section: a mutex with a spin phase.

    Models EnterCriticalSection's spin-then-block behaviour: a few
    atomic retries before parking.
    """

    def __init__(self, rt: ShredRuntime, name: str = "critsec",
                 spin_count: int = 4) -> None:
        self._mutex = ShredMutex(rt, name)
        self.spin_count = spin_count

    def enter(self) -> Iterator[Op]:
        for _ in range(self.spin_count):
            yield AtomicOp(vaddr=self._mutex._vaddr)
            if not self._mutex._locked:
                self._mutex._locked = True
                self._mutex.acquisitions += 1
                return
        yield from self._mutex.acquire()

    def leave(self) -> Iterator[Op]:
        yield from self._mutex.release()


class ShredCondVar:
    """A condition variable (used with an external :class:`ShredMutex`).

    Wait releases the mutex and parks atomically with respect to
    notifier segments, via a generation count, so no wakeup is lost;
    callers should still use the standard Mesa ``while pred: wait()``
    idiom.
    """

    def __init__(self, rt: ShredRuntime, name: str = "cond") -> None:
        self._rt = rt
        self.name = name
        self._vaddr = rt.sync_line()
        self._waiters: list[Shred] = []
        self._generation = 0

    def wait(self, mutex: ShredMutex) -> Iterator[Op]:
        if not mutex.locked:
            raise ShredLibError(
                f"cond '{self.name}': wait() without holding the mutex")
        my_generation = self._generation
        yield from mutex.release()
        # this check and the Block below share one atomic segment
        if self._generation == my_generation:
            yield Block(self._waiters, reason=self.name)
        yield from mutex.acquire()

    def notify_one(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        self._generation += 1
        if self._waiters:
            self._rt.make_ready(self._waiters.pop(0))

    def notify_all(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        self._generation += 1
        waiters, self._waiters = self._waiters, []
        for shred in waiters:
            self._rt.make_ready(shred)


class ShredSemaphore:
    """A counting semaphore."""

    def __init__(self, rt: ShredRuntime, initial: int = 0,
                 name: str = "sem") -> None:
        if initial < 0:
            raise ShredLibError("semaphore count must be non-negative")
        self._rt = rt
        self.name = name
        self._vaddr = rt.sync_line()
        self._count = initial
        self._waiters: list[Shred] = []

    def wait(self) -> Iterator[Op]:
        """P: decrement, parking while the count is zero."""
        yield AtomicOp(vaddr=self._vaddr)
        while self._count == 0:
            yield Block(self._waiters, reason=self.name)
            yield AtomicOp(vaddr=self._vaddr)
        self._count -= 1

    def post(self, n: int = 1) -> Iterator[Op]:
        """V: increment and wake up to ``n`` waiters."""
        if n <= 0:
            raise ShredLibError("post count must be positive")
        yield AtomicOp(vaddr=self._vaddr)
        self._count += n
        for _ in range(min(n, len(self._waiters))):
            self._rt.make_ready(self._waiters.pop(0))

    @property
    def value(self) -> int:
        return self._count


class ShredEventObject:
    """A Win32-style event (manual- or auto-reset)."""

    def __init__(self, rt: ShredRuntime, manual_reset: bool = True,
                 name: str = "event") -> None:
        self._rt = rt
        self.name = name
        self._vaddr = rt.sync_line()
        self.manual_reset = manual_reset
        self._signaled = False
        self._waiters: list[Shred] = []

    def wait(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        if not self._signaled:
            yield Block(self._waiters, reason=self.name)
        elif not self.manual_reset:
            self._signaled = False

    def set(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        if self.manual_reset:
            self._signaled = True
            waiters, self._waiters = self._waiters, []
            for shred in waiters:
                self._rt.make_ready(shred)
        else:
            if self._waiters:
                self._rt.make_ready(self._waiters.pop(0))
            else:
                self._signaled = True

    def reset(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        self._signaled = False

    @property
    def signaled(self) -> bool:
        return self._signaled


class ShredBarrier:
    """A cyclic barrier for ``parties`` shreds."""

    def __init__(self, rt: ShredRuntime, parties: int,
                 name: str = "barrier") -> None:
        if parties <= 0:
            raise ShredLibError("barrier needs at least one party")
        self._rt = rt
        self.name = name
        self._vaddr = rt.sync_line()
        self.parties = parties
        self._arrived = 0
        self._waiters: list[Shred] = []
        self.cycles_completed = 0

    def wait(self) -> Iterator[Op]:
        """Park until ``parties`` shreds arrive; the last one releases.

        Returns True (via StopIteration value) to exactly one party per
        cycle -- the "serial shred", mirroring pthread_barrier's
        PTHREAD_BARRIER_SERIAL_THREAD.
        """
        yield AtomicOp(vaddr=self._vaddr)
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self.cycles_completed += 1
            waiters, self._waiters = self._waiters, []
            for shred in waiters:
                self._rt.make_ready(shred)
            return True
        yield Block(self._waiters, reason=self.name)
        return False


class ShredRWLock:
    """A writer-preferring readers/writer lock."""

    def __init__(self, rt: ShredRuntime, name: str = "rwlock") -> None:
        self._rt = rt
        self.name = name
        self._vaddr = rt.sync_line()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        self._read_waiters: list[Shred] = []
        self._write_waiters: list[Shred] = []

    def acquire_read(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        while self._writer or self._waiting_writers:
            yield Block(self._read_waiters, reason=f"{self.name}.r")
            yield AtomicOp(vaddr=self._vaddr)
        self._readers += 1

    def release_read(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        if self._readers <= 0:
            raise ShredLibError(f"rwlock '{self.name}': read release underflow")
        self._readers -= 1
        if self._readers == 0 and self._write_waiters:
            self._rt.make_ready(self._write_waiters.pop(0))

    def acquire_write(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        while self._writer or self._readers:
            self._waiting_writers += 1
            yield Block(self._write_waiters, reason=f"{self.name}.w")
            self._waiting_writers -= 1
            yield AtomicOp(vaddr=self._vaddr)
        self._writer = True

    def release_write(self) -> Iterator[Op]:
        yield AtomicOp(vaddr=self._vaddr)
        if not self._writer:
            raise ShredLibError(f"rwlock '{self.name}': write release underflow")
        self._writer = False
        if self._write_waiters:
            self._rt.make_ready(self._write_waiters.pop(0))
        else:
            waiters, self._read_waiters = self._read_waiters, []
            for shred in waiters:
                self._rt.make_ready(shred)
