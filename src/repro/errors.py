"""Exception hierarchy for the MISP reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Architectural *events* that are
part of normal machine operation (page faults, syscall traps) are NOT
exceptions in the Python sense -- they flow through the effect types in
:mod:`repro.exec.ops` and :mod:`repro.isa.interpreter`.  The exceptions
here signal genuine programming or configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A machine, processor, or workload was configured inconsistently."""


class SimulationError(ReproError):
    """The simulation engine reached an invalid internal state."""


class DeadlockError(SimulationError):
    """No sequencer can make progress and unfinished work remains."""


class ExperimentExecutionError(SimulationError):
    """One or more runs of an experiment batch failed.

    Completed runs in the batch are kept (memoized and stored) before
    this is raised, so a retry only re-runs the failures.
    ``failures`` holds every ``(spec, exception)`` pair -- nothing is
    swallowed behind the first error -- and the message names every
    failed spec.
    """

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"{spec.describe()}: {type(exc).__name__}: {exc}"
            for spec, exc in self.failures)
        count = len(self.failures)
        super().__init__(
            f"{count} run{'s' if count != 1 else ''} failed -- {detail}")


class MemoryError_(ReproError):
    """Physical or virtual memory subsystem misuse (e.g. out of frames)."""


class ProtectionError(ReproError):
    """A privilege-level violation (e.g. Ring-0 instruction on an AMS)."""


class AssemblerError(ReproError):
    """The mini-ISA assembler rejected a source program."""


class InvalidInstructionError(ReproError):
    """The interpreter decoded an unknown or malformed instruction."""


class ShredLibError(ReproError):
    """Misuse of the ShredLib user-level runtime API."""
