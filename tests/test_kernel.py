"""Unit tests for the model kernel: processes, scheduler, syscalls."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.stream import DirectStream
from repro.kernel import Kernel, Scheduler, SyscallSpec, ThreadState
from repro.params import DEFAULT_PARAMS


def _stream():
    def body():
        yield from ()
    return DirectStream(body())


def make_kernel(cpus=2):
    return Kernel(DEFAULT_PARAMS, num_cpus=cpus)


# ----------------------------------------------------------------------
# Process / thread lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_create_process_unique_pids(self):
        kernel = make_kernel()
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        assert a.pid != b.pid
        assert a.address_space is not b.address_space

    def test_thread_starts_new(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        thread = kernel.create_thread(proc, "t", _stream())
        assert thread.state is ThreadState.NEW
        assert thread in proc.threads

    def test_start_places_thread(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        thread = kernel.create_thread(proc, "t", _stream())
        cpu = kernel.start_thread(thread)
        assert thread.state is ThreadState.READY
        assert 0 <= cpu < 2

    def test_double_start_rejected(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        thread = kernel.create_thread(proc, "t", _stream())
        kernel.start_thread(thread)
        with pytest.raises(ConfigurationError):
            kernel.start_thread(thread)

    def test_exit_last_thread_retires_process(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        thread = kernel.create_thread(proc, "t", _stream())
        kernel.start_thread(thread)
        kernel.exit_thread(thread, now=123)
        assert thread.state is ThreadState.EXITED
        assert proc.exited and proc.exit_time == 123
        assert kernel.all_done

    def test_process_waits_for_all_threads(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        t1 = kernel.create_thread(proc, "t1", _stream())
        t2 = kernel.create_thread(proc, "t2", _stream())
        kernel.exit_thread(t1, now=1)
        assert not proc.exited
        kernel.exit_thread(t2, now=2)
        assert proc.exited

    def test_no_threads_in_exited_process(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        thread = kernel.create_thread(proc, "t", _stream())
        kernel.exit_thread(thread, now=1)
        with pytest.raises(ConfigurationError):
            kernel.create_thread(proc, "late", _stream())

    def test_exit_releases_address_space(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        region = proc.address_space.reserve("d", 2)
        proc.address_space.handle_fault(region.vpn(0))
        thread = kernel.create_thread(proc, "t", _stream())
        kernel.exit_thread(thread, now=1)
        assert proc.address_space.resident_pages() == 0


# ----------------------------------------------------------------------
# Scheduler policy
# ----------------------------------------------------------------------
class TestScheduler:
    def _thread(self, kernel, proc, name, pin=None):
        return kernel.create_thread(proc, name, _stream(), pinned_cpu=pin)

    def test_least_loaded_placement(self):
        kernel = make_kernel(cpus=3)
        proc = kernel.create_process("p")
        cpus = [kernel.start_thread(self._thread(kernel, proc, f"t{i}"))
                for i in range(3)]
        assert sorted(cpus) == [0, 1, 2]

    def test_tie_breaks_to_lowest_cpu(self):
        scheduler = Scheduler(4)
        kernel = make_kernel(cpus=4)
        proc = kernel.create_process("p")
        thread = self._thread(kernel, proc, "t")
        assert scheduler.place(thread) == 0

    def test_pinned_placement(self):
        kernel = make_kernel(cpus=4)
        proc = kernel.create_process("p")
        thread = self._thread(kernel, proc, "t", pin=2)
        assert kernel.start_thread(thread) == 2

    def test_pin_out_of_range(self):
        kernel = make_kernel(cpus=2)
        proc = kernel.create_process("p")
        thread = self._thread(kernel, proc, "t", pin=5)
        with pytest.raises(ConfigurationError):
            kernel.start_thread(thread)

    def test_pick_next_round_robin(self):
        scheduler = Scheduler(1)
        kernel = make_kernel(1)
        proc = kernel.create_process("p")
        a = self._thread(kernel, proc, "a")
        b = self._thread(kernel, proc, "b")
        scheduler.enqueue(a, 0)
        scheduler.enqueue(b, 0)
        assert scheduler.pick_next(0) is a
        scheduler.preempt(0, requeue=True)
        assert scheduler.pick_next(0) is b
        scheduler.preempt(0, requeue=True)
        assert scheduler.pick_next(0) is a

    def test_pick_from_empty(self):
        scheduler = Scheduler(1)
        assert scheduler.pick_next(0) is None

    def test_pick_with_current_rejected(self):
        scheduler = Scheduler(1)
        kernel = make_kernel(1)
        proc = kernel.create_process("p")
        scheduler.enqueue(self._thread(kernel, proc, "a"), 0)
        scheduler.pick_next(0)
        scheduler.enqueue(self._thread(kernel, proc, "b"), 0)
        with pytest.raises(ConfigurationError):
            scheduler.pick_next(0)

    def test_should_preempt_only_with_waiters(self):
        scheduler = Scheduler(1)
        kernel = make_kernel(1)
        proc = kernel.create_process("p")
        scheduler.enqueue(self._thread(kernel, proc, "a"), 0)
        scheduler.pick_next(0)
        assert not scheduler.should_preempt(0)
        scheduler.enqueue(self._thread(kernel, proc, "b"), 0)
        assert scheduler.should_preempt(0)

    def test_remove_running_thread(self):
        scheduler = Scheduler(1)
        kernel = make_kernel(1)
        proc = kernel.create_process("p")
        thread = self._thread(kernel, proc, "a")
        scheduler.enqueue(thread, 0)
        scheduler.pick_next(0)
        scheduler.remove(thread)
        assert scheduler.current(0) is None

    def test_loads(self):
        scheduler = Scheduler(2)
        kernel = make_kernel(2)
        proc = kernel.create_process("p")
        scheduler.enqueue(self._thread(kernel, proc, "a"), 0)
        scheduler.enqueue(self._thread(kernel, proc, "b"), 0)
        assert scheduler.loads() == [2, 0]
        assert scheduler.runnable_count() == 2


# ----------------------------------------------------------------------
# Syscall table and service costs
# ----------------------------------------------------------------------
class TestSyscalls:
    def test_builtin_lookup(self):
        kernel = make_kernel()
        cost, spec = kernel.service_syscall("write")
        assert cost == DEFAULT_PARAMS.syscall_service_cost
        assert spec.name == "write"

    def test_specific_cost(self):
        kernel = make_kernel()
        cost, _ = kernel.service_syscall("gettime")
        assert cost == 1200

    def test_override_cost(self):
        kernel = make_kernel()
        cost, _ = kernel.service_syscall("write", 99)
        assert cost == 99

    def test_unknown_syscall(self):
        kernel = make_kernel()
        with pytest.raises(ConfigurationError):
            kernel.service_syscall("frobnicate")

    def test_register_new(self):
        kernel = make_kernel()
        kernel.syscalls.register(SyscallSpec("custom", cost=42))
        cost, _ = kernel.service_syscall("custom")
        assert cost == 42

    def test_register_duplicate(self):
        kernel = make_kernel()
        with pytest.raises(ConfigurationError):
            kernel.syscalls.register(SyscallSpec("write"))

    def test_blocking_flag(self):
        kernel = make_kernel()
        assert kernel.syscalls.lookup("nanosleep").blocks
        assert not kernel.syscalls.lookup("write").blocks

    def test_page_fault_service(self):
        kernel = make_kernel()
        proc = kernel.create_process("p")
        region = proc.address_space.reserve("d", 1)
        cost = kernel.service_page_fault(proc.address_space, region.vpn(0))
        assert cost == DEFAULT_PARAMS.page_fault_service_cost
        # second (racing) fault on the same page is cheap revalidation
        cost2 = kernel.service_page_fault(proc.address_space, region.vpn(0))
        assert cost2 < cost
        assert kernel.page_faults_serviced == 1
