"""Tests for the memory hierarchy: the Cache/MemoryHierarchy models,
coherence between topologies, machine integration (TLB + caches on
the access and fetch paths), and the RunSummary plumbing."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments.summary import (
    MemorySummary, ProxySummary, RunSummary, UtilizationSummary,
    summarize_run,
)
from repro.mem.hierarchy import (
    Cache, MemoryHierarchy, private_l2_per_sequencer, shared_l2_global,
    shared_l2_per_processor,
)
from repro.params import DEFAULT_PARAMS, PAGE_SIZE
from repro.systems import Session

LINE = DEFAULT_PARAMS.cache_line_size


def make_hierarchy(domains, **param_changes):
    params = DEFAULT_PARAMS.with_changes(**param_changes)
    h = MemoryHierarchy(params)
    for seq_ids in domains:
        h.add_domain(seq_ids)
    return h


# ----------------------------------------------------------------------
# Cache model
# ----------------------------------------------------------------------
class TestCache:
    def test_hit_after_fill(self):
        cache = Cache("c", 1024, 2, 64)
        assert not cache.access(5)
        cache.fill(5)
        assert cache.access(5)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_within_set(self):
        cache = Cache("c", 2 * 64, 2, 64)   # one set, two ways
        assert cache.num_sets == 1
        cache.fill(1)
        cache.fill(2)
        cache.access(1)                      # 1 is now MRU
        evicted = cache.fill(3)
        assert evicted == 2                  # LRU way went
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_invalidate_counts_only_present_lines(self):
        cache = Cache("c", 1024, 2, 64)
        cache.fill(9)
        assert cache.invalidate(9) and not cache.invalidate(9)
        assert cache.invalidations == 1

    def test_degenerate_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("c", 1024, 0, 64)


# ----------------------------------------------------------------------
# Hierarchy levels and coherence
# ----------------------------------------------------------------------
class TestHierarchy:
    def test_levels_charge_cumulatively(self):
        h = make_hierarchy([[0]])
        p = h.params
        cold = h.access(0, 0)
        warm = h.access(0, 0)
        assert cold == p.l1_hit_cost + p.l2_hit_cost + p.mem_cost
        assert warm == p.l1_hit_cost
        # evict from L1 only -> next access is an L2 hit
        l1 = h.l1(0)
        l1.invalidate(0)
        assert h.access(0, 0) == p.l1_hit_cost + p.l2_hit_cost

    def test_duplicate_sequencer_rejected(self):
        h = make_hierarchy([[0, 1]])
        with pytest.raises(ConfigurationError):
            h.add_domain([1])

    def test_unattached_sequencer_rejected(self):
        h = make_hierarchy([[0]])
        with pytest.raises(ConfigurationError):
            h.access(7, 0)

    def test_write_invalidates_other_l1s_shared_l2(self):
        h = make_hierarchy([[0, 1]])
        h.access(0, 0, write=True)
        h.access(1, 0, write=True)            # ping-pong
        assert h.l1(0).invalidations == 1
        assert h.l1(1).invalidations == 0
        # the line moved: seq 0 re-reads through the shared L2
        before = h.l2(0).hits
        h.access(0, 0)
        assert h.l2(0).hits == before + 1
        assert h.counters()["l2_invalidations"] == 0   # one L2: no peers

    def test_write_invalidates_private_l2s(self):
        h = make_hierarchy([[0], [1]])
        h.access(0, 0, write=True)
        h.access(1, 0, write=True)
        counters = h.counters()
        assert counters["l1_invalidations"] == 1
        assert counters["l2_invalidations"] == 1
        # with private L2s the ping-pong goes all the way to memory
        assert h.access(0, 0) == (h.params.l1_hit_cost
                                  + h.params.l2_hit_cost
                                  + h.params.mem_cost)

    def test_reads_share_without_invalidation(self):
        h = make_hierarchy([[0, 1, 2]])
        for seq in (0, 1, 2):
            h.access(seq, 0)
        assert h.counters()["l1_invalidations"] == 0
        assert all(0 in h.l1(seq) for seq in (0, 1, 2))

    def test_access_range_streams_lines(self):
        h = make_hierarchy([[0]])
        h.access_range(0, 0, PAGE_SIZE)
        expected = PAGE_SIZE // LINE
        assert h.l1(0).misses == expected
        assert h.mem_accesses == expected

    def test_access_range_single_line_equals_access(self):
        a = make_hierarchy([[0]])
        b = make_hierarchy([[0]])
        assert a.access_range(0, 130, 4) == b.access(0, 130)
        assert a.counters() == b.counters()

    def test_access_range_matches_scalar_walk_exactly(self):
        """The batched fast path is an exact refactor: identical
        counters, costs, and LRU state to the line-at-a-time walk,
        across random spans, writes, and cross-domain sharing."""
        domains = [[0, 1], [2]]
        geometry = dict(l1_size=4 * LINE, l1_assoc=2, l2_size=16 * LINE,
                        l2_assoc=4)
        batched = make_hierarchy(domains, **geometry)
        scalar = make_hierarchy(domains, **geometry)
        rng = random.Random(13)
        total_b = total_s = 0
        for _ in range(400):
            seq = rng.randrange(3)
            addr = rng.randrange(48 * LINE)
            span = rng.choice([1, 4, LINE, 3 * LINE, PAGE_SIZE // 4,
                               PAGE_SIZE])
            write = rng.random() < 0.4
            total_b += batched.access_range(seq, addr, span, write=write)
            first, last = addr // LINE, (addr + max(1, span) - 1) // LINE
            for line in range(first, last + 1):
                total_s += scalar.access(seq, line * LINE, write=write)
        assert total_b == total_s
        assert batched.counters() == scalar.counters()
        # per-cache state (including LRU order) is identical too
        for seq in (0, 1, 2):
            assert batched.l1(seq)._sets == scalar.l1(seq)._sets
        for lb, ls in zip(batched.l2s, scalar.l2s):
            assert lb._sets == ls._sets

    def test_access_range_write_invalidates_sharers_per_line(self):
        h = make_hierarchy([[0], [1]])
        h.access_range(0, 0, PAGE_SIZE)              # seq 0 reads a page
        h.access_range(1, 0, PAGE_SIZE, write=True)  # seq 1 writes it all
        lines = PAGE_SIZE // LINE
        assert h.l1(0).invalidations == lines
        assert h.l2(1).invalidations == 0
        assert h.counters()["l2_invalidations"] == lines

    def test_access_range_deterministic(self):
        def drive():
            h = make_hierarchy([[0, 1]], l1_size=4 * LINE,
                               l2_size=8 * LINE)
            rng = random.Random(99)
            costs = [h.access_range(rng.randrange(2),
                                    rng.randrange(32 * LINE),
                                    rng.choice([1, LINE, PAGE_SIZE]),
                                    write=rng.random() < 0.5)
                     for _ in range(300)]
            return costs, h.counters()
        assert drive() == drive()

    def test_code_segments_stable_and_disjoint(self):
        h = make_hierarchy([[0]])
        a = h.code_segment(key=1, num_words=10)
        b = h.code_segment(key=2, num_words=10)
        assert a == h.code_segment(key=1, num_words=10)
        assert a != b
        # above physical memory: code never aliases data frames
        assert a >= h.params.physical_frames * PAGE_SIZE

    def test_topology_factory_shapes(self):
        from repro.core.mp import build_machine
        misp = build_machine([3], hierarchy=shared_l2_per_processor)
        smp = build_machine([0, 0, 0, 0],
                            hierarchy=private_l2_per_sequencer)
        one = build_machine([3, 0], hierarchy=shared_l2_global)
        assert len(misp.hierarchy.l2s) == 1
        assert len(smp.hierarchy.l2s) == 4
        assert len(one.hierarchy.l2s) == 1


# ----------------------------------------------------------------------
# Property: per-level hits + misses == accesses that reached the level
# ----------------------------------------------------------------------
def test_level_populations_balance():
    h = make_hierarchy([[0, 1], [2]], l1_size=4 * LINE, l2_size=16 * LINE)
    rng = random.Random(7)
    per_seq = {0: 0, 1: 0, 2: 0}
    for _ in range(5000):
        seq = rng.randrange(3)
        addr = rng.randrange(64) * LINE
        h.access(seq, addr, write=rng.random() < 0.3)
        per_seq[seq] += 1
    counters = h.counters()
    for seq, count in per_seq.items():
        assert h.l1(seq).hits + h.l1(seq).misses == count
    assert counters["l1_hits"] + counters["l1_misses"] == 5000
    # every L1 miss is one L2 reference, every L2 miss one memory access
    assert (counters["l2_hits"] + counters["l2_misses"]
            == counters["l1_misses"])
    assert counters["mem_accesses"] == counters["l2_misses"]


# ----------------------------------------------------------------------
# Machine integration
# ----------------------------------------------------------------------
SCALE = 0.05


@pytest.fixture(scope="module")
def misp_summary():
    return summarize_run(Session("misp", "1x8").run("RayTracer",
                                                    scale=SCALE))


@pytest.fixture(scope="module")
def smp_summary():
    return summarize_run(Session("smp", "smp8").run("RayTracer",
                                                    scale=SCALE))


class TestMachineIntegration:
    def test_shared_vs_private_l2_observable(self, misp_summary,
                                             smp_summary):
        """The acceptance criterion: same workload, default params --
        MISP (shared L2) and SMP (private L2s) report different
        L1-invalidation and L2-hit counts."""
        misp, smp = misp_summary.mem, smp_summary.mem
        assert misp.accesses > 1000 and smp.accesses > 1000
        assert misp.l2_hits != smp.l2_hits
        assert misp.l1_invalidations != smp.l1_invalidations
        # the qualitative shape: MISP's lock/data ping-pong refills
        # from the shared L2; SMP's goes through cross-L2
        # invalidations to memory
        assert misp.l2_hits > 100 and smp.l2_hits < misp.l2_hits // 10
        assert misp.l2_invalidations == 0
        assert smp.l2_invalidations > 100
        assert smp.mem_accesses > misp.mem_accesses

    def test_tlb_counters_surfaced(self, misp_summary):
        mem = misp_summary.mem
        assert mem.tlb_hits > 0 and mem.tlb_misses > 0
        assert mem.tlb_flushes >= 1    # CR3 write at switch-in

    def test_determinism(self):
        a = summarize_run(Session("misp", "1x4").run("gauss", scale=SCALE))
        b = summarize_run(Session("misp", "1x4").run("gauss", scale=SCALE))
        assert a.to_dict() == b.to_dict()

    def test_asm_fetch_and_data_go_through_hierarchy(self):
        from repro.core import build_machine
        from repro.isa import AsmStream, assemble
        params = DEFAULT_PARAMS.with_changes(timer_quantum=10**12,
                                             device_interrupt_period=0)
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("asm")
        space = proc.address_space
        space._next_vpn = 0x100000 // PAGE_SIZE
        space.reserve("data", 2)
        program = assemble("""
            li r0, 0x100000
            li r1, 7
            st r1, r0, 0
            ld r2, r0, 0
            halt
        """)
        stream = AsmStream(program, proc, params, label="m")
        machine.spawn_thread(proc, "m", stream, pinned_cpu=0)
        machine.run_to_completion(limit=10**10)
        assert stream.regs[2] == 7
        counters = machine.hierarchy.counters()
        # at least one fetch per retired instruction, plus the data ops
        assert (counters["l1_hits"] + counters["l1_misses"]
                >= stream.instructions_retired + 2)
        oms = machine.processors[0].oms
        assert oms.tlb.hits + oms.tlb.misses > 0


# ----------------------------------------------------------------------
# RunSummary plumbing
# ----------------------------------------------------------------------
class TestSummaryPlumbing:
    def test_defaults_not_shared_between_instances(self):
        """Regression: proxy/utilization/mem used to be single shared
        default instances across every RunSummary."""
        a = RunSummary("w1", "misp", "1x8", 1)
        b = RunSummary("w2", "misp", "1x8", 2)
        assert a.proxy is not b.proxy
        assert a.utilization is not b.utilization
        assert a.mem is not b.mem
        assert isinstance(a.proxy, ProxySummary)
        assert isinstance(a.utilization, UtilizationSummary)
        assert isinstance(a.mem, MemorySummary)

    def test_mem_round_trips_through_dict(self, misp_summary):
        clone = RunSummary.from_dict(misp_summary.to_dict())
        assert clone.mem == misp_summary.mem
        assert clone == misp_summary

    def test_from_dict_tolerates_missing_mem(self):
        data = RunSummary("w", "misp", "1x8", 1).to_dict()
        del data["mem"]
        assert RunSummary.from_dict(data).mem == MemorySummary()

    def test_hit_rates(self):
        mem = MemorySummary(l1_hits=3, l1_misses=1, l2_hits=1, l2_misses=0)
        assert mem.accesses == 4
        assert mem.l1_hit_rate == pytest.approx(0.75)
        assert mem.l2_hit_rate == pytest.approx(1.0)
        assert MemorySummary().l1_hit_rate == 0.0
