"""Unit tests for the MISP core: sequencers, processors, overhead
equations, configurations."""

import pytest

from repro.core import (
    MISPProcessor, Scenario, ScenarioTable, Sequencer, SequencerRole,
    build_machine, config_name, ideal_config_for_load, parse_config,
    proxy_egress_cost, proxy_ingress_cost, serialize_cost,
    total_sequencers,
)
from repro.core.overhead import SignalSensitivity
from repro.errors import ConfigurationError, ProtectionError


def _seq(seq_id=0, role=SequencerRole.OMS):
    return Sequencer(seq_id, role, tlb_entries=4)


# ----------------------------------------------------------------------
# Sequencer privilege and suspension semantics
# ----------------------------------------------------------------------
class TestSequencer:
    def test_oms_ring_transitions(self):
        oms = _seq()
        assert oms.ring == 3
        oms.enter_ring0()
        assert oms.ring == 0
        oms.exit_ring0()
        assert oms.ring == 3

    def test_ams_cannot_enter_ring0(self):
        ams = _seq(1, SequencerRole.AMS)
        with pytest.raises(ProtectionError):
            ams.enter_ring0()

    def test_nested_suspend_resume(self):
        seq = _seq()
        seq.suspend(now=10)
        seq.suspend(now=20)
        assert seq.resume(now=30) is False   # still one level down
        assert seq.resume(now=40) is True
        assert seq.suspended_cycles == 30    # 40 - 10

    def test_unbalanced_resume_rejected(self):
        seq = _seq()
        with pytest.raises(ProtectionError):
            seq.resume(now=0)

    def test_runnable_requires_everything(self):
        seq = _seq()
        assert not seq.runnable          # no stream
        from repro.exec.stream import DirectStream
        seq.stream = DirectStream(iter(()))
        assert seq.runnable
        seq.suspend(0)
        assert not seq.runnable
        seq.resume(1)
        seq.proxy_wait = True
        assert not seq.runnable


# ----------------------------------------------------------------------
# Processor topology and SIDs
# ----------------------------------------------------------------------
class TestProcessor:
    def make(self, n_ams=3):
        oms = _seq(0, SequencerRole.OMS)
        amss = [_seq(i + 1, SequencerRole.AMS) for i in range(n_ams)]
        return MISPProcessor(0, oms, amss)

    def test_sid_assignment(self):
        proc = self.make(3)
        assert proc.oms.sid == 0
        assert [a.sid for a in proc.amss] == [1, 2, 3]
        assert proc.by_sid(0) is proc.oms
        assert proc.by_sid(2) is proc.amss[1]

    def test_bad_sid(self):
        proc = self.make(2)
        with pytest.raises(ConfigurationError):
            proc.by_sid(3)
        with pytest.raises(ConfigurationError):
            proc.by_sid(-1)

    def test_roles_validated(self):
        with pytest.raises(ConfigurationError):
            MISPProcessor(0, _seq(0, SequencerRole.AMS), [])
        with pytest.raises(ConfigurationError):
            MISPProcessor(0, _seq(0), [_seq(1, SequencerRole.OMS)])

    def test_active_amss_tracks_streams(self):
        proc = self.make(2)
        assert proc.active_amss() == []
        from repro.exec.stream import DirectStream
        proc.amss[1].stream = DirectStream(iter(()))
        assert proc.active_amss() == [proc.amss[1]]
        assert proc.idle_ams() is proc.amss[0]

    def test_plain_cpu_has_no_ams(self):
        proc = self.make(0)
        assert not proc.has_ams
        assert proc.num_sequencers == 1


# ----------------------------------------------------------------------
# Scenario table (YIELD-CONDITIONAL registration)
# ----------------------------------------------------------------------
class TestScenarioTable:
    def test_register_lookup(self):
        table = ScenarioTable()
        handler = object()
        table.register(Scenario.PROXY_REQUEST, handler)
        assert table.lookup(Scenario.PROXY_REQUEST) is handler
        assert Scenario.PROXY_REQUEST in table

    def test_last_registration_wins(self):
        table = ScenarioTable()
        table.register(Scenario.USER_SIGNAL, 1)
        table.register(Scenario.USER_SIGNAL, 2)
        assert table.lookup(Scenario.USER_SIGNAL) == 2
        assert len(table) == 1

    def test_unregister(self):
        table = ScenarioTable()
        table.register(Scenario.USER_SIGNAL, 1)
        table.unregister(Scenario.USER_SIGNAL)
        assert table.lookup(Scenario.USER_SIGNAL) is None
        with pytest.raises(ConfigurationError):
            table.unregister(Scenario.USER_SIGNAL)


# ----------------------------------------------------------------------
# Overhead equations (Section 5.1)
# ----------------------------------------------------------------------
class TestOverheadEquations:
    def test_equation_1(self):
        assert serialize_cost(signal=5000, priv=3000) == 13_000

    def test_equation_2(self):
        assert proxy_egress_cost(signal=5000) == 15_000

    def test_equation_3(self):
        # proxy_ingress = signal + serialize
        assert proxy_ingress_cost(5000, 3000) == 5000 + 13_000

    def test_zero_signal_ideal_hardware(self):
        assert serialize_cost(0, 3000) == 3000
        assert proxy_egress_cost(0) == 0

    def test_sensitivity_added_cycles(self):
        model = SignalSensitivity(oms_events=10, ams_events=4,
                                  ideal_cycles=1_000_000)
        assert model.added_cycles(1000) == 2 * 1000 * 10 + 3 * 1000 * 4

    def test_sensitivity_fraction_linear_in_signal(self):
        model = SignalSensitivity(100, 50, ideal_cycles=10_000_000)
        f1 = model.overhead_fraction(500)
        f2 = model.overhead_fraction(1000)
        assert f2 == pytest.approx(2 * f1)

    def test_sensitivity_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            SignalSensitivity(1, 1, 0).overhead_fraction(500)


# ----------------------------------------------------------------------
# Configuration parsing (Figure 6)
# ----------------------------------------------------------------------
class TestConfigurations:
    @pytest.mark.parametrize("name,expected", [
        ("4x2", (1, 1, 1, 1)),
        ("2x4", (3, 3)),
        ("1x8", (7,)),
        ("1x4+4", (3, 0, 0, 0, 0)),
        ("1x7+1", (6, 0)),
        ("smp8", (0,) * 8),
        ("smp1", (0,)),
    ])
    def test_parse(self, name, expected):
        assert parse_config(name) == expected

    @pytest.mark.parametrize("name", ["", "x2", "0x4", "4x0", "banana"])
    def test_parse_rejects(self, name):
        with pytest.raises(ConfigurationError):
            parse_config(name)

    def test_all_figure7_configs_have_8_sequencers(self):
        from repro.core import FIGURE7_CONFIGS
        for name in FIGURE7_CONFIGS:
            assert total_sequencers(parse_config(name)) == 8

    @pytest.mark.parametrize("name", ["4x2", "2x4", "1x8", "1x4+4", "smp8"])
    def test_name_roundtrip(self, name):
        assert config_name(parse_config(name)) == name

    def test_ideal_config(self):
        assert ideal_config_for_load(8, 0) == (7,)
        assert ideal_config_for_load(8, 3) == (4, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            ideal_config_for_load(8, 8)

    def test_build_machine_topology(self):
        machine = build_machine("2x4")
        assert machine.num_cpus == 2
        assert len(machine.sequencers) == 8
        assert len(machine.ams_ids()) == 6
        assert machine.describe() == "2x4"

    def test_build_machine_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            build_machine([])
