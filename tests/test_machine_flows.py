"""Integration tests for the machine's architectural flows: ring
transitions, serialization, proxy execution, SIGNAL, context switches,
and blocking syscalls.  These verify the *timed choreography* matches
the Section 5.1 equations."""

import pytest

from repro.core import build_machine
from repro.errors import ConfigurationError
from repro.exec.ops import Compute, SignalShred, SyscallOp, Touch
from repro.params import DEFAULT_PARAMS
from repro.sim.trace import EventKind


def quiet_params(**changes):
    """Params with periodic interrupts pushed out of the way so single
    flows can be timed exactly."""
    base = dict(timer_quantum=10**12, device_interrupt_period=0)
    base.update(changes)
    return DEFAULT_PARAMS.with_changes(**base)


def run_app(machine, body, pinned_cpu=0, shredded=False):
    proc = machine.spawn_process("app")
    thread = machine.spawn_thread(proc, "main", body, pinned_cpu=pinned_cpu)
    thread.is_shredded = shredded
    machine.run_to_completion(limit=10**12)
    return proc, thread


# ----------------------------------------------------------------------
# OMS syscall: Equation 1 timing
# ----------------------------------------------------------------------
class TestRingSerialization:
    def test_syscall_without_ams_costs_priv_only(self):
        params = quiet_params()
        machine = build_machine("smp1", params=params)

        def body():
            yield SyscallOp("write")

        proc, thread = run_app(machine, body())
        # context switch in + syscall service
        expected = params.context_switch_cost + params.syscall_service_cost
        assert thread.exit_time == expected

    def test_syscall_with_active_ams_pays_two_signals(self):
        params = quiet_params()
        machine = build_machine([1], params=params)

        def worker():
            yield Compute(10_000_000)

        def body():
            yield SignalShred(1, worker(), label="w")
            yield SyscallOp("write")

        proc, thread = run_app(machine, body(), shredded=True)
        events = machine.trace
        assert events.total(EventKind.SYSCALL) == 1
        assert events.total(EventKind.AMS_SUSPEND) == 1
        assert events.total(EventKind.AMS_RESUME) == 1
        # Equation 1: the thread's critical path includes
        # signal (SIGNAL op) + 2*signal + priv for the syscall
        expected = (params.context_switch_cost
                    + params.signal_cost              # SIGNAL instruction
                    + 2 * params.signal_cost          # suspend + resume
                    + params.syscall_service_cost)
        assert thread.exit_time == expected

    def test_idle_team_skips_suspend_broadcast(self):
        params = quiet_params()
        machine = build_machine([2], params=params)

        def body():
            # no shreds started: AMSs idle, so Ring 0 entry is cheap
            yield SyscallOp("write")

        proc, thread = run_app(machine, body())
        assert machine.trace.total(EventKind.AMS_SUSPEND) == 0
        expected = params.context_switch_cost + params.syscall_service_cost
        assert thread.exit_time == expected

    def test_oms_page_fault_counts_and_retries(self):
        params = quiet_params()
        machine = build_machine("smp1", params=params)
        proc = machine.spawn_process("app")
        region = proc.address_space.reserve("d", 2)

        def body():
            yield Touch(region, 0)
            yield Touch(region, 0)   # now resident: no second fault
            yield Touch(region, 1)

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        machine.run_to_completion(limit=10**10)
        assert machine.trace.total(EventKind.PAGE_FAULT) == 2
        # the address space is released at process exit; the demand
        # faults themselves are what we can still observe
        assert proc.address_space.faults_serviced == 2


# ----------------------------------------------------------------------
# Proxy execution: Equations 2 and 3
# ----------------------------------------------------------------------
class TestProxyExecution:
    def test_ams_fault_goes_through_proxy(self):
        params = quiet_params()
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("app")
        region = proc.address_space.reserve("d", 1)

        def worker():
            yield Touch(region, 0)

        def body():
            yield SignalShred(1, worker(), label="w")
            yield Compute(10_000_000)

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        thread.is_shredded = True
        machine.run_to_completion(limit=10**10)
        trace = machine.trace
        ams_id = machine.ams_ids()[0]
        assert trace.total(EventKind.PAGE_FAULT, [ams_id]) == 1
        assert trace.total(EventKind.PROXY_REQUEST) == 1
        assert trace.total(EventKind.PROXY_BEGIN) == 1
        assert trace.total(EventKind.PROXY_END) == 1
        assert machine.proxy_stats.page_faults == 1
        assert proc.address_space.faults_serviced == 1

    def test_proxy_syscall_returns_to_shred(self):
        params = quiet_params()
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("app")
        done = []

        def worker():
            yield SyscallOp("write")
            done.append(True)
            yield Compute(1000)

        def body():
            yield SignalShred(1, worker(), label="w")
            yield Compute(60_000_000)

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        thread.is_shredded = True
        machine.run_to_completion(limit=10**10)
        assert done == [True]
        assert machine.proxy_stats.syscalls == 1

    def test_proxy_latency_accounting(self):
        params = quiet_params()
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("app")

        def worker():
            yield SyscallOp("write")

        def body():
            yield SignalShred(1, worker(), label="w")
            yield Compute(30_000_000)

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        thread.is_shredded = True
        machine.run_to_completion(limit=10**10)
        # Equations 2+3 lower bound: egress signal + ingress signal +
        # serialize(2*signal + priv)
        lower = (params.signal_cost                 # egress notify
                 + params.signal_cost               # impersonation
                 + 2 * params.signal_cost           # suspend + resume
                 + params.syscall_service_cost)
        assert machine.proxy_stats.total_latency >= lower

    def test_concurrent_proxies_are_serialized_fifo(self):
        params = quiet_params()
        machine = build_machine([3], params=params)
        proc = machine.spawn_process("app")
        region = proc.address_space.reserve("d", 8)
        order = []

        def worker(i):
            yield Touch(region, i)
            order.append(i)

        def body():
            for sid in (1, 2, 3):
                yield SignalShred(sid, worker(sid), label=f"w{sid}")
            yield Compute(80_000_000)

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        thread.is_shredded = True
        machine.run_to_completion(limit=10**10)
        assert sorted(order) == [1, 2, 3]
        assert machine.proxy_stats.requests == 3


# ----------------------------------------------------------------------
# SIGNAL semantics
# ----------------------------------------------------------------------
class TestSignal:
    def test_signal_to_self_rejected(self):
        machine = build_machine([1], params=quiet_params())
        proc = machine.spawn_process("app")

        def body():
            yield SignalShred(0, iter(()))

        machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        with pytest.raises(ConfigurationError):
            machine.run_to_completion(limit=10**9)

    def test_signal_to_busy_without_handler_rejected(self):
        machine = build_machine([1], params=quiet_params())
        proc = machine.spawn_process("app")

        def worker():
            yield Compute(50_000_000)

        def body():
            yield SignalShred(1, worker())
            yield SignalShred(1, worker())   # still running: error

        machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        with pytest.raises(ConfigurationError):
            machine.run_to_completion(limit=10**9)

    def test_signal_costs_signal_cycles(self):
        params = quiet_params()
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("app")

        def worker():
            yield Compute(100)

        def body():
            yield SignalShred(1, worker(), label="w")

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        machine.run_to_completion(limit=10**9)
        assert thread.exit_time == (params.context_switch_cost
                                    + params.signal_cost)

    def test_ams_reusable_after_shred_ends(self):
        params = quiet_params()
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("app")
        runs = []

        def worker(i):
            runs.append(i)
            yield Compute(1000)

        def body():
            yield SignalShred(1, worker(1), label="w1")
            yield Compute(2_000_000)   # let it finish
            yield SignalShred(1, worker(2), label="w2")
            yield Compute(2_000_000)

        machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        machine.run_to_completion(limit=10**10)
        assert runs == [1, 2]
        assert machine.trace.total(EventKind.SIGNAL_SENT) == 2


# ----------------------------------------------------------------------
# Context switching and multiprogramming
# ----------------------------------------------------------------------
class TestContextSwitch:
    def test_round_robin_shares_cpu(self):
        params = quiet_params(timer_quantum=1_000_000)
        machine = build_machine("smp1", params=params)
        proc_a = machine.spawn_process("a")
        proc_b = machine.spawn_process("b")

        def body():
            yield from (Compute(100_000) for _ in range(50))

        ta = machine.spawn_thread(proc_a, "a", body())
        tb = machine.spawn_thread(proc_b, "b", body())
        machine.run_to_completion(limit=10**10)
        assert ta.context_switches > 0 or tb.context_switches > 0
        assert machine.trace.total(EventKind.TIMER) > 0
        # both made progress interleaved: completion times within 2x
        assert abs(ta.exit_time - tb.exit_time) < max(ta.exit_time,
                                                      tb.exit_time)

    def test_shredded_thread_freezes_team_on_switch(self):
        params = quiet_params(timer_quantum=2_000_000)
        machine = build_machine([1], params=params)
        proc = machine.spawn_process("shredded")
        other = machine.spawn_process("other")
        progress = []

        def worker():
            for i in range(40):
                progress.append(machine.now)
                yield Compute(500_000)

        def body():
            yield SignalShred(1, worker(), label="w")
            yield from (Compute(100_000) for _ in range(200))

        def bg():
            yield from (Compute(100_000) for _ in range(200))

        thread = machine.spawn_thread(proc, "main", body(), pinned_cpu=0)
        thread.is_shredded = True
        machine.spawn_thread(other, "bg", bg(), pinned_cpu=0)
        machine.run_to_completion(limit=10**11)
        # while the shredded thread was switched out, the worker made
        # no progress: there must be a gap > quantum in its timeline
        gaps = [b - a for a, b in zip(progress, progress[1:])]
        assert max(gaps) >= params.timer_quantum // 2
        assert machine.trace.total(EventKind.CONTEXT_SWITCH) > 2

    def test_blocking_syscall_yields_cpu(self):
        params = quiet_params()
        machine = build_machine("smp1", params=params)
        proc_a = machine.spawn_process("sleeper")
        proc_b = machine.spawn_process("worker")

        def sleeper():
            yield SyscallOp("nanosleep", arg=5_000_000)
            yield Compute(1000)

        def worker():
            yield Compute(3_000_000)

        ta = machine.spawn_thread(proc_a, "s", sleeper())
        tb = machine.spawn_thread(proc_b, "w", worker())
        machine.run_to_completion(limit=10**10)
        # the worker ran to completion inside the sleeper's block window
        assert tb.exit_time < ta.exit_time
        assert ta.exit_time >= 5_000_000
