"""Unit tests for the memory substrate (physical, page table, TLB,
address spaces, demand paging)."""

import pytest

from repro.errors import MemoryError_
from repro.mem import (
    TLB, AddressSpace, PageTable, PhysicalMemory, page_offset, vpn_of,
)
from repro.params import PAGE_SIZE


# ----------------------------------------------------------------------
# PhysicalMemory
# ----------------------------------------------------------------------
class TestPhysicalMemory:
    def test_alloc_distinct_frames(self):
        mem = PhysicalMemory(8)
        frames = {mem.alloc_frame() for _ in range(8)}
        assert len(frames) == 8
        assert mem.frames_free == 0

    def test_out_of_memory(self):
        mem = PhysicalMemory(2)
        mem.alloc_frame()
        mem.alloc_frame()
        with pytest.raises(MemoryError_):
            mem.alloc_frame()

    def test_free_recycles(self):
        mem = PhysicalMemory(1)
        frame = mem.alloc_frame()
        mem.free_frame(frame)
        assert mem.alloc_frame() == frame

    def test_free_unallocated_rejected(self):
        mem = PhysicalMemory(4)
        with pytest.raises(MemoryError_):
            mem.free_frame(3)

    def test_words_default_zero(self):
        mem = PhysicalMemory(2)
        assert mem.read_word(0) == 0

    def test_word_roundtrip(self):
        mem = PhysicalMemory(2)
        mem.write_word(128, 0xDEADBEEF)
        assert mem.read_word(128) == 0xDEADBEEF

    def test_word_wraps_32bit(self):
        mem = PhysicalMemory(2)
        mem.write_word(0, 2**32 + 5)
        assert mem.read_word(0) == 5

    def test_word_alignment_shares_storage(self):
        mem = PhysicalMemory(2)
        mem.write_word(100, 7)
        assert mem.read_word(102) == 7  # same word

    def test_free_clears_contents(self):
        mem = PhysicalMemory(2)
        frame = mem.alloc_frame()
        mem.write_word(frame * PAGE_SIZE + 8, 99)
        mem.free_frame(frame)
        again = mem.alloc_frame()
        assert mem.read_word(again * PAGE_SIZE + 8) == 0

    def test_out_of_range_address(self):
        mem = PhysicalMemory(1)
        with pytest.raises(MemoryError_):
            mem.read_word(PAGE_SIZE)

    def test_needs_at_least_one_frame(self):
        with pytest.raises(MemoryError_):
            PhysicalMemory(0)


# ----------------------------------------------------------------------
# Address helpers and PageTable
# ----------------------------------------------------------------------
class TestPageTable:
    def test_vpn_and_offset(self):
        vaddr = 5 * PAGE_SIZE + 123
        assert vpn_of(vaddr) == 5
        assert page_offset(vaddr) == 123

    def test_vpn_out_of_range(self):
        with pytest.raises(MemoryError_):
            vpn_of(1 << 32)

    def test_map_and_lookup(self):
        table = PageTable()
        table.map(7, frame=3)
        assert table.lookup(7).frame == 3
        assert table.lookup(8) is None
        assert 7 in table and len(table) == 1

    def test_double_map_rejected(self):
        table = PageTable()
        table.map(7, frame=3)
        with pytest.raises(MemoryError_):
            table.map(7, frame=4)

    def test_unmap(self):
        table = PageTable()
        table.map(7, frame=3)
        assert table.unmap(7).frame == 3
        assert table.lookup(7) is None
        with pytest.raises(MemoryError_):
            table.unmap(7)

    def test_protect(self):
        table = PageTable()
        table.map(1, frame=0)
        table.protect(1, writable=False)
        assert not table.lookup(1).writable

    def test_distinct_bases(self):
        assert PageTable().base != PageTable().base


# ----------------------------------------------------------------------
# TLB
# ----------------------------------------------------------------------
class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4)
        assert tlb.lookup(1) is None
        tlb.insert(1, 10)
        assert tlb.lookup(1) == 10
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(2)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        tlb.lookup(1)           # 1 is now MRU
        tlb.insert(3, 30)       # evicts 2
        assert 1 in tlb and 3 in tlb and 2 not in tlb

    def test_reinsert_updates(self):
        tlb = TLB(2)
        tlb.insert(1, 10)
        tlb.insert(1, 11)
        assert tlb.lookup(1) == 11
        assert len(tlb) == 1

    def test_flush(self):
        tlb = TLB(4)
        tlb.insert(1, 10)
        tlb.flush()
        assert len(tlb) == 0 and tlb.flushes == 1

    def test_invalidate_single(self):
        tlb = TLB(4)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        assert tlb.invalidate(1) is True
        assert tlb.invalidate(1) is False
        assert 2 in tlb

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            TLB(0)


# ----------------------------------------------------------------------
# AddressSpace and demand paging
# ----------------------------------------------------------------------
class TestAddressSpace:
    def make(self, frames=64):
        return AddressSpace(PhysicalMemory(frames), name="test")

    def test_reserve_disjoint_regions(self):
        space = self.make()
        a = space.reserve("a", 4)
        b = space.reserve("b", 4)
        pages_a = {a.vpn(i) for i in range(4)}
        pages_b = {b.vpn(i) for i in range(4)}
        assert not pages_a & pages_b

    def test_duplicate_region_name(self):
        space = self.make()
        space.reserve("a", 1)
        with pytest.raises(MemoryError_):
            space.reserve("a", 1)

    def test_region_lookup(self):
        space = self.make()
        region = space.reserve("data", 2)
        assert space.region("data") is region
        with pytest.raises(MemoryError_):
            space.region("nope")

    def test_region_bounds_checked(self):
        space = self.make()
        region = space.reserve("data", 2)
        with pytest.raises(MemoryError_):
            region.vpn(2)
        with pytest.raises(MemoryError_):
            region.vaddr(region.size_bytes)

    def test_demand_zero_fault(self):
        space = self.make()
        region = space.reserve("data", 2)
        vpn = region.vpn(0)
        assert not space.is_resident(vpn)
        assert space.translate(region.base_vaddr) is None
        space.handle_fault(vpn)
        assert space.is_resident(vpn)
        assert space.translate(region.base_vaddr) is not None
        assert space.faults_serviced == 1

    def test_spurious_fault_rejected(self):
        space = self.make()
        region = space.reserve("data", 1)
        space.handle_fault(region.vpn(0))
        with pytest.raises(MemoryError_):
            space.handle_fault(region.vpn(0))

    def test_wild_access_rejected(self):
        space = self.make()
        with pytest.raises(MemoryError_):
            space.handle_fault(0)   # page 0 is in no region

    def test_release_returns_frames(self):
        physical = PhysicalMemory(8)
        space = AddressSpace(physical)
        region = space.reserve("data", 4)
        for i in range(4):
            space.handle_fault(region.vpn(i))
        assert physical.frames_allocated == 4
        space.release()
        assert physical.frames_allocated == 0
        assert space.resident_pages() == 0

    def test_translate_offset(self):
        space = self.make()
        region = space.reserve("data", 1)
        pte = space.handle_fault(region.vpn(0))
        paddr = space.translate(region.base_vaddr + 100)
        assert paddr == pte.frame * PAGE_SIZE + 100

    def test_region_needs_pages(self):
        space = self.make()
        with pytest.raises(MemoryError_):
            space.reserve("empty", 0)
