"""Tests for the mini-ISA: assembler, interpreter semantics, and the
MISP extension instructions at ISA granularity."""

import pytest

from repro.core import build_machine
from repro.errors import AssemblerError, InvalidInstructionError
from repro.isa import SP, AsmStream, Opcode, assemble
from repro.params import DEFAULT_PARAMS, PAGE_SIZE
from repro.sim.trace import EventKind


def quiet_params():
    return DEFAULT_PARAMS.with_changes(timer_quantum=10**12,
                                       device_interrupt_period=0)


def make_env(ams=1, data_pages=4, stack_pages=1):
    """A machine + process with a data region at 0x100000 and a stack."""
    machine = build_machine([ams], params=quiet_params())
    proc = machine.spawn_process("asm")
    space = proc.address_space
    space._next_vpn = 0x100000 // PAGE_SIZE
    data = space.reserve("data", data_pages)
    stack = space.reserve("stack", stack_pages)
    stack_top = stack.base_vaddr + stack.size_bytes
    return machine, proc, data, stack_top


def run_asm(source, ams=1, shredded=False, data_pages=4):
    machine, proc, data, stack_top = make_env(ams, data_pages)
    program = assemble(source)
    stream = AsmStream(program, proc, quiet_params(),
                       stack_top=stack_top, label="main")
    thread = machine.spawn_thread(proc, "main", stream, pinned_cpu=0)
    thread.is_shredded = shredded
    machine.run_to_completion(limit=10**10)
    return machine, stream


# ----------------------------------------------------------------------
# Assembler
# ----------------------------------------------------------------------
class TestAssembler:
    def test_labels_resolve(self):
        program = assemble("start: nop\n jmp start\n")
        assert program[1].opcode is Opcode.JMP
        assert program[1].target == 0

    def test_forward_labels(self):
        program = assemble("jmp end\nnop\nend: halt\n")
        assert program[0].target == 2

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; full-line comment
            li r0, 5   # trailing comment

            halt
        """)
        assert len(program) == 2

    def test_sp_alias(self):
        program = assemble("mov r0, sp\nhalt")
        assert program[0].rs == SP

    def test_hex_immediates(self):
        program = assemble("li r0, 0x10\nhalt")
        assert program[0].imm == 16

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frob r0, r1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("li r9, 1")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblerError):
            assemble("add r0, r1")


# ----------------------------------------------------------------------
# Interpreter semantics
# ----------------------------------------------------------------------
class TestInterpreter:
    def test_arithmetic(self):
        _, stream = run_asm("""
            li r0, 10
            li r1, 3
            add r2, r0, r1
            sub r3, r0, r1
            mul r4, r0, r1
            addi r5, r0, -4
            halt
        """)
        assert stream.regs[2] == 13
        assert stream.regs[3] == 7
        assert stream.regs[4] == 30
        assert stream.regs[5] == 6

    def test_wraparound_32bit(self):
        _, stream = run_asm("""
            li r0, 0xFFFFFFFF
            addi r0, r0, 2
            halt
        """)
        assert stream.regs[0] == 1

    def test_load_store_roundtrip(self):
        _, stream = run_asm("""
            li r0, 0x100000
            li r1, 1234
            st r1, r0, 8
            ld r2, r0, 8
            halt
        """)
        assert stream.regs[2] == 1234

    def test_loop_and_branches(self):
        _, stream = run_asm("""
            li r0, 0       ; sum
            li r1, 5       ; counter
            li r2, 0
        loop:
            add r0, r0, r1
            addi r1, r1, -1
            bne r1, r2, loop
            halt
        """)
        assert stream.regs[0] == 15

    def test_blt(self):
        _, stream = run_asm("""
            li r0, 1
            li r1, 2
            li r3, 0
            blt r0, r1, less
            li r3, 100
            halt
        less:
            li r3, 7
            halt
        """)
        assert stream.regs[3] == 7

    def test_push_pop(self):
        _, stream = run_asm("""
            li r0, 11
            li r1, 22
            push r0
            push r1
            pop r2
            pop r3
            halt
        """)
        assert stream.regs[2] == 22 and stream.regs[3] == 11

    def test_call_ret(self):
        _, stream = run_asm("""
            li r0, 5
            call double
            call double
            halt
        double:
            add r0, r0, r0
            ret
        """)
        assert stream.regs[0] == 20

    def test_syscall_traps(self):
        machine, stream = run_asm("""
            sys write
            halt
        """)
        assert machine.trace.total(EventKind.SYSCALL) == 1

    def test_spin_consumes_cycles(self):
        machine, stream = run_asm("""
            spin 100000
            halt
        """)
        assert machine.kernel.processes[0].exit_time >= 100_000

    def test_load_page_faults_once(self):
        machine, stream = run_asm("""
            li r0, 0x100000
            ld r1, r0, 0
            ld r2, r0, 4
            halt
        """)
        assert machine.trace.total(EventKind.PAGE_FAULT) == 1
        assert stream.regs[1] == 0   # demand-zero

    def test_pc_out_of_range(self):
        machine, proc, data, stack_top = make_env()
        stream = AsmStream(assemble("nop"), proc, quiet_params(),
                           stack_top=stack_top)
        # manually corrupt the PC
        stream.pc = 99
        with pytest.raises(InvalidInstructionError):
            stream.next_op()

    def test_instructions_retired_counted(self):
        _, stream = run_asm("nop\nnop\nnop\nhalt")
        assert stream.instructions_retired == 3


# ----------------------------------------------------------------------
# MISP extension at ISA level
# ----------------------------------------------------------------------
class TestMISPInstructions:
    def test_signal_starts_shred_on_ams(self):
        machine, stream = run_asm("""
            li r0, 1            ; SID
            li r1, 0x101000     ; worker stack
            signal r0, worker, r1
            spin 200000         ; let the worker run
            halt
        worker:
            li r2, 0x100000
            li r3, 77
            st r3, r2, 0        ; proxy-executed page fault
            halt
        """, shredded=True)
        trace = machine.trace
        assert trace.total(EventKind.SIGNAL_SENT) == 1
        assert trace.total(EventKind.SHRED_START) == 1
        assert machine.proxy_stats.page_faults == 1

    def test_worker_result_visible_through_shared_memory(self):
        machine, stream = run_asm("""
            li r0, 1
            li r1, 0x101000
            li r2, 0x100000
            li r3, 0
            st r3, r2, 0        ; make the mailbox resident (OMS fault)
            signal r0, worker, r1
            li r4, 99
        wait:
            ld r3, r2, 0
            bne r3, r4, wait
            halt
        worker:
            li r2, 0x100000
            li r4, 99
            st r4, r2, 0
            halt
        """, shredded=True)
        assert stream.regs[3] == 99

    def test_yield_conditional_handler(self):
        # main registers a handler, spins; the worker SIGNALs main
        # (a busy sequencer) -> asynchronous control transfer
        machine, stream = run_asm("""
            li r0, 1
            li r1, 0x101000
            ymonitor handler
            signal r0, worker, r1
            li r5, 0
        wait:
            spin 5000
            beq r5, r5, check   ; always
        check:
            li r4, 1
            bne r5, r4, wait    ; loop until handler sets r5=1
            halt
        handler:
            li r5, 1            ; observed the ingress signal
            yret
        worker:
            li r0, 0            ; SID 0 = the OMS
            li r1, 0x101800
            signal r0, back, r1 ; ingress signal to the busy OMS
            halt
        back:
            halt                ; never used as a continuation
        """, shredded=True)
        assert stream.regs[5] == 1
        assert machine.trace.total(EventKind.YIELD_EVENT) == 1

    def test_yret_outside_handler_rejected(self):
        with pytest.raises(InvalidInstructionError):
            run_asm("yret\nhalt")

    def test_signal_continuation_gets_eip_esp(self):
        machine, proc, data, stack_top = make_env(ams=1)
        program = assemble("""
            li r0, 1
            li r1, 0x200000
            signal r0, entry, r1
            spin 100000
            halt
        entry:
            halt
        """)
        stream = AsmStream(program, proc, quiet_params(),
                           stack_top=stack_top)
        thread = machine.spawn_thread(proc, "m", stream, pinned_cpu=0)
        thread.is_shredded = True
        machine.run_to_completion(limit=10**10)
        ams = machine.processors[0].amss[0]
        # the AMS ran a continuation built from ⟨EIP=entry, ESP=r1⟩
        assert machine.trace.total(EventKind.SHRED_END,
                                   [ams.seq_id]) == 1
