"""Tests for the ShredLib runtime: work queue, gang scheduler,
synchronization primitives, TLS, and legacy shims.

Most tests run real shredded programs on a small MISP machine via the
standard runner -- the sync primitives only make sense under the
machine's event interleaving.
"""

import pytest

from repro.errors import ShredLibError
from repro.exec.ops import Compute
from repro.params import DEFAULT_PARAMS
from repro.shredlib import (
    PthreadsAPI, QueuePolicy, ShredRuntime, ShredState, TlsKey, Win32API,
)
from repro.workloads.base import WorkloadSpec
from repro.workloads.runner import run_misp


def run_program(build, ams_count=3, policy=QueuePolicy.FIFO):
    spec = WorkloadSpec("test-prog", "micro", build)
    return run_misp(spec, ams_count=ams_count, policy=policy)


# ----------------------------------------------------------------------
# Runtime: queue, policies, affinity
# ----------------------------------------------------------------------
class TestRuntime:
    def make(self):
        return ShredRuntime(DEFAULT_PARAMS)

    def test_fifo_policy(self):
        rt = self.make()
        a = rt.new_shred(iter(()), "a")
        b = rt.new_shred(iter(()), "b")
        rt.push(a)
        rt.push(b)
        assert rt.pop() is a
        assert rt.pop() is b
        assert rt.pop() is None

    def test_lifo_policy(self):
        rt = ShredRuntime(DEFAULT_PARAMS, policy=QueuePolicy.LIFO)
        a, b = rt.new_shred(iter(()), "a"), rt.new_shred(iter(()), "b")
        rt.push(a)
        rt.push(b)
        assert rt.pop() is b

    def test_affinity_respected(self):
        rt = self.make()
        pinned = rt.new_shred(iter(()), "pinned")
        pinned.affinity = 0
        free = rt.new_shred(iter(()), "free")
        rt.push(pinned)
        rt.push(free)
        # worker 3 must skip the pinned shred
        assert rt.pop(worker_id=3) is free
        assert rt.pop(worker_id=3) is None
        assert rt.pop(worker_id=0) is pinned

    def test_finish_wakes_joiners(self):
        rt = self.make()
        worker = rt.new_shred(iter(()), "w")
        waiter = rt.new_shred(iter(()), "j")
        waiter.state = ShredState.BLOCKED
        worker.joiners.append(waiter)
        rt.finish_shred(worker)
        assert waiter.state is ShredState.READY
        assert rt.pop() is waiter

    def test_main_finish_sets_shutdown(self):
        rt = self.make()
        main = rt.new_shred(iter(()), "main")
        rt.set_main(main)
        assert not rt.shutdown
        rt.finish_shred(main)
        assert rt.shutdown

    def test_double_finish_rejected(self):
        rt = self.make()
        shred = rt.new_shred(iter(()), "s")
        rt.finish_shred(shred)
        with pytest.raises(ShredLibError):
            rt.finish_shred(shred)

    def test_cannot_enqueue_finished(self):
        rt = self.make()
        shred = rt.new_shred(iter(()), "s")
        rt.finish_shred(shred)
        with pytest.raises(ShredLibError):
            rt.push(shred)

    def test_counters(self):
        rt = self.make()
        shreds = [rt.new_shred(iter(()), str(i)) for i in range(3)]
        assert rt.created == 3 and rt.active == 3
        rt.finish_shred(shreds[0])
        assert rt.finished == 1 and rt.active == 2


# ----------------------------------------------------------------------
# End-to-end shred programs: create/join/yield, results
# ----------------------------------------------------------------------
class TestShredPrograms:
    def test_join_returns_result(self):
        outcome = {}

        def build(api, nworkers):
            def worker():
                yield Compute(1000)
                return 42

            def main():
                shred = yield from api.create(worker())
                outcome["result"] = (yield from api.join(shred))
            return main()

        run_program(build)
        assert outcome["result"] == 42

    def test_join_finished_shred_is_immediate(self):
        def build(api, nworkers):
            def worker():
                yield Compute(100)

            def main():
                shred = yield from api.create(worker())
                yield Compute(5_000_000)   # let it finish first
                assert shred.done
                yield from api.join(shred)
            return main()

        result = run_program(build)
        assert result.runtime.active == 0

    def test_nested_shred_creation(self):
        seen = []

        def build(api, nworkers):
            def grandchild(i):
                seen.append(i)
                yield Compute(100)

            def child(i):
                shred = yield from api.create(grandchild(i))
                yield from api.join(shred)

            def main():
                kids = []
                for i in range(4):
                    kids.append((yield from api.create(child(i))))
                yield from api.join_all(kids)
            return main()

        run_program(build)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_voluntary_yield_requeues(self):
        def build(api, nworkers):
            def worker():
                yield Compute(100)
                yield from api.yield_()
                yield Compute(100)

            def main():
                shred = yield from api.create(worker())
                yield from api.join(shred)
                assert shred.times_yielded == 1
            return main()

        run_program(build, ams_count=0)   # single worker forces requeue

    def test_exit_terminates_early(self):
        reached = []

        def build(api, nworkers):
            def worker():
                yield Compute(100)
                yield from api.exit()
                reached.append("after-exit")   # must never run
                yield Compute(100)

            def main():
                shred = yield from api.create(worker())
                yield from api.join(shred)
            return main()

        run_program(build)
        assert reached == []

    def test_m_to_n_scheduling_uses_all_workers(self):
        workers_used = set()

        def build(api, nworkers):
            def worker(i):
                yield Compute(500_000)

            def main():
                shreds = []
                for i in range(16):
                    shreds.append((yield from api.create(worker(i))))
                yield from api.join_all(shreds)
                for s in shreds:
                    workers_used.add(s.last_worker)
            return main()

        run_program(build, ams_count=3)
        assert len(workers_used) > 1   # shreds spread over sequencers

    def test_tls_per_shred(self):
        values = {}
        key = TlsKey("test")

        def build(api, nworkers):
            def worker(shred, i):
                key.set(shred, i * 10)
                yield Compute(1000)
                values[i] = key.get(shred)

            def main():
                shreds = []
                for i in range(4):
                    shreds.append((yield from api.create_fn(worker, i)))
                yield from api.join_all(shreds)
            return main()

        run_program(build)
        assert values == {0: 0, 1: 10, 2: 20, 3: 30}


# ----------------------------------------------------------------------
# Synchronization primitives under real interleaving
# ----------------------------------------------------------------------
class TestSync:
    def test_mutex_mutual_exclusion(self):
        holders = []

        def build(api, nworkers):
            mutex = api.mutex("m")
            state = {"inside": 0, "max_inside": 0}

            def worker(i):
                for _ in range(5):
                    yield from mutex.acquire()
                    state["inside"] += 1
                    state["max_inside"] = max(state["max_inside"],
                                              state["inside"])
                    yield Compute(10_000)
                    state["inside"] -= 1
                    yield from mutex.release()
                    yield Compute(1_000)

            def main():
                shreds = []
                for i in range(6):
                    shreds.append((yield from api.create(worker(i))))
                yield from api.join_all(shreds)
                holders.append(state["max_inside"])
            return main()

        run_program(build, ams_count=5)
        assert holders == [1]   # never two inside the critical section

    def test_mutex_release_unlocked_rejected(self):
        def build(api, nworkers):
            mutex = api.mutex("m")

            def main():
                yield Compute(100)
                with pytest.raises(ShredLibError):
                    yield from mutex.release()
            return main()

        run_program(build)

    def test_condvar_producer_consumer(self):
        consumed = []

        def build(api, nworkers):
            mutex = api.mutex("m")
            cond = api.condvar("c")
            queue = []

            def producer():
                for i in range(8):
                    yield Compute(5_000)
                    yield from mutex.acquire()
                    queue.append(i)
                    yield from cond.notify_one()
                    yield from mutex.release()

            def consumer():
                for _ in range(8):
                    yield from mutex.acquire()
                    while not queue:
                        yield from cond.wait(mutex)
                    consumed.append(queue.pop(0))
                    yield from mutex.release()

            def main():
                p = yield from api.create(producer())
                c = yield from api.create(consumer())
                yield from api.join_all([p, c])
            return main()

        run_program(build)
        assert consumed == list(range(8))

    def test_condvar_broadcast_wakes_all(self):
        woken = []

        def build(api, nworkers):
            mutex = api.mutex("m")
            cond = api.condvar("c")
            state = {"go": False}

            def waiter(i):
                yield from mutex.acquire()
                while not state["go"]:
                    yield from cond.wait(mutex)
                woken.append(i)
                yield from mutex.release()

            def main():
                shreds = []
                for i in range(4):
                    shreds.append((yield from api.create(waiter(i))))
                yield Compute(3_000_000)
                yield from mutex.acquire()
                state["go"] = True
                yield from cond.notify_all()
                yield from mutex.release()
                yield from api.join_all(shreds)
            return main()

        run_program(build)
        assert sorted(woken) == [0, 1, 2, 3]

    def test_semaphore_bounds_concurrency(self):
        def build(api, nworkers):
            sem = api.semaphore(2, "s")
            state = {"inside": 0, "max": 0}

            def worker(i):
                yield from sem.wait()
                state["inside"] += 1
                state["max"] = max(state["max"], state["inside"])
                yield Compute(20_000)
                state["inside"] -= 1
                yield from sem.post()

            def main():
                shreds = []
                for i in range(8):
                    shreds.append((yield from api.create(worker(i))))
                yield from api.join_all(shreds)
                assert state["max"] <= 2
            return main()

        run_program(build, ams_count=7)

    def test_event_blocks_until_set(self):
        order = []

        def build(api, nworkers):
            event = api.event(manual_reset=True)

            def waiter(i):
                yield from event.wait()
                order.append(f"woke{i}")

            def main():
                shreds = []
                for i in range(3):
                    shreds.append((yield from api.create(waiter(i))))
                yield Compute(2_000_000)
                order.append("set")
                yield from event.set()
                yield from api.join_all(shreds)
            return main()

        run_program(build)
        assert order[0] == "set" and len(order) == 4

    def test_auto_reset_event_wakes_one_per_set(self):
        woken = []

        def build(api, nworkers):
            event = api.event(manual_reset=False)

            def waiter(i):
                yield from event.wait()
                woken.append(i)

            def main():
                shreds = []
                for i in range(3):
                    shreds.append((yield from api.create(waiter(i))))
                yield Compute(2_000_000)
                for _ in range(3):
                    yield from event.set()
                    yield Compute(1_000_000)
                yield from api.join_all(shreds)
            return main()

        run_program(build)
        assert sorted(woken) == [0, 1, 2]

    def test_barrier_synchronizes_phases(self):
        phases = {i: [] for i in range(4)}

        def build(api, nworkers):
            barrier = api.barrier(4)
            clock = {"phase": 0}

            def worker(i):
                for phase in range(3):
                    yield Compute((i + 1) * 10_000)   # skewed arrival
                    phases[i].append(clock["phase"])
                    serial = yield from barrier.wait()
                    if serial:
                        clock["phase"] += 1

            def main():
                shreds = []
                for i in range(4):
                    shreds.append((yield from api.create(worker(i))))
                yield from api.join_all(shreds)
            return main()

        run_program(build, ams_count=7)
        for i in range(4):
            assert phases[i] == [0, 1, 2]

    def test_rwlock_readers_share_writers_exclude(self):
        def build(api, nworkers):
            rw = api.rwlock("rw")
            state = {"readers": 0, "writers": 0, "max_readers": 0,
                     "violation": False}

            def reader(i):
                for _ in range(3):
                    yield from rw.acquire_read()
                    state["readers"] += 1
                    state["max_readers"] = max(state["max_readers"],
                                               state["readers"])
                    if state["writers"]:
                        state["violation"] = True
                    yield Compute(8_000)
                    state["readers"] -= 1
                    yield from rw.release_read()

            def writer():
                for _ in range(3):
                    yield from rw.acquire_write()
                    state["writers"] += 1
                    if state["readers"] or state["writers"] > 1:
                        state["violation"] = True
                    yield Compute(8_000)
                    state["writers"] -= 1
                    yield from rw.release_write()
                    yield Compute(2_000)

            def main():
                shreds = []
                for i in range(4):
                    shreds.append((yield from api.create(reader(i))))
                shreds.append((yield from api.create(writer())))
                yield from api.join_all(shreds)
                assert not state["violation"]
                assert state["max_readers"] >= 2   # sharing observed
            return main()

        run_program(build, ams_count=7)

    def test_critical_section_spin_then_block(self):
        def build(api, nworkers):
            cs = api.critical_section("cs", spin_count=2)
            state = {"inside": 0, "bad": False}

            def worker(i):
                for _ in range(4):
                    yield from cs.enter()
                    state["inside"] += 1
                    if state["inside"] > 1:
                        state["bad"] = True
                    yield Compute(5_000)
                    state["inside"] -= 1
                    yield from cs.leave()

            def main():
                shreds = []
                for i in range(4):
                    shreds.append((yield from api.create(worker(i))))
                yield from api.join_all(shreds)
                assert not state["bad"]
            return main()

        run_program(build)

    def test_contention_is_logged(self):
        def build(api, nworkers):
            mutex = api.mutex("hot")

            def worker(i):
                yield from mutex.acquire()
                yield Compute(50_000)
                yield from mutex.release()

            def main():
                shreds = []
                for i in range(6):
                    shreds.append((yield from api.create(worker(i))))
                yield from api.join_all(shreds)
            return main()

        result = run_program(build, ams_count=5)
        assert result.runtime.log.contention("hot") > 0


# ----------------------------------------------------------------------
# Legacy API shims
# ----------------------------------------------------------------------
class TestShims:
    def test_pthreads_roundtrip(self):
        results = []

        def build(api, nworkers):
            pt = PthreadsAPI(api)

            def worker(i):
                yield Compute(1000)
                return i * i

            def main():
                threads = []
                for i in range(4):
                    t = yield from pt.pthread_create(worker, i)
                    threads.append(t)
                for t in threads:
                    results.append((yield from pt.pthread_join(t)))
            return main()

        run_program(build)
        assert results == [0, 1, 4, 9]

    def test_pthread_mutex_and_cond(self):
        def build(api, nworkers):
            pt = PthreadsAPI(api)
            mutex = pt.pthread_mutex_init()
            cond = pt.pthread_cond_init()
            state = {"ready": False}

            def waiter():
                yield from pt.pthread_mutex_lock(mutex)
                while not state["ready"]:
                    yield from pt.pthread_cond_wait(cond, mutex)
                yield from pt.pthread_mutex_unlock(mutex)

            def main():
                t = yield from pt.pthread_create(waiter)
                yield Compute(1_000_000)
                yield from pt.pthread_mutex_lock(mutex)
                state["ready"] = True
                yield from pt.pthread_cond_signal(cond)
                yield from pt.pthread_mutex_unlock(mutex)
                yield from pt.pthread_join(t)
                assert pt.calls_translated >= 7
            return main()

        run_program(build)

    def test_win32_threads_and_events(self):
        def build(api, nworkers):
            w32 = Win32API(api)
            done = w32.CreateEvent(manual_reset=True)

            def worker():
                yield Compute(10_000)
                yield from w32.SetEvent(done)

            def main():
                handle = yield from w32.CreateThread(worker)
                yield from w32.WaitForSingleObject(done)
                yield from w32.WaitForSingleObject(handle)
                w32.CloseHandle(handle)
                with pytest.raises(ShredLibError):
                    yield from w32.WaitForSingleObject(handle)
            return main()

        run_program(build)

    def test_win32_semaphore(self):
        def build(api, nworkers):
            w32 = Win32API(api)
            sem = w32.CreateSemaphore(0)

            def worker():
                yield Compute(5_000)
                yield from w32.ReleaseSemaphore(sem, 1)

            def main():
                handle = yield from w32.CreateThread(worker)
                yield from w32.WaitForSingleObject(sem)
                yield from w32.WaitForSingleObject(handle)
            return main()

        run_program(build)

    def test_tls_key_free(self):
        key = TlsKey("k")
        key.free()
        from repro.shredlib.shred import Shred
        with pytest.raises(ShredLibError):
            key.get(Shred(0, iter(()), "s"))
