"""Tests for the layered experiment service: the content-addressed
ResultStore (metrics, eviction, quarantine, temp-file reclamation),
the resolver chain, replay planning, the cross-request InflightTable,
concurrency invariants (shared-store races, in-flight dedup), and the
ExperimentService streaming job API."""

import json
import os
import threading
import time

import pytest

from repro.errors import ExperimentExecutionError, SimulationError
from repro.experiments import (
    CACHE_VERSION, ExperimentSpec, ResultCache, Runner, RunSpec,
    RunSummary,
)
from repro.params import DEFAULT_PARAMS
from repro.service import (
    STORE_VERSION, DirectPlanner, ExperimentService, InflightTable,
    MemoLayer, ReplayPlanner, ResolverChain, ResultStore, StoreLayer,
    run_group,
)

#: a fast workload for end-to-end service tests
FAST = dict(workload="dense_mvm", scale=0.05)


def spec_n(n: int) -> RunSpec:
    """Cheap distinct specs (args vary the content hash; nothing runs)."""
    return RunSpec("dense_mvm", "misp", "1x8", args={"n": n})


def summary_for(spec: RunSpec, cycles: int = 100) -> RunSummary:
    return RunSummary(workload=spec.workload, system=spec.system,
                      config=spec.config, cycles=cycles,
                      spec_hash=spec.spec_hash())


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.time() + timeout
    while not predicate():
        if time.time() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


# ----------------------------------------------------------------------
# ResultStore: metrics, integrity, eviction
# ----------------------------------------------------------------------
class TestResultStore:
    def test_hit_miss_metrics(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_n(1)
        assert store.get(spec) is None
        store.put(spec, summary_for(spec))
        assert store.get(spec) == summary_for(spec)
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1
        assert store.stats.hit_rate == 0.5
        assert "50.0% hit rate" in str(store.stats)
        snap = store.stats.snapshot()
        store.get(spec)
        assert snap.hits == 1 and store.stats.hits == 2

    def test_corrupt_entry_counted_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_n(1)
        path = store.path_for(spec)
        path.write_text("{not json")
        assert store.get(spec) is None
        assert store.stats.corrupt == 1
        assert store.stats.misses == 0
        assert not path.exists()                       # quarantined away
        assert list(tmp_path.glob("*.corrupt"))
        # the key is writable again and serves normally afterwards
        store.put(spec, summary_for(spec))
        assert store.get(spec) == summary_for(spec)

    def test_misaddressed_entry_is_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = spec_n(1), spec_n(2)
        store.put(a, summary_for(a))
        # copy a's payload under b's address: content no longer matches
        store.path_for(b).write_text(store.path_for(a).read_text())
        assert store.get(b) is None
        assert store.stats.corrupt == 1
        assert not store.path_for(b).exists()

    def test_version_mismatch_is_a_plain_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_n(1)
        store.put(spec, summary_for(spec))
        payload = json.loads(store.path_for(spec).read_text())
        payload["store_version"] = payload["cache_version"] = \
            STORE_VERSION - 1
        store.path_for(spec).write_text(json.dumps(payload))
        assert store.get(spec) is None
        assert store.stats.misses == 1 and store.stats.corrupt == 0
        assert store.path_for(spec).exists()           # not quarantined

    def test_orphaned_tmp_swept_on_init_and_clear(self, tmp_path):
        orphan = tmp_path / "crashed-writer.tmp"
        orphan.write_text("half a payload")
        os.utime(orphan, (0, 0))                       # ancient
        live = tmp_path / "live-writer.tmp"
        live.write_text("in flight")                   # fresh mtime
        store = ResultStore(tmp_path)
        assert not orphan.exists()                     # reclaimed
        assert live.exists()                           # grace period
        assert store.stats.tmp_reclaimed == 1
        store.clear()
        assert not live.exists()                       # clear takes all

    def test_lru_eviction_under_entry_bound(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=3)
        specs = [spec_n(i) for i in range(4)]
        for i, spec in enumerate(specs[:3]):
            path = store.put(spec, summary_for(spec))
            os.utime(path, (100 * (i + 1), 100 * (i + 1)))
        store.get(specs[0])            # refresh: specs[0] now most recent
        store.put(specs[3], summary_for(specs[3]))
        assert len(store) == 3
        assert store.stats.evictions == 1
        assert not store.path_for(specs[1]).exists()   # the LRU entry
        assert store.path_for(specs[0]).exists()       # refreshed survives

    def test_byte_bound_keeps_newest(self, tmp_path):
        probe = ResultStore(tmp_path / "probe")
        spec = spec_n(0)
        entry_size = probe.put(spec, summary_for(spec)).stat().st_size
        store = ResultStore(tmp_path / "real",
                            max_bytes=int(entry_size * 1.5))
        a, b = spec_n(1), spec_n(2)
        pa = store.put(a, summary_for(a))
        os.utime(pa, (100, 100))
        store.put(b, summary_for(b))
        assert len(store) == 1
        assert store.path_for(b).exists()
        assert store.stats.evictions == 1

    def test_sweep_quarantines_and_reclaims(self, tmp_path):
        store = ResultStore(tmp_path)
        good = spec_n(1)
        store.put(good, summary_for(good))
        (tmp_path / ("d" * 64 + ".json")).write_text("garbage{")
        (tmp_path / "orphan.tmp").write_text("x")
        report = store.sweep()
        assert report.checked == 2
        assert report.quarantined == 1
        assert report.tmp_reclaimed == 1
        assert store.get(good) == summary_for(good)    # survivors intact

    def test_result_cache_alias_is_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert isinstance(cache, ResultStore)
        assert CACHE_VERSION == STORE_VERSION
        spec = spec_n(7)
        cache.put(spec, summary_for(spec))
        assert ResultStore(tmp_path).get(spec) == summary_for(spec)


# ----------------------------------------------------------------------
# Planner and inflight table
# ----------------------------------------------------------------------
class TestPlanning:
    def test_direct_planner_singletons(self):
        specs = [spec_n(i) for i in range(3)]
        assert DirectPlanner().plan(specs) == [[s] for s in specs]

    def test_replay_planner_groups_timing_only_diffs(self):
        mems = [RunSpec(system="misp", config="1x4",
                        params=DEFAULT_PARAMS.with_changes(mem_cost=mc),
                        **FAST)
                for mc in (15, 60, 240)]
        control = RunSpec(
            system="misp", config="1x4",
            params=DEFAULT_PARAMS.with_changes(timer_quantum=123456),
            **FAST)
        uncapturable = RunSpec(workload="RayTracer", system="multiprog",
                               scale=0.05)
        plan = ReplayPlanner().plan(mems + [control, uncapturable])
        sizes = sorted(len(group) for group in plan)
        assert sizes == [1, 1, 3]
        (big,) = [g for g in plan if len(g) == 3]
        assert big == mems


class TestInflightTable:
    def test_claim_join_resolve(self):
        table = InflightTable()
        owned, joined = table.claim(["k1", "k2"])
        assert set(owned) == {"k1", "k2"} and not joined
        owned2, joined2 = table.claim(["k1", "k3"])
        assert set(owned2) == {"k3"} and set(joined2) == {"k1"}
        assert joined2["k1"] is owned["k1"]            # the same future
        assert table.stats.owned == 3 and table.stats.joined == 1
        table.resolve("k1", "summary")
        assert joined2["k1"].result(timeout=1) == "summary"
        assert "k1" not in table and "k2" in table

    def test_fail_propagates_to_joiners(self):
        table = InflightTable()
        owned, _ = table.claim(["k"])
        _, joined = table.claim(["k"])
        boom = SimulationError("boom")
        table.fail("k", boom)
        assert joined["k"].exception(timeout=1) is boom
        assert len(table) == 0


# ----------------------------------------------------------------------
# Resolver chain
# ----------------------------------------------------------------------
class StubExecutor:
    """Terminal layer that manufactures summaries and records calls."""

    name = "executor"

    def __init__(self):
        self.calls = []
        self.failures = []

    def resolve(self, specs):
        self.calls.append(list(specs))
        return {s.spec_hash(): summary_for(s) for s in specs}, []

    def store(self, spec, summary):
        pass


class TestResolverChain:
    def test_layer_order_and_backfill(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = StubExecutor()
        chain = ResolverChain([MemoLayer(), StoreLayer(store), executor])
        specs = [spec_n(i) for i in range(3)]

        first = chain.resolve(specs)
        assert first.hits_by_layer == {"memo": 0, "store": 0,
                                       "executor": 3}
        assert store.stats.puts == 3                   # backfilled down
        assert len(first.summaries) == 3

        second = chain.resolve(specs)                  # memo short-circuit
        assert second.hits_by_layer == {"memo": 3, "store": 0,
                                        "executor": 0}
        assert executor.calls[-1] == []

        fresh = ResolverChain([MemoLayer(), StoreLayer(store),
                               StubExecutor()])
        third = fresh.resolve(specs)                   # disk short-circuit
        assert third.hits_by_layer == {"memo": 0, "store": 3,
                                       "executor": 0}


# ----------------------------------------------------------------------
# Failure aggregation (every failed spec named, batch survivors kept)
# ----------------------------------------------------------------------
class TestFailureReporting:
    def test_all_failures_named_and_counted(self, tmp_path):
        good = RunSpec(system="1p", **FAST)
        bad1 = RunSpec(system="misp", config="1x4", limit=10, **FAST)
        bad2 = RunSpec(system="smp", config="smp4", limit=10, **FAST)
        runner = Runner(cache_dir=tmp_path, parallel=False)
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.run_many([good, bad1, bad2])
        err = excinfo.value
        assert isinstance(err, SimulationError)        # old catch sites work
        assert len(err.failures) == 2
        assert bad1.describe() in str(err)
        assert bad2.describe() in str(err)
        assert runner.stats.failed == 2
        assert runner.stats.executed == 1              # the good run kept
        # survivors are stored: a retry only re-runs the failures
        retry = Runner(cache_dir=tmp_path, parallel=False)
        with pytest.raises(ExperimentExecutionError):
            retry.run_many([good, bad1, bad2])
        assert retry.stats.cache_hits == 1
        assert retry.stats.executed == 0
        assert retry.stats.failed == 2

    def test_parallel_failures_also_aggregate(self):
        bads = [RunSpec(system="misp", config="1x4", limit=10, **FAST),
                RunSpec(system="smp", config="smp4", limit=10, **FAST)]
        runner = Runner(parallel=True, max_workers=2)
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.run_many(bads)
        assert len(excinfo.value.failures) == 2


# ----------------------------------------------------------------------
# Concurrency invariants
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_two_runners_race_one_store_directory(self, tmp_path):
        """Atomic-write invariant: two processes'-worth of Runners
        racing on the same spec leave one valid entry and agree."""
        spec = RunSpec(system="misp", config="1x4", **FAST)
        results, errors = {}, []

        def race(name):
            try:
                runner = Runner(cache_dir=tmp_path, parallel=False)
                results[name] = runner.run(spec)
            except Exception as exc:                   # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=race, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert results["a"] == results["b"]
        check = ResultStore(tmp_path)
        assert check.get(spec) == results["a"]         # entry readable
        assert check.stats.corrupt == 0
        assert not list(tmp_path.glob("*.tmp"))        # no orphans left

    def test_concurrent_submits_dedup_onto_one_execution(self):
        """Two concurrent jobs wanting the same spec share one in-flight
        run: exactly one execution, both jobs receive the summary."""
        calls = []
        release = threading.Event()

        def gated(group):
            calls.append(tuple(group))
            assert release.wait(timeout=30)
            return run_group(group)

        spec = RunSpec(system="misp", config="1x4", **FAST)
        with ExperimentService(parallel=False,
                               run_group_fn=gated) as service:
            job_a = service.submit([spec])
            wait_until(lambda: len(calls) == 1)        # A owns the run
            job_b = service.submit([spec])
            wait_until(lambda: service.inflight.stats.joined == 1)
            assert not job_a.done() and not job_b.done()
            release.set()
            result_a = job_a.result(timeout=120)
            result_b = job_b.result(timeout=120)
        assert len(calls) == 1                         # exactly one execution
        assert service.stats.executed == 1
        assert service.stats.inflight_joined == 1
        assert result_a[spec] == result_b[spec]
        assert result_a[spec].cycles > 0


# ----------------------------------------------------------------------
# ExperimentService job API
# ----------------------------------------------------------------------
class TestExperimentService:
    @pytest.mark.smoke
    def test_service_round_trip_smoke(self, tmp_path):
        """CI smoke gate: submit -> stream -> resubmit (memo) ->
        fresh service (store hits), numbers equal the batch Runner."""
        grid = ExperimentSpec.grid("svc-smoke", ["dense_mvm"],
                                   systems=("1p", "misp"), scale=0.05)
        with ExperimentService(store=ResultStore(tmp_path),
                               parallel=False) as service:
            streamed = list(service.submit(grid).as_completed(timeout=120))
            assert len(streamed) == 2
            result = service.submit(grid).result(timeout=120)
            assert service.stats.executed == 2         # second job all memo
            assert service.stats.memo_hits == 2
        baseline = Runner(parallel=False).run_many(grid.runs)
        assert result.summaries() == baseline

        fresh = ExperimentService(store=ResultStore(tmp_path),
                                  parallel=False)
        again = fresh.submit(grid).result(timeout=120)
        assert fresh.stats.executed == 0
        assert fresh.stats.store_hits == 2
        assert fresh.store.stats.hits == 2             # the metric line
        assert again.summaries() == baseline

    def test_streams_partial_results_before_grid_completes(self):
        gate = threading.Event()

        def gated(group):
            if group[0].system == "smp":
                assert gate.wait(timeout=30)
            return run_group(group)

        specs = [RunSpec(system="misp", config="1x4", **FAST),
                 RunSpec(system="smp", config="smp4", **FAST)]
        with ExperimentService(parallel=False,
                               run_group_fn=gated) as service:
            job = service.submit(specs)
            stream = job.as_completed(timeout=120)
            first = next(stream)
            assert first.system == "misp"
            assert not job.done()                      # grid still running
            gate.set()
            rest = list(stream)
        assert len(rest) == 1 and rest[0].system == "smp"
        assert job.done()

    def test_service_replay_mode_captures_once(self):
        specs = [RunSpec(system="misp", config="1x4",
                         params=DEFAULT_PARAMS.with_changes(mem_cost=mc),
                         **FAST)
                 for mc in (15, 60, 240)]
        with ExperimentService(parallel=False, replay=True) as service:
            result = service.submit(specs).result(timeout=120)
        assert service.stats.executed == 1
        assert service.stats.captured == 1
        assert service.stats.replayed == 2
        assert [result[s].timing for s in specs] == \
            ["execute", "replay", "replay"]

    def test_failed_spec_surfaces_in_result(self):
        good = RunSpec(system="1p", **FAST)
        bad = RunSpec(system="misp", config="1x4", limit=10, **FAST)
        with ExperimentService(parallel=False) as service:
            job = service.submit([good, bad])
            streamed = list(job.as_completed(timeout=120))
            assert len(streamed) == 1                  # the good run
            with pytest.raises(ExperimentExecutionError) as excinfo:
                job.result(timeout=10)
        assert bad.describe() in str(excinfo.value)
        assert service.stats.failed == 1

    def test_streaming_figure4_matches_batch(self, tmp_path):
        from repro.analysis import run_figure4, run_figure4_streaming

        names = ["dense_mvm"]
        seen = []
        with ExperimentService(store=ResultStore(tmp_path),
                               parallel=False) as service:
            streamed = run_figure4_streaming(
                service, names, ams_count=3, scale=0.05,
                progress=lambda done, total, s: seen.append((done, total)))
        batch = run_figure4(names, ams_count=3, scale=0.05,
                            runner=Runner(parallel=False))
        assert streamed.rows == batch.rows
        assert seen == [(1, 3), (2, 3), (3, 3)]
