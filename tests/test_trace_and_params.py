"""Unit tests for event tracing, machine parameters, and the
direct-execution stream/context layer."""

import pytest

from repro.errors import SimulationError
from repro.exec.context import ExecContext
from repro.exec.ops import Block, Compute, HaltOp, SyscallOp, Touch
from repro.exec.stream import DirectStream
from repro.kernel.kernel import Kernel
from repro.params import DEFAULT_PARAMS, MachineParams
from repro.sim.trace import EventKind, TraceLog


# ----------------------------------------------------------------------
# TraceLog
# ----------------------------------------------------------------------
class TestTraceLog:
    def test_coarse_counts(self):
        log = TraceLog()
        log.count(0, EventKind.SYSCALL)
        log.count(0, EventKind.SYSCALL, n=2)
        log.count(1, EventKind.SYSCALL)
        assert log.total(EventKind.SYSCALL) == 4
        assert log.total(EventKind.SYSCALL, [0]) == 3
        assert log.total(EventKind.PAGE_FAULT) == 0

    def test_per_sequencer_view(self):
        log = TraceLog()
        log.count(3, EventKind.TIMER)
        log.count(3, EventKind.SYSCALL)
        on3 = log.on_sequencer(3)
        assert on3[EventKind.TIMER] == 1 and on3[EventKind.SYSCALL] == 1

    def test_fine_records_and_duration(self):
        log = TraceLog(record_fine=True)
        log.record(10, 25, 0, EventKind.RING_EXIT, detail="syscall")
        records = list(log.records(EventKind.RING_EXIT))
        assert len(records) == 1
        assert records[0].duration == 15
        assert log.time_in(EventKind.RING_EXIT) == 15

    def test_fine_recording_disabled(self):
        log = TraceLog(record_fine=False)
        log.record(0, 5, 0, EventKind.RING_EXIT)
        assert list(log.records()) == []
        assert log.total(EventKind.RING_EXIT) == 1   # coarse still counts

    def test_record_filters(self):
        log = TraceLog()
        log.record(0, 1, 0, EventKind.TIMER)
        log.record(1, 2, 1, EventKind.TIMER)
        log.record(2, 3, 0, EventKind.SYSCALL)
        assert len(list(log.records(sequencer=0))) == 2
        assert len(list(log.records(EventKind.TIMER, sequencer=0))) == 1

    def test_summary_and_clear(self):
        log = TraceLog()
        log.count(0, EventKind.TIMER)
        assert log.summary() == {"timer": 1}
        log.clear()
        assert log.summary() == {}


# ----------------------------------------------------------------------
# MachineParams
# ----------------------------------------------------------------------
class TestParams:
    def test_defaults_match_paper(self):
        assert DEFAULT_PARAMS.signal_cost == 5000   # §5.2 estimate

    def test_with_changes_immutably(self):
        fast = DEFAULT_PARAMS.with_changes(signal_cost=500)
        assert fast.signal_cost == 500
        assert DEFAULT_PARAMS.signal_cost == 5000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(signal_cost=-1)

    def test_zero_quantum_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(timer_quantum=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.signal_cost = 1   # type: ignore[misc]


# ----------------------------------------------------------------------
# DirectStream protocol
# ----------------------------------------------------------------------
class TestDirectStream:
    def test_fetch_complete_cycle(self):
        def body():
            value = yield Compute(10)
            assert value == "result"
            yield Compute(20)

        stream = DirectStream(body())
        op = stream.next_op()
        assert isinstance(op, Compute) and op.cycles == 10
        # fault-retry semantics: repeated fetch returns the same op
        assert stream.next_op() is op
        stream.complete("result")
        assert stream.next_op().cycles == 20
        stream.complete()
        assert stream.next_op() is None
        assert stream.finished

    def test_halt_op_ends_stream(self):
        def body():
            yield Compute(1)
            yield HaltOp()
            yield Compute(2)   # unreachable

        stream = DirectStream(body())
        stream.next_op()
        stream.complete()
        assert stream.next_op() is None
        assert stream.finished

    def test_sched_sentinel_rejected(self):
        def body():
            yield Block([])

        stream = DirectStream(body(), label="bad")
        with pytest.raises(SimulationError):
            stream.next_op()

    def test_complete_without_pending(self):
        stream = DirectStream(iter(()))
        with pytest.raises(SimulationError):
            stream.complete()


# ----------------------------------------------------------------------
# ExecContext helpers
# ----------------------------------------------------------------------
class TestExecContext:
    def make(self):
        kernel = Kernel(DEFAULT_PARAMS, num_cpus=1)
        process = kernel.create_process("p")
        return ExecContext(process, DEFAULT_PARAMS, seed=7)

    def test_compute_chunks_sum(self):
        ctx = self.make()
        ops = list(ctx.compute(120_000, chunk=50_000))
        assert [op.cycles for op in ops] == [50_000, 50_000, 20_000]

    def test_compute_zero_is_empty(self):
        ctx = self.make()
        assert list(ctx.compute(0)) == []

    def test_compute_negative_rejected(self):
        ctx = self.make()
        with pytest.raises(ValueError):
            list(ctx.compute(-1))

    def test_touch_range_strides(self):
        ctx = self.make()
        region = ctx.reserve("d", 16)
        ops = [op for op in ctx.touch_range(region, 0, 4, stride=2)
               if isinstance(op, Touch)]
        assert [op.page_index for op in ops] == [0, 2, 4, 6]

    def test_touch_range_interleaves_compute(self):
        ctx = self.make()
        region = ctx.reserve("d", 4)
        ops = list(ctx.touch_range(region, 0, 2, compute_per_page=100))
        kinds = [type(op).__name__ for op in ops]
        assert kinds == ["Touch", "Compute", "Touch", "Compute"]

    def test_syscall_op(self):
        ctx = self.make()
        ops = list(ctx.syscall("write", cost=123, arg="x"))
        assert ops == [SyscallOp("write", 123, "x")]

    def test_rng_streams_deterministic_and_distinct(self):
        ctx = self.make()
        a1 = ctx.rng(1).random()
        a2 = ctx.rng(1).random()
        b = ctx.rng(2).random()
        assert a1 == a2
        assert a1 != b

    def test_spawn_native_requires_machine(self):
        ctx = self.make()
        with pytest.raises(RuntimeError):
            ctx.spawn_native("t", iter(()))
