"""Tests for the pluggable system-backend registry and the Session
API: registry error paths, spec/hash round-trips through backends,
the hybrid backend, and a custom backend running through the
experiment Runner without touching any ``experiments/`` module."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    DEFAULT_CONFIGS, SYSTEMS, ExperimentSpec, Runner, RunSpec,
)
from repro.shredlib.runtime import QueuePolicy
from repro.systems import (
    SYSTEM_REGISTRY, MispBackend, Session, SystemBackend, get_system,
)
from repro.workloads import REGISTRY, run_1p, run_hybrid
from repro.workloads.runner import RunResult

#: a fast workload for end-to-end runs
FAST = dict(workload="dense_mvm", scale=0.05)


def fast_workload():
    return REGISTRY.build(FAST["workload"], FAST["scale"])


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert SYSTEM_REGISTRY.names() == [
            "misp", "smp", "1p", "multiprog", "hybrid"]
        assert get_system("misp").name == "misp"
        assert get_system("  MISP ").name == "misp"     # normalized

    def test_unknown_backend_error_lists_known(self):
        with pytest.raises(ConfigurationError, match="misp"):
            get_system("cluster")
        with pytest.raises(ConfigurationError):
            Session("cluster")
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "cluster")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            SYSTEM_REGISTRY.register(MispBackend())

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            SYSTEM_REGISTRY.unregister("nope")

    def test_temporary_registration_is_scoped(self):
        class Toy(MispBackend):
            name = "toy"
        with SYSTEM_REGISTRY.temporary(Toy()):
            assert "toy" in SYSTEM_REGISTRY
        assert "toy" not in SYSTEM_REGISTRY

    def test_views_are_live(self):
        class Toy(MispBackend):
            name = "toy_view"
            default_config = "1x2"
        assert "toy_view" not in SYSTEMS
        with SYSTEM_REGISTRY.temporary(Toy()):
            assert "toy_view" in SYSTEMS
            assert DEFAULT_CONFIGS["toy_view"] == "1x2"
        assert "toy_view" not in SYSTEMS
        with pytest.raises(KeyError):
            DEFAULT_CONFIGS["toy_view"]
        assert DEFAULT_CONFIGS.get("toy_view") is None  # Mapping protocol


# ----------------------------------------------------------------------
# Spec hashing through backends
# ----------------------------------------------------------------------
class TestSpecHashRoundTrip:
    def test_same_backend_same_args_stable_hash(self):
        a = RunSpec("gauss", "hybrid", "1x2+1x2", scale=0.1)
        b = RunSpec("gauss", "hybrid", "1X2+1x2", scale=0.1)
        assert a.spec_hash() == b.spec_hash()
        assert RunSpec.from_dict(a.to_dict()).spec_hash() == a.spec_hash()

    def test_new_backend_same_args_distinct_hash(self):
        class Toy(MispBackend):
            name = "toy_hash"
        with SYSTEM_REGISTRY.temporary(Toy()):
            misp = RunSpec("gauss", "misp", "1x4", scale=0.1)
            toy = RunSpec("gauss", "toy_hash", "1x4", scale=0.1)
            assert toy.system == "toy_hash"
            assert toy.spec_hash() != misp.spec_hash()
            again = RunSpec("gauss", "toy_hash", "1x4", scale=0.1)
            assert again.spec_hash() == toy.spec_hash()

    def test_hybrid_config_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "hybrid", "1x8")       # single group -> misp
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "hybrid", "smp8")      # no MISP group -> smp
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "hybrid", background=1)  # no background


# ----------------------------------------------------------------------
# Session API
# ----------------------------------------------------------------------
class TestSession:
    def test_knobs_return_new_sessions(self):
        base = Session("misp", "1x4")
        tweaked = base.policy("lifo").limit(123).params(signal_cost=500)
        assert tweaked is not base
        assert base._policy is QueuePolicy.FIFO      # template unchanged
        assert tweaked._policy is QueuePolicy.LIFO
        assert tweaked._params.signal_cost == 500

    def test_resolve_redirects_smp1_to_1p(self):
        backend, config = Session("smp", "smp1").resolve()
        assert backend.name == "1p" and config == "smp1"
        assert Session("smp", "smp1").describe() == "1p:smp1"

    def test_1p_rejects_multi_cpu_configs(self):
        with pytest.raises(ConfigurationError):
            Session("1p", "smp8").resolve()
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "1p", "1x8")

    def test_repr_never_raises(self):
        assert repr(Session("misp", "2x4")) == "Session('misp:2x4')"
        assert repr(Session("hybrid")) == "Session('hybrid:1x4+1x2')"

    def test_run_by_workload_name(self):
        result = Session("misp", "1x4").run("dense_mvm", scale=0.05)
        assert isinstance(result, RunResult)
        assert result.system == "misp" and result.config == "1x4"
        assert result.cycles > 0 and result.runtime.active == 0

    def test_scale_requires_name(self):
        spec = fast_workload()
        with pytest.raises(ConfigurationError):
            Session("misp").run(spec, scale=0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Session("misp").limit(0)
        with pytest.raises(ConfigurationError):
            Session("misp").background(-1)
        with pytest.raises(ConfigurationError):
            Session("misp", "smp8").resolve()     # misp needs one group
        with pytest.raises(ConfigurationError):
            Session("misp").background(1).resolve()

    def test_run_1p_honors_policy(self):
        # satellite: run_1p used to silently drop the policy knob
        spec = fast_workload()
        result = run_1p(spec, policy=QueuePolicy.LIFO)
        assert result.runtime.policy is QueuePolicy.LIFO
        assert result.system == "1p" and result.runtime.active == 0


# ----------------------------------------------------------------------
# The hybrid backend
# ----------------------------------------------------------------------
class TestHybrid:
    def test_smoke_completes_with_table1_events(self):
        result = run_hybrid(fast_workload(), "1x2+1x2")
        assert result.system == "hybrid" and result.config == "2x2"
        assert result.runtime.active == 0            # every shred retired
        assert result.runtime.finished == result.runtime.created
        assert result.machine.kernel.all_done
        events = result.serializing_events()
        assert set(events) == {"oms_syscall", "oms_pf", "oms_timer",
                               "oms_interrupt", "ams_syscall", "ams_pf"}
        assert events["oms_timer"] > 0               # both OMSs ticked
        assert events["oms_pf"] + events["ams_pf"] > 0

    def test_parallelism_beats_1p(self):
        spec = fast_workload()
        hybrid = run_hybrid(spec, "1x2+1x2")
        base = run_1p(spec)
        assert base.cycles / hybrid.cycles > 2.0     # 4 sequencers help

    def test_plain_cpus_join_the_gang(self):
        result = run_hybrid(fast_workload(), "1x2+2")
        assert result.config == "1x2+2"
        assert result.runtime.active == 0
        assert result.machine.num_cpus == 3

    def test_hybrid_spec_through_runner(self):
        runner = Runner(parallel=False)
        summary = runner.run(RunSpec(system="hybrid", config="1x2+1x2",
                                     **FAST))
        assert summary.system == "hybrid" and summary.config == "2x2"
        assert summary.cycles > 0 and summary.shreds_unjoined == 0
        assert summary.utilization.num_oms == 2
        assert summary.utilization.num_ams == 2
        assert sum(summary.events.values()) > 0      # Table-1 counts travel


# ----------------------------------------------------------------------
# Acceptance: a custom backend is spec-able and runnable end to end
# ----------------------------------------------------------------------
class TestCustomBackend:
    def test_toy_backend_through_run_experiment(self):
        """Registering a backend suffices: no experiments/ module knows
        about 'toy_e2e', yet specs validate, hash, dedup, and run."""

        class ToyBackend(MispBackend):
            name = "toy_e2e"
            default_config = "1x2"
            description = "misp with a halved signal cost"

            def build_machine(self, config, params):
                return super().build_machine(
                    config, params.with_changes(
                        signal_cost=params.signal_cost // 2))

        with SYSTEM_REGISTRY.temporary(ToyBackend()):
            exp = ExperimentSpec.grid("toy", ["dense_mvm"],
                                      systems=("toy_e2e", "misp"),
                                      scale=0.05)
            runner = Runner(parallel=False)
            result = runner.run_experiment(exp)
            toy = result[RunSpec("dense_mvm", "toy_e2e", "1x2", scale=0.05)]
            misp = result[RunSpec("dense_mvm", "misp", "1x8", scale=0.05)]
            assert toy.system == "toy_e2e" and toy.cycles > 0
            assert misp.system == "misp"
            assert runner.stats.executed == 2

    def test_backend_without_stage_is_abstract(self):
        class Incomplete(SystemBackend):
            name = "incomplete"
        with SYSTEM_REGISTRY.temporary(Incomplete()):
            with pytest.raises(NotImplementedError):
                Session("incomplete", "1x2").run(fast_workload())
