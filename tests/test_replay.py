"""Tests for trace capture/replay (repro.sim.captrace) and its Runner
integration: replay-vs-execute equivalence, timing-only sweep
approximation, replay-class grouping, and cache timing identity."""

import pytest

from repro.analysis.figure_mem import FIGURE_MEM_COSTS, run_figure_mem
from repro.errors import ConfigurationError
from repro.experiments import (
    Runner, RunSpec, execute, execute_captured, execute_replay_group,
    replay_class,
)
from repro.params import DEFAULT_PARAMS
from repro.sim.captrace import (
    REPLAY_SAFE_FIELDS, ReplayMachine, replayable_changes,
)
from repro.systems import Session

SCALE = 0.05


def spec_for(system, workload="RayTracer", **params):
    p = DEFAULT_PARAMS.with_changes(**params) if params else DEFAULT_PARAMS
    return RunSpec(workload=workload, system=system, scale=SCALE, params=p)


# ----------------------------------------------------------------------
# Exact replay-vs-execute equivalence
# ----------------------------------------------------------------------
class TestExactEquivalence:
    @pytest.mark.parametrize("system", ["misp", "smp", "hybrid"])
    def test_replay_reproduces_execution_exactly(self, system):
        """Under identical params a replayed summary matches the
        execution-driven one field for field: cycles, every memory
        counter, Table-1 event counts, proxy and utilization totals."""
        spec = spec_for(system)
        plain = execute(spec)
        summary, trace = execute_captured(spec)
        # capture itself must not perturb the simulation
        assert summary.to_dict() == plain.to_dict()
        replayed = ReplayMachine(trace).run(spec=spec)
        a, b = plain.to_dict(), replayed.to_dict()
        assert a.pop("timing") == "execute"
        assert b.pop("timing") == "replay"
        assert a == b

    def test_equivalence_on_second_workload(self):
        spec = spec_for("misp", workload="gauss")
        plain = execute(spec)
        _, trace = execute_captured(spec)
        replayed = ReplayMachine(trace).run(spec=spec)
        assert replayed.cycles == plain.cycles
        assert replayed.mem == plain.mem
        assert replayed.events == plain.events

    def test_replay_group_first_executes_rest_replay(self):
        specs = [spec_for("misp", mem_cost=mc) for mc in (60, 240, 960)]
        out = execute_replay_group(specs)
        assert [s.timing for s in out] == ["execute", "replay", "replay"]
        assert out[0].to_dict() == execute(specs[0]).to_dict()

    @pytest.mark.smoke
    def test_capture_replay_round_trip_smoke(self):
        """The CI smoke gate: one capture+replay round-trip stays
        exact (guards the fast path between full bench runs)."""
        spec = spec_for("misp")
        summary, trace = execute_captured(spec)
        replayed = ReplayMachine(trace).run(spec=spec)
        assert replayed.cycles == summary.cycles
        assert replayed.mem == summary.mem
        assert replayed.events == summary.events
        assert replayed.utilization == summary.utilization


# ----------------------------------------------------------------------
# Timing-only sweeps (the trace-driven approximation)
# ----------------------------------------------------------------------
class TestTimingSweeps:
    def test_swept_mem_cost_monotone_cycles(self):
        _, trace = execute_captured(spec_for("misp"))
        machine = ReplayMachine(trace)
        cycles = [machine.run(
            params=DEFAULT_PARAMS.with_changes(mem_cost=mc)).cycles
            for mc in FIGURE_MEM_COSTS]
        assert cycles == sorted(cycles)
        assert cycles[0] < cycles[-1]

    def test_figure_mem_decline_reproduced_via_replay(self):
        """The figure_mem property -- MISP's advantage declines as
        memory gets slower -- survives the replay fast path."""
        rows = run_figure_mem(scale=SCALE,
                              runner=Runner(parallel=False, replay=True))
        assert [row.mem_cost for row in rows] == list(FIGURE_MEM_COSTS)
        speedups = [row.misp_speedup for row in rows]
        assert all(a >= b for a, b in zip(speedups, speedups[1:]))
        assert speedups[0] > speedups[-1]
        assert min(speedups) > 2.0

    def test_geometry_sweep_redrives_cache_model(self):
        _, trace = execute_captured(spec_for("misp"))
        machine = ReplayMachine(trace)
        base = machine.run()
        small = machine.run(
            params=DEFAULT_PARAMS.with_changes(l2_size=4096))
        assert base.mem == trace.snapshot.mem      # no-change is exact
        assert small.mem.l2_hits < base.mem.l2_hits
        assert small.mem.mem_accesses > base.mem.mem_accesses
        assert small.cycles > base.cycles


# ----------------------------------------------------------------------
# Validity boundaries
# ----------------------------------------------------------------------
class TestValidity:
    def test_safe_fields_identified(self):
        new = DEFAULT_PARAMS.with_changes(mem_cost=960, signal_cost=500)
        assert replayable_changes(DEFAULT_PARAMS, new) == {
            "mem_cost", "signal_cost"}

    @pytest.mark.parametrize("field,value", [
        ("timer_quantum", 12345),
        ("tlb_entries", 4),
        ("isa_instruction_cost", 3),
    ])
    def test_control_flow_axes_refused(self, field, value):
        assert field not in REPLAY_SAFE_FIELDS
        _, trace = execute_captured(spec_for("misp"))
        with pytest.raises(ConfigurationError):
            ReplayMachine(trace).run(
                params=DEFAULT_PARAMS.with_changes(**{field: value}))

    def test_multiprog_capture_refused(self):
        with pytest.raises(ConfigurationError):
            Session("multiprog").capture().run("RayTracer", scale=SCALE)

    def test_session_capture_attaches_trace(self):
        captured = Session("misp", "1x8").capture().run("RayTracer",
                                                        scale=SCALE)
        plain = Session("misp", "1x8").run("RayTracer", scale=SCALE)
        assert captured.trace is not None
        assert captured.trace.num_events > 1000
        assert plain.trace is None
        assert captured.cycles == plain.cycles


# ----------------------------------------------------------------------
# Runner integration: replay classes and cache timing identity
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_replay_class_groups_timing_only_diffs(self):
        a = spec_for("misp")
        b = spec_for("misp", mem_cost=960)
        c = spec_for("misp", timer_quantum=123456)
        d = spec_for("smp")
        assert replay_class(a) == replay_class(b)
        assert replay_class(a) != replay_class(c)
        assert replay_class(a) != replay_class(d)
        assert replay_class(RunSpec(workload="RayTracer",
                                    system="multiprog",
                                    scale=SCALE)) is None

    def test_runner_replay_mode_captures_once(self, tmp_path):
        specs = [spec_for("misp", mem_cost=mc) for mc in (15, 60, 240)]
        runner = Runner(cache_dir=tmp_path, parallel=False, replay=True)
        out = runner.run_many(specs)
        assert runner.stats.executed == 1
        assert runner.stats.captured == 1
        assert runner.stats.replayed == 2
        assert [s.timing for s in out] == ["execute", "replay", "replay"]

    def test_replay_cache_entries_never_alias_execution(self, tmp_path):
        specs = [spec_for("misp", mem_cost=mc) for mc in (15, 60, 240)]
        Runner(cache_dir=tmp_path, parallel=False,
               replay=True).run_many(specs)
        # an execution-driven runner sees only the captured spec's
        # entry; the replay summaries are invisible to it
        exec_runner = Runner(cache_dir=tmp_path, parallel=False)
        out = exec_runner.run_many(specs)
        assert all(s.timing == "execute" for s in out)
        assert exec_runner.stats.cache_hits == 1
        assert exec_runner.stats.executed == 2
        # once execution-driven entries exist, a replay-mode runner
        # prefers them (they are exact)
        third = Runner(cache_dir=tmp_path, parallel=False, replay=True)
        out3 = third.run_many(specs)
        assert third.stats.cache_hits == 3
        assert third.stats.executed == 0
        assert all(s.timing == "execute" for s in out3)

    def test_replay_mode_parallel_matches_serial(self, tmp_path):
        specs = [spec_for("smp", mem_cost=mc) for mc in (60, 960)]
        serial = Runner(parallel=False, replay=True).run_many(specs)
        parallel = Runner(max_workers=2, replay=True).run_many(specs)
        assert [s.to_dict() for s in serial] == [s.to_dict()
                                                for s in parallel]
