"""Tests for the experiment-orchestration subsystem: configuration
notation round-trips, RunSpec canonicalization and hashing, and the
Runner's dedup / cache / parallel-equality guarantees."""

import pickle

import pytest

from repro.core.notation import (
    FIGURE6_CONFIGS, FIGURE7_CONFIGS, config_name, parse_config,
)
from repro.errors import ConfigurationError, SimulationError
from repro.experiments import (
    ExperimentSpec, ResultCache, Runner, RunSpec, RunSummary, execute,
)
from repro.params import DEFAULT_PARAMS
from repro.shredlib.runtime import QueuePolicy

#: a fast workload for runner-behaviour tests
FAST = dict(workload="dense_mvm", scale=0.05)


# ----------------------------------------------------------------------
# Configuration notation round-trips
# ----------------------------------------------------------------------
ROUND_TRIP_NAMES = sorted(
    set(FIGURE6_CONFIGS) | set(FIGURE7_CONFIGS)
    | {"smp1", "smp8", "smp16", "1x2", "2x3+2", "1x4+1x2", "1x8+1x4+2"}
)


class TestConfigNotation:
    @pytest.mark.parametrize("name", ROUND_TRIP_NAMES)
    def test_name_round_trip(self, name):
        assert config_name(parse_config(name)) == name

    @pytest.mark.parametrize("counts", [
        (7,), (3, 3), (1, 1, 1, 1), (3, 0, 0, 0, 0), (0,) * 8,
        (3, 1), (1, 3), (5, 2, 0), (6, 0),
    ])
    def test_tuple_round_trip(self, counts):
        assert parse_config(config_name(counts)) == counts

    def test_non_canonical_forms_normalize(self):
        assert parse_config("4x1") == (0, 0, 0, 0)
        assert config_name(parse_config("4x1")) == "smp4"
        assert parse_config("1X8") == (7,)

    @pytest.mark.parametrize("bad", ["", "x", "0x2", "1x0", "+", "1x", "smp"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            parse_config(bad)

    def test_bare_plain_count_is_smp(self):
        assert parse_config("8") == (0,) * 8
        assert parse_config("1x4+2+2") == (3, 0, 0, 0, 0)


# ----------------------------------------------------------------------
# RunSpec canonicalization and hashing
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_equivalent_specs_share_hash(self):
        a = RunSpec("gauss", "1p")
        b = RunSpec("gauss", "smp", "smp1")
        c = RunSpec("gauss", "1P", "  SMP1 ")
        assert a == b == c
        assert a.spec_hash() == b.spec_hash() == c.spec_hash()

    def test_ideal_config_resolves_per_load(self):
        spec = RunSpec("RayTracer", "multiprog", "ideal", background=2)
        assert spec.config == "1x6+2"
        fixed = RunSpec("RayTracer", "multiprog", "1x6+2", background=2)
        assert spec.spec_hash() == fixed.spec_hash()

    def test_distinct_fields_change_hash(self):
        base = RunSpec("gauss", "misp", "1x8")
        assert base.spec_hash() != RunSpec("gauss", "misp", "1x4").spec_hash()
        assert base.spec_hash() != RunSpec("gauss", "misp", "1x8",
                                           scale=0.5).spec_hash()
        assert base.spec_hash() != RunSpec(
            "gauss", "misp", "1x8", policy=QueuePolicy.LIFO).spec_hash()
        assert base.spec_hash() != RunSpec(
            "gauss", "misp", "1x8",
            params=DEFAULT_PARAMS.with_changes(signal_cost=0)).spec_hash()
        assert base.spec_hash() != RunSpec(
            "gauss", "misp", "1x8", args={"x": 1}).spec_hash()

    def test_args_normalize_to_sorted_pairs(self):
        a = RunSpec("RayTracer", args={"probe_pages": True, "ntiles": 8})
        b = RunSpec("RayTracer", args=(("ntiles", 8), ("probe_pages", True)))
        assert a.args == b.args and a.spec_hash() == b.spec_hash()

    def test_dict_round_trip(self):
        spec = RunSpec("RayTracer", "multiprog", "smp", scale=0.1,
                       background=3, policy="lifo",
                       params=DEFAULT_PARAMS.with_changes(signal_cost=500))
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "cluster")
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "misp", "2x4")      # MP needs multiprog
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "smp", "1x8")       # smp needs plain CPUs
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", "misp", background=1)
        with pytest.raises(ConfigurationError):
            RunSpec("gauss", scale=-1.0)

    def test_multiprog_default_limit_is_the_driver_horizon(self):
        from repro.workloads.multiprog import MULTIPROG_HORIZON
        spec = RunSpec("RayTracer", "multiprog", "1x8")
        assert spec.limit == MULTIPROG_HORIZON
        explicit = RunSpec("RayTracer", "multiprog", "1x8", limit=123)
        assert explicit.limit == 123

    def test_experiment_dedup_preserves_order(self):
        exp = ExperimentSpec("e", (RunSpec("gauss", "1p"),
                                   RunSpec("gauss", "misp"),
                                   RunSpec("gauss", "smp", "smp1")))
        unique = exp.unique_runs()
        assert len(exp) == 3 and len(unique) == 2
        assert unique[0].system == "1p" and unique[1].system == "misp"


# ----------------------------------------------------------------------
# Runner behaviour (dedup, cache, parallel equality)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fast_grid():
    return [RunSpec(system="1p", **FAST),
            RunSpec(system="misp", config="1x4", **FAST),
            RunSpec(system="smp", config="smp4", **FAST)]


class TestRunner:
    def test_dedup_within_and_across_calls(self, fast_grid):
        runner = Runner(parallel=False)
        exp = ExperimentSpec("dup", tuple(fast_grid) + tuple(fast_grid))
        result = runner.run_experiment(exp)
        assert len(result.summaries()) == 6
        assert runner.stats.executed == 3
        assert runner.stats.deduplicated == 3
        # a second invocation is pure memo
        runner.run_many(fast_grid)
        assert runner.stats.executed == 3
        assert runner.stats.memo_hits == 3

    def test_cache_miss_then_hit(self, fast_grid, tmp_path):
        first = Runner(cache_dir=tmp_path, parallel=False)
        a = first.run_many(fast_grid)
        assert first.stats.executed == 3 and first.stats.cache_hits == 0
        # a fresh Runner (fresh process, conceptually) hits the disk cache
        second = Runner(cache_dir=tmp_path, parallel=False)
        b = second.run_many(fast_grid)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 3
        assert a == b

    def test_cache_ignores_corrupt_entries(self, fast_grid, tmp_path):
        cache = ResultCache(tmp_path)
        spec = fast_grid[0]
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None
        runner = Runner(cache_dir=tmp_path, parallel=False)
        summary = runner.run(spec)
        assert runner.stats.executed == 1
        assert cache.get(spec) == summary     # repaired on write

    def test_failed_run_keeps_completed_batch_members(self, fast_grid,
                                                      tmp_path):
        good = fast_grid[0]
        bad = RunSpec(system="misp", config="1x4", limit=10, **FAST)
        runner = Runner(cache_dir=tmp_path, parallel=False)
        with pytest.raises(SimulationError):
            runner.run_many([good, bad])
        assert runner.stats.executed == 1     # the good run was kept
        # a retry only re-runs the failure; the good run is cached
        retry = Runner(cache_dir=tmp_path, parallel=False)
        with pytest.raises(SimulationError):
            retry.run_many([good, bad])
        assert retry.stats.cache_hits == 1 and retry.stats.executed == 0

    def test_parallel_equals_serial(self, fast_grid):
        serial = Runner(parallel=False).run_many(fast_grid)
        parallel = Runner(parallel=True, max_workers=2).run_many(fast_grid)
        assert parallel == serial

    def test_summary_is_plain_data(self, fast_grid):
        summary = Runner(parallel=False).run(fast_grid[1])
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
        assert RunSummary.from_dict(summary.to_dict()) == summary
        assert summary.events == summary.serializing_events()
        assert summary.spec_hash == fast_grid[1].spec_hash()

    def test_figure4_grid_runs_once_parallel_then_cached(self, tmp_path):
        """The acceptance path: a Figure-4 grid simulates each unique
        (workload, system, config) exactly once in parallel workers,
        and a re-invocation is served wholly from the on-disk cache."""
        from repro.analysis import run_figure4, run_table1

        names = ["dense_mvm", "ADAt"]
        first = Runner(cache_dir=tmp_path, parallel=True, max_workers=2)
        fig_a = run_figure4(names, ams_count=3, scale=0.05, runner=first)
        assert first.stats.executed == 6     # 2 workloads x {1p,misp,smp}
        assert first.stats.cache_hits == 0

        second = Runner(cache_dir=tmp_path, parallel=True, max_workers=2)
        fig_b = run_figure4(names, ams_count=3, scale=0.05, runner=second)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 6
        assert fig_a.rows == fig_b.rows
        assert fig_a.misp_summaries == fig_b.misp_summaries

        # Table 1 consumes the same MISP runs: all memo, no simulation
        rows = run_table1(names, ams_count=3, scale=0.05, runner=second)
        assert [r.workload for r in rows] == names
        assert second.stats.executed == 0

    def test_execute_labels_match_spec(self):
        summary = execute(RunSpec(system="misp", config="1x4", **FAST))
        assert summary.workload == "dense_mvm"
        assert summary.system == "misp" and summary.config == "1x4"
        assert summary.cycles > 0 and summary.utilization.num_ams == 3
