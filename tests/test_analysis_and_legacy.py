"""Tests for the analysis layer (row math, formatters, spec lookup)
and the legacy applications on both system types."""

import pytest

from repro.analysis.figure4 import Figure4Result, SpeedupRow
from repro.analysis.figure5 import PAPER_TICK_CYCLES, sensitivity_from_run
from repro.analysis.report import figure6_text
from repro.analysis.table1 import EventRow, PAPER_TABLE1, format_table1
from repro.workloads.legacy import (
    make_jrockit_like, make_lame_mt, make_media_encoder, make_ode_like,
    make_thread_checker_like,
)
from repro.workloads.base import REGISTRY
from repro.workloads.runner import run_1p, run_misp, run_smp


class TestFigure4Math:
    def make_result(self):
        rows = [
            SpeedupRow("a", "rms", 1000, 125, 120),
            SpeedupRow("b", "rms", 1000, 250, 260),
            SpeedupRow("c", "speccomp", 1000, 200, 210),
        ]
        return Figure4Result(rows, {})

    def test_speedups(self):
        result = self.make_result()
        row = result.row("a")
        assert row.misp_speedup == pytest.approx(8.0)
        assert row.smp_speedup == pytest.approx(1000 / 120)
        assert row.misp_vs_smp == pytest.approx(125 / 120 - 1)

    def test_suite_mean(self):
        result = self.make_result()
        expected = ((125 / 120 - 1) + (250 / 260 - 1)) / 2
        assert result.mean_misp_vs_smp("rms") == pytest.approx(expected)
        with pytest.raises(ValueError):
            result.mean_misp_vs_smp("nope")

    def test_row_lookup_missing(self):
        with pytest.raises(KeyError):
            self.make_result().row("zzz")

    def test_spec_lookup_scaled(self):
        # scaled specs come uniformly from the registry's factories
        spec = REGISTRY.build("gauss", 0.1)
        assert spec.name == "gauss"
        spec2 = REGISTRY.build("swim", 0.1)
        assert spec2.suite == "speccomp"
        full = REGISTRY.build("gauss", None)
        assert full is REGISTRY.get("gauss")


class TestTable1Rows:
    def test_totals(self):
        row = EventRow("x", 1, 2, 3, 4, 5, 6)
        assert row.total_oms == 10
        assert row.total_ams == 11

    def test_paper_reference_sums(self):
        # spot-check the transcription against the paper
        assert PAPER_TABLE1["RayTracer"].ams_pf == 979
        assert PAPER_TABLE1["art"].ams_syscall == 436
        assert PAPER_TABLE1["galgel"].oms_pf == 152_806

    def test_format_without_compare(self):
        text = format_table1([EventRow("x", 0, 0, 0, 0, 0, 0)],
                             compare=False)
        assert "paper" not in text


class TestFigure5Model:
    def test_decompression_ratio(self):
        result = run_misp(REGISTRY.build("dense_mvm", 0.1), ams_count=3)
        row = sensitivity_from_run(result)
        stretch = PAPER_TICK_CYCLES / 2_000_000
        for measured, decompressed in zip(row.overheads,
                                          row.overheads_decompressed):
            assert decompressed == pytest.approx(measured / stretch)


class TestReportHelpers:
    def test_figure6_text(self):
        text = figure6_text()
        for name in ("4x2", "2x4", "1x8", "1x4+4"):
            assert name in text
        assert "OMS+7AMS" in text


class TestLegacyApps:
    @pytest.mark.parametrize("factory", [
        make_lame_mt, make_media_encoder, make_jrockit_like,
        make_thread_checker_like,
        lambda: make_ode_like(restructured=False),
        lambda: make_ode_like(restructured=True),
    ])
    def test_runs_on_misp_and_smp(self, factory):
        misp = run_misp(factory(), ams_count=3)
        assert misp.runtime.active == 0
        smp = run_smp(factory(), ncpus=4)
        assert smp.runtime.active == 0

    def test_legacy_apps_scale(self):
        app = make_lame_mt()
        base = run_1p(app)
        misp = run_misp(app, ams_count=7)
        assert base.cycles / misp.cycles > 4.0

    def test_shim_counter_exposed(self):
        result = run_misp(make_lame_mt(), ams_count=3)
        shim = result.runtime.legacy_shim
        assert shim.calls_translated > 0

    def test_ode_naive_freezes_team(self):
        naive = run_misp(make_ode_like(restructured=False), ams_count=7)
        fixed = run_misp(make_ode_like(restructured=True), ams_count=7)
        assert naive.cycles > fixed.cycles
        # the naive port blocks its shredded thread in the kernel
        assert naive.main_thread.context_switches > 0
