"""Tests for the repro.timing subsystem: the registry, the fixed
model's bit-exactness with the pre-refactor machine, the scoreboard
pipeline model's FU sensitivity, capture gating, and the end-to-end
path of a custom timing model through Session, Runner, and cache."""

import dataclasses

import pytest

from repro.analysis import run_figure_pipeline
from repro.errors import ConfigurationError, SimulationError
from repro.experiments import ExperimentSpec, Runner, RunSpec, replay_class
from repro.params import DEFAULT_PARAMS
from repro.systems import Session, get_system
from repro.timing import (
    TIMING_REGISTRY, FixedTiming, ScoreboardTiming, TimingModel,
    canonical_timing_name, get_timing, register_timing, resolve_timing,
)

FAST = dict(workload="dense_mvm", scale=0.05)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestTimingRegistry:
    def test_builtins_registered(self):
        assert "fixed" in TIMING_REGISTRY
        assert "scoreboard" in TIMING_REGISTRY
        assert get_timing("fixed") is FixedTiming
        assert get_timing("scoreboard") is ScoreboardTiming

    def test_names_canonicalized(self):
        assert canonical_timing_name("  Fixed ") == "fixed"
        assert get_timing(" FIXED ") is FixedTiming

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="fixed"):
            get_timing("warp_drive")

    def test_duplicate_rejected_unless_replace(self):
        class Clash(TimingModel):
            name = "fixed"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_timing(Clash)
        # and the original survives the failed registration
        assert get_timing("fixed") is FixedTiming

    def test_instance_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="subclass"):
            TIMING_REGISTRY.register(FixedTiming())  # type: ignore[arg-type]

    def test_nameless_model_rejected(self):
        class Nameless(TimingModel):
            pass

        with pytest.raises(ConfigurationError, match="name"):
            register_timing(Nameless)

    def test_temporary_scopes_registration(self):
        class Toy(TimingModel):
            name = "toy_scoped"

        with TIMING_REGISTRY.temporary(Toy):
            assert get_timing("toy_scoped") is Toy
        assert "toy_scoped" not in TIMING_REGISTRY

    def test_create_returns_fresh_instances(self):
        a = TIMING_REGISTRY.create("scoreboard")
        b = TIMING_REGISTRY.create("scoreboard")
        assert isinstance(a, ScoreboardTiming) and a is not b

    def test_resolve_timing_variants(self):
        by_name = resolve_timing("fixed")
        by_class = resolve_timing(FixedTiming)
        proto = FixedTiming()
        by_proto = resolve_timing(proto)
        assert all(isinstance(m, FixedTiming)
                   for m in (by_name, by_class, by_proto))
        # prototypes are copied, never handed out directly
        assert by_proto is not proto
        with pytest.raises(ConfigurationError, match="timing model"):
            resolve_timing(42)  # type: ignore[arg-type]

    def test_base_model_is_abstract(self):
        model = TimingModel()
        with pytest.raises(NotImplementedError):
            model.charge(None, None, 1)
        with pytest.raises(NotImplementedError):
            model.signal_cycles(None)


# ----------------------------------------------------------------------
# Fixed model: bit-exact with the pre-refactor machine (acceptance
# criterion -- the refactor moved pricing, it must not change it)
# ----------------------------------------------------------------------
class TestFixedExactness:
    @pytest.mark.parametrize("system,config", [
        ("misp", "1x8"), ("smp", "8"), ("hybrid", "1x4+1x2"),
    ])
    def test_fixed_matches_default(self, system, config):
        default = Session(system, config).run(**FAST)
        explicit = Session(system, config).timing("fixed").run(**FAST)
        proto = Session(system, config).timing(FixedTiming()).run(**FAST)
        assert explicit.cycles == default.cycles == proto.cycles
        assert (explicit.machine.engine.events_executed
                == default.machine.engine.events_executed)

    def test_default_model_is_fixed(self):
        result = Session("misp", "1x2").run("dense_mvm", scale=0.02)
        assert isinstance(result.machine.timing, FixedTiming)
        assert result.machine.timing.canonical_name() == "fixed"
        assert result.machine.timing.supports_capture

    def test_charge_is_component_sum(self):
        params = DEFAULT_PARAMS
        machine = get_system("misp").build_machine("1x2", params)
        model = machine.timing
        seq = machine.sequencers[0]
        op = object()
        assert model.charge(seq, op, 7) == 7
        assert (model.charge(seq, op, 7, walks=2, access=5, fetch=3)
                == 7 + 2 * params.page_walk_cost + 5 + 3)
        assert model.signal_cycles(seq) == params.signal_cost
        assert model.signal_cycles(seq, 4) == 4 * params.signal_cost
        assert model.signal_cycles(seq, 0) == 0


# ----------------------------------------------------------------------
# MachineParams.with_changes validation (satellite 1)
# ----------------------------------------------------------------------
class TestWithChangesValidation:
    def test_unknown_field_raises_value_error(self):
        with pytest.raises(ValueError, match="signal_costt"):
            DEFAULT_PARAMS.with_changes(signal_costt=500)

    def test_error_lists_valid_fields(self):
        with pytest.raises(ValueError, match="signal_cost"):
            DEFAULT_PARAMS.with_changes(nope=1)

    def test_mixed_known_and_unknown_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            DEFAULT_PARAMS.with_changes(signal_cost=500, bogus=1)

    def test_valid_changes_still_work(self):
        changed = DEFAULT_PARAMS.with_changes(sb_alu_units=4,
                                              signal_cost=500)
        assert changed.sb_alu_units == 4 and changed.signal_cost == 500
        assert DEFAULT_PARAMS.sb_alu_units == 2  # immutably


# ----------------------------------------------------------------------
# Capture gating (satellite 2): capture/replay only under `fixed`
# ----------------------------------------------------------------------
class TestCaptureGating:
    def test_session_capture_refused_under_scoreboard(self):
        session = Session("misp", "1x2").timing("scoreboard").capture()
        with pytest.raises(ConfigurationError, match="scoreboard"):
            session.run("dense_mvm", scale=0.02)

    def test_machine_enable_capture_refused(self):
        machine = get_system("misp").build_machine("1x2", DEFAULT_PARAMS)
        machine.set_timing(ScoreboardTiming())
        with pytest.raises(ConfigurationError, match="scoreboard"):
            machine.enable_capture()

    def test_capture_ok_under_explicit_fixed(self):
        result = (Session("misp", "1x2").timing("fixed").capture()
                  .run("dense_mvm", scale=0.02))
        assert result.trace is not None

    def test_replay_class_none_for_scoreboard_specs(self):
        fixed = RunSpec(system="misp", **FAST)
        scoreboard = RunSpec(system="misp", timing_model="scoreboard",
                             **FAST)
        assert replay_class(fixed) is not None
        assert replay_class(scoreboard) is None

    def test_set_timing_after_events_rejected(self):
        backend = get_system("misp")
        machine = backend.build_machine("1x2", DEFAULT_PARAMS)
        from repro.shredlib.runtime import QueuePolicy
        from repro.workloads.base import REGISTRY
        backend.stage(machine, REGISTRY.build("dense_mvm", 0.02),
                      config="1x2", policy=QueuePolicy.FIFO)
        with pytest.raises(SimulationError, match="set_timing"):
            machine.set_timing(FixedTiming())


# ----------------------------------------------------------------------
# Spec / cache identity
# ----------------------------------------------------------------------
class TestSpecIdentity:
    def test_timing_model_canonicalized_and_validated(self):
        spec = RunSpec(system="misp", timing_model=" Scoreboard ", **FAST)
        assert spec.timing_model == "scoreboard"
        with pytest.raises(ConfigurationError, match="warp"):
            RunSpec(system="misp", timing_model="warp_drive", **FAST)

    def test_timing_model_in_spec_hash(self):
        fixed = RunSpec(system="misp", **FAST)
        scoreboard = RunSpec(system="misp", timing_model="scoreboard",
                             **FAST)
        assert fixed.spec_hash() != scoreboard.spec_hash()
        assert fixed.to_dict()["timing_model"] == "fixed"
        assert scoreboard.to_dict()["timing_model"] == "scoreboard"

    def test_describe_marks_non_fixed_only(self):
        fixed = RunSpec(system="misp", **FAST)
        scoreboard = RunSpec(system="misp", timing_model="scoreboard",
                             **FAST)
        assert "~" not in fixed.describe()
        assert "~scoreboard" in scoreboard.describe()
        assert "~" not in Session("misp").describe()
        assert "~scoreboard" in (Session("misp").timing("scoreboard")
                                 .describe())

    def test_grid_carries_timing_model(self):
        exp = ExperimentSpec.grid("g", ["dense_mvm"], systems=("misp",),
                                  scale=0.05, timing_model="scoreboard")
        assert all(spec.timing_model == "scoreboard" for spec in exp.runs)


# ----------------------------------------------------------------------
# Custom model end to end (satellite 3): registration alone makes a
# model spec-able, runnable, and cacheable -- mirroring the toy-backend
# test in test_systems.py
# ----------------------------------------------------------------------
class TestCustomTimingEndToEnd:
    def test_toy_model_through_run_experiment(self, tmp_path):
        """No experiments/ module knows about 'toy_free_signal', yet
        specs validate, hash distinctly, run, summarize, and cache."""

        class ToyFreeSignal(FixedTiming):
            name = "toy_free_signal"
            supports_capture = False
            description = "fixed pricing with free SIGNAL broadcasts"

            def signal_cycles(self, seq, count=1):
                return 0

        with TIMING_REGISTRY.temporary(ToyFreeSignal):
            exp = ExperimentSpec.grid(
                "toy", ["dense_mvm"], systems=("misp",), scale=0.05,
                timing_model="toy_free_signal")
            runner = Runner(parallel=False, cache_dir=tmp_path)
            result = runner.run_experiment(exp)
            toy_spec = RunSpec("dense_mvm", "misp", "1x8", scale=0.05,
                               timing_model="toy_free_signal")
            toy = result[toy_spec]
            assert toy.timing_model == "toy_free_signal"
            assert runner.stats.executed == 1

            # free signals must actually change the priced run
            fixed = Session("misp", "1x8").run(**FAST)
            assert toy.cycles < fixed.cycles

            # and the cache round-trips it under its own key
            again = Runner(parallel=False, cache_dir=tmp_path)
            cached = again.run_experiment(exp)[toy_spec]
            assert again.stats.executed == 0
            assert again.stats.cache_hits == 1
            assert cached.cycles == toy.cycles
            assert cached.timing_model == "toy_free_signal"

    def test_summary_records_timing_model(self):
        result = (Session("misp", "1x2").timing("scoreboard")
                  .run("dense_mvm", scale=0.02))
        from repro.experiments import summarize_run
        summary = summarize_run(result)
        assert summary.timing_model == "scoreboard"
        rehydrated = type(summary).from_dict(summary.to_dict())
        assert rehydrated.timing_model == "scoreboard"


# ----------------------------------------------------------------------
# Scoreboard model
# ----------------------------------------------------------------------
class TestScoreboard:
    def test_fu_count_sensitivity_is_monotone(self):
        """The acceptance shape: MISP cycles fall as the shared FU pool
        widens, single-sequencer SMP stays flat, so the figure_pipeline
        MISP speedups rise monotonically."""
        rows = run_figure_pipeline(
            workload="dense_mvm", fu_counts=(1, 2, 8), scale=0.05,
            runner=Runner(parallel=False))
        misp = [row.cycles_misp for row in rows]
        smp = [row.cycles_smp for row in rows]
        assert misp == sorted(misp, reverse=True)
        assert misp[0] > misp[-1]  # strictly better somewhere
        assert len(set(smp)) == 1  # SMP workers never contend
        speedups = [row.misp_speedup for row in rows]
        assert speedups == sorted(speedups)

    @pytest.mark.smoke
    def test_scoreboard_smoke(self):
        """CI smoke gate: a narrow-core scoreboard run completes and
        contention costs cycles relative to the fixed model."""
        narrow = DEFAULT_PARAMS.with_changes(sb_alu_units=1,
                                             sb_mem_units=1)
        fixed = (Session("misp", "1x4").params(narrow)
                 .run("dense_mvm", scale=0.02))
        scoreboard = (Session("misp", "1x4").params(narrow)
                      .timing("scoreboard").run("dense_mvm", scale=0.02))
        assert scoreboard.cycles > fixed.cycles
        assert isinstance(scoreboard.machine.timing, ScoreboardTiming)

    def test_scoreboard_params_reach_the_model(self):
        machine = get_system("misp").build_machine(
            "1x2", DEFAULT_PARAMS.with_changes(sb_alu_units=3,
                                               sb_mem_units=1,
                                               sb_frontend_depth=6))
        machine.set_timing(ScoreboardTiming())
        model = machine.timing
        pipe = model._pipes[0]
        assert len(pipe.alu) == 3 and len(pipe.mem) == 1
        assert model._frontend == 6

    def test_sb_params_positivity_enforced(self):
        with pytest.raises(ValueError, match="sb_alu_units"):
            dataclasses.replace(DEFAULT_PARAMS, sb_alu_units=0)
        with pytest.raises(ValueError, match="sb_mem_units"):
            dataclasses.replace(DEFAULT_PARAMS, sb_mem_units=-1)
