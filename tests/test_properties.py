"""Property-based tests (hypothesis) on core data structures and
invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.overhead import (
    SignalSensitivity, proxy_egress_cost, proxy_ingress_cost,
    serialize_cost,
)
from repro.mem import TLB, AddressSpace, PhysicalMemory
from repro.params import DEFAULT_PARAMS
from repro.shredlib.runtime import QueuePolicy, ShredRuntime
from repro.sim.engine import Engine
from repro.workloads.common import chunk_ranges, jittered


# ----------------------------------------------------------------------
# Engine: events run in nondecreasing time order, all exactly once
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=200))
def test_engine_time_ordering(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append((engine.now, d)))
    engine.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    assert all(t == d for t, d in fired)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=100),
       st.integers(min_value=0, max_value=1000))
def test_engine_run_until_partition(delays, split):
    """Running to T then to completion fires every event exactly once."""
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, fired.append, delay)
    engine.run(until=split)
    assert all(d <= split for d in fired)
    engine.run()
    assert sorted(fired) == sorted(delays)


# ----------------------------------------------------------------------
# TLB behaves like a size-bounded cache of the reference mapping
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=16),
       st.lists(st.tuples(st.integers(0, 40), st.booleans()),
                max_size=300))
def test_tlb_never_lies(capacity, operations):
    tlb = TLB(capacity)
    reference = {}
    for vpn, is_insert in operations:
        if is_insert:
            tlb.insert(vpn, vpn * 7)
            reference[vpn] = vpn * 7
        else:
            cached = tlb.lookup(vpn)
            if cached is not None:
                assert cached == reference[vpn]   # never stale/wrong
        assert len(tlb) <= capacity


# ----------------------------------------------------------------------
# Demand paging: each page faults exactly once; frames never leak
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=19), min_size=1,
                max_size=200))
def test_demand_paging_compulsory_once(touches):
    space = AddressSpace(PhysicalMemory(64))
    region = space.reserve("d", 20)
    for page in touches:
        vpn = region.vpn(page)
        if not space.is_resident(vpn):
            space.handle_fault(vpn)
    assert space.faults_serviced == len(set(touches))
    assert space.physical.frames_allocated == len(set(touches))
    space.release()
    assert space.physical.frames_allocated == 0


# ----------------------------------------------------------------------
# Overhead equations: monotone and exactly linear in signal
# ----------------------------------------------------------------------
@given(st.integers(0, 10**6), st.integers(0, 10**6), st.integers(0, 10**6))
def test_equations_structure(signal, priv, signal2):
    assert serialize_cost(signal, priv) == 2 * signal + priv
    assert proxy_egress_cost(signal) == 3 * signal
    assert (proxy_ingress_cost(signal, priv)
            == signal + serialize_cost(signal, priv))
    # monotonicity in signal
    lo, hi = sorted((signal, signal2))
    assert serialize_cost(lo, priv) <= serialize_cost(hi, priv)


@given(st.integers(0, 10**5), st.integers(0, 10**5),
       st.integers(1, 10**9), st.integers(0, 10**4))
def test_sensitivity_linear(oms_events, ams_events, ideal, signal):
    model = SignalSensitivity(oms_events, ams_events, ideal)
    assert model.added_cycles(2 * signal) == 2 * model.added_cycles(signal)
    assert model.overhead_fraction(signal) >= 0.0


# ----------------------------------------------------------------------
# Work partitioning helpers
# ----------------------------------------------------------------------
@given(st.integers(0, 10_000), st.integers(1, 64))
def test_chunk_ranges_partition(total, parts):
    ranges = chunk_ranges(total, parts)
    assert len(ranges) == parts
    assert sum(count for _, count in ranges) == total
    # contiguity and order
    position = 0
    for start, count in ranges:
        assert start == position
        position += count
    # balance: sizes differ by at most one
    sizes = [count for _, count in ranges]
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(1, 10**9), st.floats(0.0, 2.0), st.integers(0, 2**32 - 1))
def test_jittered_positive(amount, cv, seed):
    import random
    value = jittered(amount, cv, random.Random(seed))
    assert value >= 1


# ----------------------------------------------------------------------
# Work queue: policies preserve the eligible set
# ----------------------------------------------------------------------
@given(st.lists(st.sampled_from([None, 0, 1, 2]), min_size=1, max_size=50),
       st.sampled_from([QueuePolicy.FIFO, QueuePolicy.LIFO]),
       st.integers(0, 2))
def test_pop_respects_affinity_and_conserves(affinities, policy, worker):
    rt = ShredRuntime(DEFAULT_PARAMS, policy=policy)
    shreds = []
    for i, affinity in enumerate(affinities):
        shred = rt.new_shred(iter(()), f"s{i}")
        shred.affinity = affinity
        rt.push(shred)
        shreds.append(shred)
    popped = []
    while True:
        shred = rt.pop(worker)
        if shred is None:
            break
        popped.append(shred)
    # every popped shred was eligible for this worker
    assert all(s.affinity in (None, worker) for s in popped)
    # everything eligible was popped; the rest remains queued
    eligible = [s for s in shreds if s.affinity in (None, worker)]
    assert set(popped) == set(eligible)
    assert len(rt.queue) == len(shreds) - len(popped)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
def test_fifo_pop_order(ids):
    rt = ShredRuntime(DEFAULT_PARAMS)
    shreds = [rt.new_shred(iter(()), str(i)) for i in ids]
    for shred in shreds:
        rt.push(shred)
    out = []
    while (s := rt.pop()) is not None:
        out.append(s)
    assert out == shreds
