"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_initial_state():
    engine = Engine()
    assert engine.now == 0
    assert engine.pending() == 0
    assert engine.events_executed == 0


def test_schedule_and_run_order():
    engine = Engine()
    order = []
    engine.schedule(30, order.append, "c")
    engine.schedule(10, order.append, "a")
    engine.schedule(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_fifo_tiebreak_at_same_time():
    engine = Engine()
    order = []
    for tag in "abcde":
        engine.schedule(5, order.append, tag)
    engine.run()
    assert order == list("abcde")


def test_zero_delay_runs_after_current():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule(0, order.append, "nested")

    engine.schedule(1, first)
    engine.schedule(1, order.append, "second")
    engine.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_run_until_stops_clock_at_until():
    engine = Engine()
    hits = []
    engine.schedule(100, hits.append, 1)
    engine.schedule(200, hits.append, 2)
    engine.run(until=150)
    assert hits == [1]
    assert engine.now == 150
    engine.run()
    assert hits == [1, 2]
    assert engine.now == 200


def test_run_until_before_any_event():
    engine = Engine()
    hits = []
    engine.schedule(100, hits.append, 1)
    engine.run(until=50)
    assert hits == []
    assert engine.now == 50


def test_drain_does_not_advance_to_until():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run(until=1000)
    assert engine.now == 10


def test_cancel_skips_event():
    engine = Engine()
    hits = []
    event = engine.schedule(10, hits.append, "cancelled")
    engine.schedule(20, hits.append, "kept")
    Engine.cancel(event)
    engine.run()
    assert hits == ["kept"]


def test_max_events_bound():
    engine = Engine()
    count = []
    for i in range(10):
        engine.schedule(i + 1, count.append, i)
    engine.run(max_events=3)
    assert len(count) == 3
    engine.run()
    assert len(count) == 10


def test_schedule_at_absolute_time():
    engine = Engine()
    hits = []
    engine.schedule_at(42, hits.append, "x")
    engine.run()
    assert engine.now == 42 and hits == ["x"]


def test_events_executed_counter():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_reentrant_run_rejected():
    engine = Engine()

    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, nested)
    engine.run()


def test_chained_scheduling_from_callbacks():
    engine = Engine()
    times = []

    def tick(n):
        times.append(engine.now)
        if n > 0:
            engine.schedule(10, tick, n - 1)

    engine.schedule(10, tick, 4)
    engine.run()
    assert times == [10, 20, 30, 40, 50]


def test_pending_counts_live_events_only():
    engine = Engine()
    e1 = engine.schedule(10, lambda: None)
    engine.schedule(20, lambda: None)
    Engine.cancel(e1)
    assert engine.pending() == 1


def test_pending_tracks_cancel_run_and_drain():
    engine = Engine()
    events = [engine.schedule(10 * (i + 1), lambda: None) for i in range(4)]
    assert engine.pending() == 4
    Engine.cancel(events[0])
    Engine.cancel(events[0])          # double cancel is a no-op
    assert engine.pending() == 3
    engine.run(until=25)              # runs events[1], skips events[0]
    assert engine.pending() == 2
    Engine.cancel(events[1])          # cancel after run is a no-op
    assert engine.pending() == 2
    engine.run()
    assert engine.pending() == 0


def test_cancel_within_callback_keeps_count_consistent():
    engine = Engine()
    hits = []
    later = engine.schedule(20, hits.append, "later")
    engine.schedule(10, lambda: Engine.cancel(later))
    assert engine.pending() == 2
    engine.run()
    assert hits == [] and engine.pending() == 0


def test_compaction_shrinks_heap_and_preserves_order():
    engine = Engine()
    hits = []
    events = [engine.schedule(10 * (i + 1), hits.append, i)
              for i in range(100)]
    # cancel just over half (every even event plus one more)
    for event in events[0:100:2]:
        Engine.cancel(event)
    assert len(engine._heap) == 100       # lazy: still resident
    Engine.cancel(events[1])              # 51 cancelled > 100/2: compact
    assert len(engine._heap) == 49
    assert engine._cancelled_queued == 0
    assert engine.pending() == 49
    engine.run()
    assert hits == list(range(3, 100, 2))  # odd ids except 1, in order


def test_compaction_amortized_not_triggered_below_half():
    engine = Engine()
    events = [engine.schedule(i + 1, lambda: None) for i in range(10)]
    for event in events[:5]:
        Engine.cancel(event)              # exactly half: no compaction
    assert len(engine._heap) == 10 and engine._cancelled_queued == 5
    Engine.cancel(events[5])              # over half: compacted
    assert len(engine._heap) == 4 and engine._cancelled_queued == 0


def test_cancel_after_compaction_of_drained_heap():
    engine = Engine()
    only = engine.schedule(5, lambda: None)
    Engine.cancel(only)                   # 1 cancelled > 1/2: compacts
    assert len(engine._heap) == 0 and engine.pending() == 0
    engine.run()
    assert engine.now == 0
