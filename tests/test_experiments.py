"""Integration tests for the experiment harness: scaled-down versions
of every table and figure, asserting the paper's qualitative shapes."""

import pytest

from repro.analysis import (
    format_figure4, format_figure5, format_figure7,
    format_table1, measured_row, paper_row_scaled, run_figure4,
    sensitivity_from_run,
)
from repro.analysis.figure7 import Figure7Result
from repro.analysis.table1 import PAPER_TABLE1
from repro.analysis.table2 import (
    ode_restructuring_speedup, run_table2,
)
from repro.workloads.multiprog import speedup_curve

SUBSET = ["dense_mmm", "gauss", "RayTracer", "swim"]


@pytest.fixture(scope="module")
def fig4():
    return run_figure4(SUBSET, scale=0.05)


class TestFigure4:
    def test_speedups_meaningful(self, fig4):
        for row in fig4.rows:
            assert row.misp_speedup > 2.0, row
            assert row.smp_speedup > 2.0, row

    def test_misp_close_to_smp(self, fig4):
        # the paper's headline: MISP within a few percent of SMP
        for row in fig4.rows:
            assert abs(row.misp_vs_smp) < 0.15, row

    def test_raytracer_most_scalable(self, fig4):
        ray = fig4.row("RayTracer")
        others = [r for r in fig4.rows if r.workload != "RayTracer"]
        assert all(ray.misp_speedup >= r.misp_speedup - 0.5 for r in others)

    def test_format_contains_all_rows(self, fig4):
        text = format_figure4(fig4)
        for name in SUBSET:
            assert name in text


class TestTable1:
    def test_measured_rows_extracted(self, fig4):
        row = measured_row(fig4.misp_summaries["gauss"])
        assert row.oms_syscall == 8          # exact (structural)
        assert row.ams_syscall == 0
        assert row.oms_timer > 0
        assert row.total_oms > row.total_ams

    def test_paper_reference_complete(self):
        assert len(PAPER_TABLE1) == 16
        assert PAPER_TABLE1["swim"].oms_syscall == 77_009

    def test_speccomp_rows_scaled(self):
        scaled = paper_row_scaled("swim")
        assert scaled.oms_syscall == round(77_009 / 50)
        unscaled = paper_row_scaled("gauss")
        assert unscaled.oms_pf == 7170

    def test_format(self, fig4):
        rows = [measured_row(fig4.misp_summaries[n]) for n in SUBSET]
        text = format_table1(rows)
        assert "SysCall" in text and "gauss" in text


class TestFigure5:
    def test_overhead_small_and_linear(self, fig4):
        for name in SUBSET:
            row = sensitivity_from_run(fig4.misp_summaries[name])
            o500, o1000, o5000 = row.overheads
            assert 0 <= o500 <= o1000 <= o5000
            assert o1000 == pytest.approx(2 * o500)
            assert o5000 < 0.35   # scaled runs are event-dense
            # decompressed values land in the paper's magnitude range
            assert row.overheads_decompressed[-1] < 0.02

    def test_format(self, fig4):
        rows = [sensitivity_from_run(fig4.misp_summaries[n]) for n in SUBSET]
        text = format_figure5(rows)
        assert "worst" in text


class TestFigure7:
    RT_SCALE = 0.05

    def test_1x8_degrades_nearly_linearly(self):
        curve = speedup_curve("1x8", loads=range(3), rt_scale=self.RT_SCALE)
        assert curve[0] == pytest.approx(1.0)
        assert curve[1] == pytest.approx(0.5, abs=0.1)
        assert curve[2] == pytest.approx(1 / 3, abs=0.1)

    def test_4x2_flat_until_cpus_exhausted(self):
        curve = speedup_curve("4x2", loads=range(4), rt_scale=self.RT_SCALE)
        for value in curve:
            assert value > 0.9

    def test_ideal_stays_at_one(self):
        curve = speedup_curve("ideal", loads=range(3),
                              rt_scale=self.RT_SCALE)
        for value in curve:
            assert value == pytest.approx(1.0, abs=0.05)

    def test_smp_degrades_gracefully(self):
        curve = speedup_curve("smp", loads=[0, 2], rt_scale=self.RT_SCALE)
        assert curve[1] > 0.6    # ~ 8/(8+2)

    def test_more_processors_flatter(self):
        """Section 5.4: scaling improves with more MISP processors."""
        at_load = 2
        one = speedup_curve("1x8", loads=[0, at_load],
                            rt_scale=self.RT_SCALE)[1]
        two = speedup_curve("2x4", loads=[0, at_load],
                            rt_scale=self.RT_SCALE)[1]
        four = speedup_curve("4x2", loads=[0, at_load],
                             rt_scale=self.RT_SCALE)[1]
        assert one < two <= four

    def test_format(self):
        result = Figure7Result((0, 1), {"1x8": [1.0, 0.5]})
        assert "1x8" in format_figure7(result)


class TestTable2:
    def test_all_ports_run_unmodified(self):
        rows = run_table2(ams_count=3)
        assert len(rows) == 6
        for row in rows:
            assert row.ran_correctly, row.application
            assert row.lines_changed == 1
            assert row.api_calls_translated > 0

    def test_ode_restructuring_helps(self):
        assert ode_restructuring_speedup(ams_count=7) > 1.25
