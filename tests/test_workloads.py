"""Tests for the 16 evaluation workloads and the run drivers, at small
scale (scale=0.02) so the whole file stays fast."""

import pytest

from repro.sim.trace import EventKind
from repro.workloads import REGISTRY, FIGURE4_ORDER, run_1p, run_misp, run_smp
from repro.workloads import rms, speccomp
from repro.workloads.base import WorkloadSpec

SCALE = 0.02

_FACTORIES = {
    "ADAt": rms.make_adat, "dense_mmm": rms.make_dense_mmm,
    "dense_mvm": rms.make_dense_mvm,
    "dense_mvm_sym": rms.make_dense_mvm_sym, "gauss": rms.make_gauss,
    "kmeans": rms.make_kmeans, "sparse_mvm": rms.make_sparse_mvm,
    "sparse_mvm_sym": rms.make_sparse_mvm_sym,
    "sparse_mvm_trans": rms.make_sparse_mvm_trans,
    "svm_c": rms.make_svm_c, "RayTracer": rms.make_raytracer,
    "swim": lambda scale: speccomp.make_speccomp("swim", scale),
    "applu": lambda scale: speccomp.make_speccomp("applu", scale),
    "galgel": lambda scale: speccomp.make_speccomp("galgel", scale),
    "equake": lambda scale: speccomp.make_speccomp("equake", scale),
    "art": lambda scale: speccomp.make_speccomp("art", scale),
}


def small(name):
    return _FACTORIES[name](scale=SCALE)


def test_registry_has_all_16():
    # the 16 Figure 4 applications, plus the Table 2 legacy ports
    assert set(FIGURE4_ORDER) <= set(REGISTRY.names())
    assert len(FIGURE4_ORDER) == 16


def test_registry_suites():
    assert len(REGISTRY.by_suite("rms")) == 11
    assert len(REGISTRY.by_suite("speccomp")) == 5
    assert len(REGISTRY.by_suite("legacy")) == 6


def test_registry_builds_scaled_specs_by_name():
    scaled = REGISTRY.build("gauss", 0.1)
    assert scaled.name == "gauss" and scaled is not REGISTRY.get("gauss")
    assert REGISTRY.build("swim", 0.1).suite == "speccomp"
    assert REGISTRY.build("RayTracer", 0.1, probe_pages=True).name == \
        "RayTracer_probed"
    # legacy apps resolve by name too (scale is accepted and ignored)
    assert REGISTRY.build("ode_like_naive", 0.5).name == "ode_like_naive"
    with pytest.raises(KeyError):
        REGISTRY.build("nope", 0.1)


def test_registry_unknown():
    with pytest.raises(KeyError):
        REGISTRY.get("nope")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        REGISTRY.register(REGISTRY.get("gauss"))


@pytest.mark.parametrize("name", FIGURE4_ORDER)
def test_workload_completes_on_misp(name):
    result = run_misp(small(name), ams_count=3)
    assert result.runtime.active == 0          # every shred retired
    assert result.runtime.finished == result.runtime.created
    assert result.cycles > 0
    assert result.machine.kernel.all_done


@pytest.mark.parametrize("name", ["gauss", "RayTracer", "swim"])
def test_workload_completes_on_smp_and_1p(name):
    smp = run_smp(small(name), ncpus=4)
    base = run_1p(small(name))
    assert smp.runtime.active == 0 and base.runtime.active == 0
    assert base.cycles > smp.cycles            # parallelism helps


def test_misp_parallelism_beats_1p():
    spec = _FACTORIES["RayTracer"](scale=0.05)
    base = run_1p(spec)
    misp = run_misp(spec, ams_count=7)
    assert base.cycles / misp.cycles > 3.0


class TestEventProfiles:
    """Table-1-shaped invariants at small scale."""

    def test_init_on_main_faults_on_oms(self):
        # gauss initializes its grid on the main shred -> OMS faults
        result = run_misp(small("gauss"), ams_count=3)
        events = result.serializing_events()
        assert events["oms_pf"] > 50
        assert events["ams_pf"] <= 2

    def test_shred_first_touch_faults_on_ams(self):
        result = run_misp(_FACTORIES["sparse_mvm_sym"](scale=0.2),
                          ams_count=3)
        events = result.serializing_events()
        assert events["ams_pf"] > events["oms_pf"]

    def test_gauss_syscalls_on_oms_only(self):
        result = run_misp(small("gauss"), ams_count=3)
        events = result.serializing_events()
        assert events["oms_syscall"] == 8
        assert events["ams_syscall"] == 0

    def test_art_has_worker_syscalls(self):
        result = run_misp(_FACTORIES["art"](scale=0.5), ams_count=3)
        events = result.serializing_events()
        # art is the only application with AMS-side syscalls (Table 1)
        assert events["ams_syscall"] + events["oms_syscall"] > 0

    def test_timers_only_on_oms(self):
        result = run_misp(small("kmeans"), ams_count=3)
        trace = result.machine.trace
        assert trace.total(EventKind.TIMER, result.machine.ams_ids()) == 0

    def test_smp_has_no_proxy_events(self):
        result = run_smp(small("dense_mmm"), ncpus=4)
        assert result.machine.proxy_stats.requests == 0
        assert result.serializing_events()["ams_pf"] == 0

    def test_misp_ams_faults_are_proxied(self):
        result = run_misp(small("RayTracer"), ams_count=3)
        events = result.serializing_events()
        assert result.machine.proxy_stats.requests == (
            events["ams_pf"] + events["ams_syscall"])


class TestRunnerMechanics:
    def test_main_shred_pinned_to_worker0(self):
        captured = {}

        def build(api, nworkers):
            def main():
                from repro.exec.ops import Compute
                yield Compute(1000)
                captured["main"] = api.rt.main_shred
            return main()

        result = run_misp(WorkloadSpec("t", "micro", build), ams_count=2)
        assert captured["main"].affinity == 0
        assert captured["main"].last_worker == 0

    def test_proxy_handler_registered(self):
        from repro.core.yieldcond import Scenario
        result = run_misp(small("dense_mvm"), ams_count=2)
        table = result.machine.processors[0].scenarios
        assert Scenario.PROXY_REQUEST in table

    def test_smp_spawns_one_thread_per_cpu(self):
        result = run_smp(small("dense_mvm"), ncpus=4)
        process = result.main_thread.process
        assert len(process.threads) == 4

    def test_seed_determinism(self):
        a = run_misp(small("sparse_mvm"), ams_count=3)
        b = run_misp(small("sparse_mvm"), ams_count=3)
        assert a.cycles == b.cycles
        assert a.serializing_events() == b.serializing_events()
