"""Tests for the unified observability layer: the metrics registry
(snapshot determinism, Prometheus exposition, label escaping), span
tracing, stats views, zero-overhead-when-disabled, observed runs, the
JobHandle metrics surface, and the golden-file Perfetto export."""

import json
import threading
from pathlib import Path

import pytest

from repro.obs import (
    MetricsRegistry, ObservedRun, SpanTracer, export_run, get_registry,
    new_run_id,
)
from repro.obs.emit import ReportEmitter
from repro.systems import Session

GOLDEN = Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_goes_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.inc(3)
        g.dec(5)
        assert g.value == -2

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        sample = h.labels()._sample() if hasattr(h, "labels") else None
        snap = reg.snapshot()["lat"]["samples"][0]["value"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert snap["buckets"]["1"] == 1
        assert snap["buckets"]["10"] == 2
        assert snap["buckets"]["+Inf"] == 3
        assert sample is None or sample  # silence unused warnings

    def test_labeled_family_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("events_total", "events", labels=("run", "kind"))
        fam.labels(run="r1", kind="a").inc()
        fam.labels(run="r1", kind="a").inc()
        fam.labels(run="r1", kind="b").inc()
        assert fam.labels(run="r1", kind="a").value == 2
        assert fam.labels(run="r1", kind="b").value == 1

    def test_same_name_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", labels=("k",))
        b = reg.counter("x_total", "x", labels=("k",))
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", labels=("b",))

    def test_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_new_run_ids_unique(self):
        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32


class TestSnapshotDeterminism:
    def _fill(self, reg, order):
        fam = reg.counter("events_total", "events", labels=("run", "kind"))
        for run, kind, n in order:
            fam.labels(run=run, kind=kind).inc(n)
        reg.gauge("cycles", "cycles", labels=("run",)).labels(
            run="r1").set(42)

    def test_insertion_order_invariant(self):
        """Two registries filled in different orders snapshot identically."""
        a, b = MetricsRegistry(), MetricsRegistry()
        rows = [("r1", "x", 1), ("r2", "y", 2), ("r1", "y", 3)]
        self._fill(a, rows)
        self._fill(b, list(reversed(rows)))
        assert a.snapshot() == b.snapshot()
        assert a.render_prometheus() == b.render_prometheus()

    def test_snapshot_is_json_round_trippable(self):
        reg = MetricsRegistry()
        self._fill(reg, [("r1", "x", 1)])
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestPrometheusExposition:
    def test_help_and_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "cache hits").inc(3)
        text = reg.render_prometheus()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 3" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        fam = reg.counter("odd_total", "odd labels", labels=("name",))
        fam.labels(name='we"ird\\na\nme').inc()
        text = reg.render_prometheus()
        assert 'name="we\\"ird\\\\na\\nme"' in text
        # the rendered line must stay a single physical line
        [line] = [ln for ln in text.splitlines() if ln.startswith("odd_total")]
        assert line.endswith("} 1")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", "latency", buckets=(0.1,)).observe(0.05)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_correlation(self):
        tracer = SpanTracer()
        with tracer.span("outer", correlation="job-1") as outer:
            with tracer.span("inner", correlation="job-1") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.finished("job-1")] == ["inner", "outer"]
        assert tracer.finished("job-2") == []

    def test_by_name_aggregation(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("phase", correlation="j"):
                pass
        count, total = tracer.by_name()["phase"]
        assert count == 3
        assert total >= 0.0


# ----------------------------------------------------------------------
# Zero overhead when disabled
# ----------------------------------------------------------------------
class TestZeroOverheadWhenDisabled:
    def test_default_run_touches_nothing(self):
        """An un-observed Session run leaves the global registry alone
        and records neither fine trace records nor charge wrappers."""
        before = get_registry().snapshot()
        result = Session("misp", "1x2").run("dense_mvm", scale=0.01)
        assert get_registry().snapshot() == before
        assert result.obs is None
        assert result.machine._obs is None
        assert list(result.machine.trace.records()) == []
        # the charge path is the raw bound method, not a closure
        timing = result.machine.timing
        assert result.machine._charge.__func__ is type(timing).charge

    def test_shredlog_contention_stays_private(self):
        from repro.shredlib.log import ShredLog
        before = get_registry().snapshot()
        log = ShredLog()
        log.note_contention("lock:a")
        log.note_contention("lock:a")
        assert log.contention("lock:a") == 2
        assert get_registry().snapshot() == before


# ----------------------------------------------------------------------
# Observed runs
# ----------------------------------------------------------------------
class TestObservedRun:
    def _observed(self, run_id="obs-test"):
        reg = MetricsRegistry()
        result = (Session("misp", "1x2")
                  .observe(registry=reg, run_id=run_id)
                  .run("dense_mvm", scale=0.01))
        return reg, result

    def test_families_labeled_with_run_id(self):
        reg, result = self._observed()
        assert result.obs is not None and result.obs.run_id == "obs-test"
        snap = reg.snapshot()
        for family in ("repro_run_info", "repro_run_cycles",
                       "repro_engine_events_total",
                       "repro_trace_events_total",
                       "repro_timing_ops_total",
                       "repro_timing_cycles_total",
                       "repro_hierarchy_events_total",
                       "repro_cache_events_total",
                       "repro_tlb_events_total",
                       "repro_shred_events_total"):
            assert family in snap, family
            for sample in snap[family]["samples"]:
                assert sample["labels"]["run"] == "obs-test"

    def test_charge_path_counted(self):
        reg, result = self._observed()
        assert result.obs.ops > 0
        assert result.obs.charged_cycles > 0
        [ops] = reg.snapshot()["repro_timing_ops_total"]["samples"]
        assert ops["value"] == result.obs.ops

    def test_run_cycles_matches_result(self):
        reg, result = self._observed()
        [cycles] = reg.snapshot()["repro_run_cycles"]["samples"]
        assert cycles["value"] == result.cycles

    def test_fine_records_collected(self):
        _, result = self._observed()
        assert len(list(result.machine.trace.records())) > 0

    def test_obs_snapshot_filters_to_run(self):
        reg, result = self._observed()
        reg.counter("unrelated_total", "other").inc()
        snap = result.obs.snapshot()
        assert "unrelated_total" not in snap
        assert "repro_run_cycles" in snap

    def test_observation_is_deterministic(self):
        rega, a = self._observed()
        regb, b = self._observed()
        assert a.cycles == b.cycles
        assert rega.snapshot() == regb.snapshot()

    def test_finish_requires_machine(self):
        with pytest.raises(ValueError):
            ObservedRun(registry=MetricsRegistry()).finish()


# ----------------------------------------------------------------------
# Service pipeline metrics (JobHandle.metrics)
# ----------------------------------------------------------------------
class TestJobMetrics:
    def test_job_metrics_phases(self):
        from repro.experiments import ExperimentSpec, RunSpec
        from repro.service import ExperimentService

        reg = MetricsRegistry()
        svc = ExperimentService(parallel=False, registry=reg,
                                instance="svc-test")
        try:
            spec = ExperimentSpec("tiny", (
                RunSpec("dense_mvm", "misp", "1x2", scale=0.01),))
            job = svc.submit(spec)
            job.result()
            m = job.metrics()
        finally:
            svc.close()
        assert m["experiment"] == "tiny"
        assert m["expected"] == 1 and m["delivered"] == 1
        assert m["done"] and not m["failed"]
        assert m["job_id"].startswith("job-")
        for phase in ("submit", "plan", "execute", "backfill"):
            assert phase in m["phases"], phase
            assert m["phases"][phase] >= 0.0
        spans = svc.tracer.finished(m["job_id"])
        assert {s.name for s in spans} >= {"submit", "plan", "execute"}
        # service stats landed in the passed registry under the instance
        [job_sample] = [
            s for s in reg.snapshot()["repro_service_events_total"]["samples"]
            if s["labels"]["event"] == "jobs"]
        assert job_sample["labels"]["service"] == "svc-test"
        assert job_sample["value"] == 1


# ----------------------------------------------------------------------
# Report emitter
# ----------------------------------------------------------------------
class TestReportEmitter:
    def test_human_mode_is_bare_text(self):
        import io
        buf = io.StringIO()
        ReportEmitter(stream=buf).emit("hello")
        assert buf.getvalue() == "hello\n"

    def test_structured_mode_correlates(self):
        import io
        buf = io.StringIO()
        em = ReportEmitter(stream=buf, structured=True, run_id="r-1")
        em.emit("a", kind="header")
        em.section("S")
        lines = [json.loads(ln) for ln in buf.getvalue().splitlines()]
        assert [ln["seq"] for ln in lines] == [1, 2]
        assert all(ln["run"] == "r-1" for ln in lines)
        assert lines[1]["kind"] == "section"
        assert lines[1]["section"] == "S"


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
class TestPerfettoExport:
    def _export(self, tmp_path):
        reg = MetricsRegistry()
        result = (Session("misp", "1x2")
                  .observe(registry=reg, run_id="golden")
                  .run("dense_mvm", scale=0.01))
        path = tmp_path / "trace.json"
        doc = export_run(result, str(path), run_id="golden")
        return doc, path

    def test_document_shape(self, tmp_path):
        doc, path = self._export(tmp_path)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        # one named track per sequencer (1x2 = OMS + 1 AMS)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"P0 OMS", "P0 AMS1"} <= names
        phases = {e["ph"] for e in events}
        assert "X" in phases and "i" in phases
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] > 0 and e["ts"] >= 0

    def test_golden_file(self, tmp_path):
        """The export of a fixed tiny run is byte-stable (simulations
        are deterministic; any diff here is a real behaviour change --
        regenerate tests/golden/ deliberately when one is intended)."""
        _, path = self._export(tmp_path)
        golden = GOLDEN / "trace_misp_1x2_dense_mvm.json"
        assert path.read_text() == golden.read_text()


class TestPerfettoCaptureEnrichment:
    """Counter tracks and critical-path flow events, present only when
    the run captured its event-dependency trace."""

    def _export(self, tmp_path):
        reg = MetricsRegistry()
        result = (Session("misp", "1x2").capture()
                  .observe(registry=reg, run_id="golden")
                  .run("dense_mvm", scale=0.01))
        path = tmp_path / "trace.json"
        doc = export_run(result, str(path), run_id="golden")
        return doc, path

    def test_counter_tracks_cover_each_sequencer(self, tmp_path):
        doc, _ = self._export(tmp_path)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters, "captured export must emit counter tracks"
        names = {e["name"] for e in counters}
        assert "outstanding events" in names
        util = [n for n in names if n.startswith("utilization")]
        assert len(util) == 2  # one per sequencer of the 1x2 machine

    def test_critical_path_slices_and_flows(self, tmp_path):
        doc, _ = self._export(tmp_path)
        events = doc["traceEvents"]
        crit = [e for e in events
                if e["ph"] == "X" and e.get("pid") == 2]
        assert crit, "captured export must draw the critical path"
        starts = {e["ph"] for e in events}
        assert {"s", "f"} <= starts
        flows_out = [e for e in events if e["ph"] == "s"]
        flows_in = [e for e in events if e["ph"] == "f"]
        assert len(flows_out) == len(flows_in) == len(crit) - 1

    def test_capture_golden_file(self, tmp_path):
        _, path = self._export(tmp_path)
        golden = GOLDEN / "trace_capture_misp_1x2_dense_mvm.json"
        assert path.read_text() == golden.read_text()


class TestHistogramPercentile:
    def test_percentile_upper_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        child = h.labels()
        assert child.percentile(50) == 1.0
        assert child.percentile(75) == 10.0
        assert child.percentile(100) == 100.0

    def test_percentile_beyond_buckets_is_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0,))
        h.observe(5.0)
        assert h.labels().percentile(99) == float("inf")

    def test_percentile_empty_and_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0,))
        child = h.labels()
        assert child.percentile(99) == 0.0
        with pytest.raises(ValueError):
            child.percentile(101)
        with pytest.raises(ValueError):
            child.percentile(-1)


# ----------------------------------------------------------------------
# Report CLI end to end
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_report_smoke_with_observability(tmp_path, capsys):
    from repro.analysis.report import main

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    rc = main(["--smoke", "--serial", "--workloads", "dense_mvm",
               "--scale", "0.02", "--trace-out", str(trace),
               "--metrics-out", str(metrics)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    doc = json.loads(trace.read_text())
    assert len(doc["traceEvents"]) > 0
    snap = json.loads(metrics.read_text())
    assert snap["run"].startswith("report-")
    assert "repro_run_cycles" in snap["metrics"]
    assert "repro_runner_events_total" in snap["metrics"]
